//! Minimal, API-compatible stand-in for the subset of `rand` 0.8 that the
//! `thermsched` workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! instead of the real `rand` crate the workspace vendors this stub. It
//! implements a seeded xoshiro256++ generator behind the `StdRng` /
//! `SeedableRng` / `Rng` names the code imports. The statistical quality is
//! more than sufficient for test-input generation; swap this crate for the
//! real `rand` (same import paths) when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always yields
    /// the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Rounding can land exactly on the excluded bound when the ulp near
        // `end` is coarse; clamp back into the half-open interval.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty f64 range");
        // Uses a half-open sample over the closed width; the endpoint itself
        // has measure zero, which matches how the real crate is used here.
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

// Spans and offsets are computed with wrapping arithmetic in the unsigned
// domain: for `start < end` the true span always fits in u64 even when the
// signed subtraction would overflow (e.g. i64::MIN..i64::MAX), and adding
// the offset back modulo 2^64 yields the mathematically correct in-range
// result.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty integer range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64);

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone is the largest multiple of span that fits in u64.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64, mirroring the seeding discipline of the
    /// real `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).all(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&x));
            let y = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exclusive_f64_range_never_returns_the_bound_even_at_coarse_ulp() {
        // Near 1e16 the f64 ulp is 2.0, so `start + u * span` rounds onto the
        // excluded bound for u close to 1 unless clamped.
        let mut rng = StdRng::seed_from_u64(13);
        let (start, end) = (1.0e16, 1.0e16 + 4.0);
        for _ in 0..100_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "sampled excluded bound: {v}");
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..i64::MAX);
            assert!((-5..i64::MAX).contains(&v));
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain draw must simply not panic
            let u = rng.gen_range(i64::MIN..0);
            assert!(u < 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
