//! Minimal, API-compatible stand-in for the subset of `criterion` that the
//! `thermsched` bench targets use.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors this stub instead of the real Criterion. It runs
//! each benchmark closure for a configurable number of samples, reports
//! mean/min/max wall-clock time per iteration to stdout, and understands the
//! CLI flags Cargo passes (`--bench`, `--test`, filters) well enough to stay
//! out of the way. Statistical analysis, warm-up calibration and HTML
//! reports are intentionally absent; swap this crate for the real
//! `criterion` (same import paths) when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // The first non-flag argument Cargo forwards is the benchmark name
        // filter (`cargo bench -- <filter>`).
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F>(&self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_with_sample_size(id, self.sample_size, f);
    }

    fn run_with_sample_size<F>(&self, id: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode { 1 } else { sample_size };
        let mut bencher = Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(id, &bencher.durations);
    }
}

/// Passed to every benchmark closure; times the body it is given.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per configured sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.durations.push(start.elapsed());
            black_box(out);
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_with_sample_size(&full, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_with_sample_size(&full, sample_size, &mut f);
        self
    }

    /// Finishes the group. Present for API compatibility.
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

fn report(id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{id:<50} (not timed)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().expect("non-empty");
    let max = durations.iter().max().expect("non-empty");
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        durations.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions with an optional shared config,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
            test_mode: false,
        };
        let mut runs = 0usize;
        c.bench_function("stub/smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn groups_respect_sample_size_override() {
        let mut c = Criterion {
            sample_size: 50,
            filter: None,
            test_mode: false,
        };
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
                b.iter(|| runs += 1)
            });
            group.finish();
        }
        assert_eq!(runs, 2);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("other".to_string()),
            test_mode: false,
        };
        let mut runs = 0usize;
        c.bench_function("stub/smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
