//! Minimal, API-compatible stand-in for the subset of `proptest` that the
//! `thermsched` workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors this stub instead of the real proptest. It provides:
//!
//! * a [`Strategy`](strategy::Strategy) trait with `prop_map`, implemented
//!   for numeric ranges,
//! * [`collection::vec`] and [`collection::btree_set`] strategies,
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, and
//! * a [`ProptestConfig`](test_runner::ProptestConfig) with a pinned RNG
//!   seed, case count, and file-based failure persistence: the seed of every
//!   failing case is appended to a `*.proptest-regressions` file next to the
//!   test source, and persisted seeds are replayed first on the next run.
//!
//! Shrinking is intentionally absent — failures report the case seed, which
//! reproduces the input deterministically. Swap this crate for the real
//! `proptest` (same import paths) when a registry is available; the one
//! stub-only API is [`ProptestConfig::with_rng_seed`](test_runner::ProptestConfig::with_rng_seed),
//! whose call sites must be ported to real proptest's seeding mechanism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of type `Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Number of elements a collection strategy should produce: either an
    /// exact count (`usize`) or a half-open range of counts.
    pub trait IntoSizeRange {
        /// Draws a size from the allowed set.
        fn sample_size(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_size(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_size(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl IntoSizeRange,
    ) -> VecStrategy<S, impl IntoSizeRange> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with distinct elements from `element`.
    pub fn btree_set<S>(
        element: S,
        size: impl IntoSizeRange,
    ) -> BTreeSetStrategy<S, impl IntoSizeRange>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample_size(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than the requested size
            // (e.g. 0..15 with size up to 8 is fine, but not guaranteed in
            // general), so bound the rejection loop like the real crate does.
            let mut attempts = 0usize;
            let max_attempts = 100 * target.max(1);
            while set.len() < target && attempts < max_attempts {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    //! The case runner: configuration, failure persistence and replay.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;
    use std::fs;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// A failed property case, carrying the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds an error from an assertion message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Base RNG seed. Each case derives its own seed from this value,
        /// the test name and the case index, so runs are fully reproducible.
        pub rng_seed: u64,
        /// Whether failing case seeds are appended to the per-source-file
        /// `*.proptest-regressions` file and replayed on later runs.
        pub failure_persistence: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                rng_seed: 0x7468_6572_6d73_6368, // "thermsch"
                failure_persistence: true,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration with the given case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }

        /// Builder-style override of the base RNG seed.
        #[must_use]
        pub fn with_rng_seed(mut self, seed: u64) -> Self {
            self.rng_seed = seed;
            self
        }
    }

    /// Derives the per-case seed. FNV-1a over the test name, mixed with the
    /// base seed and case index.
    fn case_seed(base: u64, test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ base.rotate_left(17) ^ ((case as u64) << 32 | case as u64)
    }

    fn regression_path(source_file: &str) -> PathBuf {
        // `file!()` paths are relative to the workspace root, but the test
        // binary's CWD is the *member crate's* manifest dir, so for any
        // member other than the root package the raw path would resolve to
        // e.g. `crates/linalg/crates/linalg/tests/...`. Walk up from the
        // CWD until the source file itself is found and anchor there.
        let relative = PathBuf::from(source_file);
        if let Ok(cwd) = std::env::current_dir() {
            let mut dir = cwd.as_path();
            loop {
                if dir.join(&relative).is_file() {
                    return dir.join(&relative).with_extension("proptest-regressions");
                }
                match dir.parent() {
                    Some(parent) => dir = parent,
                    None => break,
                }
            }
        }
        relative.with_extension("proptest-regressions")
    }

    fn persisted_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
        let Ok(content) = fs::read_to_string(regression_path(source_file)) else {
            return Vec::new();
        };
        content
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let mut parts = line.split_whitespace();
                let name = parts.next()?;
                let seed = parts.next()?.parse().ok()?;
                (name == test_name).then_some(seed)
            })
            .collect()
    }

    fn persist_failure(source_file: &str, test_name: &str, seed: u64) {
        let path = regression_path(source_file);
        let header_needed = !path.exists();
        let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!(
                "proptest stub: could not persist regression to {}",
                path.display()
            );
            return;
        };
        if header_needed {
            let _ = writeln!(
                file,
                "# Seeds for failure cases proptest has generated in the past.\n\
                 # It is automatically read and these particular cases re-run before any\n\
                 # novel cases are generated. Format: `<test name> <case seed>` per line."
            );
        }
        let _ = writeln!(file, "{test_name} {seed}");
    }

    /// Runs one property: replays persisted failures, then `config.cases`
    /// fresh cases.
    ///
    /// # Panics
    ///
    /// Panics (failing the surrounding `#[test]`) on the first failing case,
    /// after persisting its seed.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, source_file: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        if config.failure_persistence {
            for seed in persisted_seeds(source_file, test_name) {
                let mut rng = StdRng::seed_from_u64(seed);
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "persisted regression case failed (test `{test_name}`, seed {seed}): {e}"
                    );
                }
            }
        }
        for i in 0..config.cases {
            let seed = case_seed(config.rng_seed, test_name, i);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                if config.failure_persistence {
                    persist_failure(source_file, test_name, seed);
                }
                panic!("property `{test_name}` failed at case {i} (seed {seed}): {e}");
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not aborting the
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property-based tests, mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ::core::file!(),
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(
                                &($strategy),
                                __proptest_rng,
                            );
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (0.5f64..5.0).sample(&mut rng);
            assert!((0.5..5.0).contains(&x));
            let n = (1usize..6).sample(&mut rng);
            assert!((1..6).contains(&n));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (1usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn collection_vec_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = crate::collection::vec(-1.0f64..1.0, 9usize);
        assert_eq!(s.sample(&mut rng).len(), 9);
    }

    #[test]
    fn collection_btree_set_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = crate::collection::btree_set(0usize..15, 1..8);
        for _ in 0..100 {
            let set = s.sample(&mut rng);
            assert!((1..8).contains(&set.len()));
            assert!(set.iter().all(|&v| v < 15));
        }
    }

    #[test]
    fn config_with_cases_keeps_pinned_seed() {
        let c = ProptestConfig::with_cases(32);
        assert_eq!(c.cases, 32);
        assert_eq!(c.rng_seed, ProptestConfig::default().rng_seed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_passing_tests(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(n * 2 / 2, n);
        }
    }
}
