//! Facade overhead: `Engine::schedule()` versus driving
//! `ThermalAwareScheduler::schedule()` directly.
//!
//! Two no-facade baselines bracket the comparison:
//!
//! * **old-api** — `ThermalAwareScheduler::new(..)?.schedule()?` per run,
//!   which is how every pre-`Engine` driver actually called the scheduler
//!   (the guidance model is rebuilt each time). Against this like-for-like
//!   migration baseline the facade is *cheaper* — well under the 1% budget,
//!   and typically negative — because the engine prebuilds the model once
//!   and lends it to every run.
//! * **prebuilt** — a hand-held scheduler constructed once, `schedule()`
//!   called per run. This stricter baseline isolates what the facade
//!   genuinely adds per cold run: publishing each fresh result to the
//!   shared session cache (one clone + lock per unique session) plus a
//!   virtual dispatch per simulation — a few microseconds, i.e. a few
//!   percent of a single ~50 µs fast-path run, repaid many times over as
//!   soon as any later run reuses the warm cache.
//!
//! The measured numbers are recorded to `BENCH_pr3.json` at the workspace
//! root, *alongside* (never overwriting) the committed `BENCH_pr2.json`
//! fast-path baseline, extending the per-PR benchmark trajectory.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched::{Engine, SchedulerConfig, ThermalAwareScheduler};
use thermsched_bench::{baseline_recording_enabled, median};
use thermsched_soc::{library as soc_library, SystemUnderTest};
use thermsched_thermal::RcThermalSimulator;

/// The strict no-facade baseline: a scheduler constructed once (model
/// prebuilt) whose `schedule()` is invoked per run.
fn prebuilt_scheduler<'a>(
    sut: &'a SystemUnderTest,
    sim: &'a RcThermalSimulator,
    tl: f64,
    stcl: f64,
) -> ThermalAwareScheduler<'a, RcThermalSimulator> {
    let config = SchedulerConfig::new(tl, stcl).expect("valid config");
    ThermalAwareScheduler::new(sut, sim, config).expect("scheduler builds")
}

/// The like-for-like migration baseline: construct-and-schedule per run,
/// exactly as the deprecated experiment drivers did.
fn old_api_run(sut: &SystemUnderTest, sim: &RcThermalSimulator, tl: f64, stcl: f64) {
    let config = SchedulerConfig::new(tl, stcl).expect("valid config");
    ThermalAwareScheduler::new(sut, sim, config)
        .expect("scheduler builds")
        .schedule()
        .expect("schedule generation succeeds");
}

/// Interleaved comparison of several workloads: `samples` timing samples of
/// `batch` back-to-back runs each (after one warm-up batch per workload),
/// returning per-workload median per-run seconds and, for every workload,
/// the median of its per-sample time ratio against workload 0. A single
/// schedule generation on the fast path takes only tens of microseconds, so
/// individual runs are dominated by timer and scheduler jitter, and
/// consecutive (non-interleaved) loops are biased by slow frequency drift;
/// batching plus per-sample pairing cancels both down to the sub-percent
/// resolution the facade overhead claim needs.
fn interleaved_median_seconds(
    samples: usize,
    batch: usize,
    workloads: &mut [&mut dyn FnMut()],
) -> (Vec<f64>, Vec<f64>) {
    let time_batch = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        start.elapsed().as_secs_f64() / batch as f64
    };
    for f in workloads.iter_mut() {
        time_batch(*f);
    }
    let n = workloads.len();
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); n];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); n];
    for _ in 0..samples {
        let mut sample = Vec::with_capacity(n);
        for f in workloads.iter_mut() {
            sample.push(time_batch(*f));
        }
        for (i, &t) in sample.iter().enumerate() {
            times[i].push(t);
            ratios[i].push(t / sample[0]);
        }
    }
    (
        times.into_iter().map(median).collect(),
        ratios.into_iter().map(median).collect(),
    )
}

/// The benchmark ids whose selection allows (re)recording `BENCH_pr3.json`.
const RECORDED_IDS: [&str; 8] = [
    "engine_overhead/old_api/alpha21364",
    "engine_overhead/prebuilt/alpha21364",
    "engine_overhead/engine_cold/alpha21364",
    "engine_overhead/engine_warm/alpha21364",
    "engine_overhead/old_api/figure1",
    "engine_overhead/prebuilt/figure1",
    "engine_overhead/engine_cold/figure1",
    "engine_overhead/engine_warm/figure1",
];

fn bench_engine_overhead(c: &mut Criterion) {
    let record = baseline_recording_enabled(&RECORDED_IDS);
    let suts: [(&str, SystemUnderTest, f64, f64); 2] = [
        ("alpha21364", soc_library::alpha21364_sut(), 165.0, 50.0),
        ("figure1", soc_library::figure1_sut(), 90.0, 40.0),
    ];
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(10);
    for (name, sut, tl, stcl) in &suts {
        let sim = RcThermalSimulator::from_floorplan(sut.floorplan()).expect("model builds");
        let config = SchedulerConfig::new(*tl, *stcl).expect("valid config");
        let engine = Engine::builder()
            .sut(sut)
            .backend(&sim)
            .config(config)
            .build()
            .expect("engine builds");

        let prebuilt = prebuilt_scheduler(sut, &sim, *tl, *stcl);

        // The facade must not change the answer.
        let direct_outcome = prebuilt.schedule().expect("direct schedules");
        engine.cache().clear();
        let via_engine = engine.schedule().expect("engine schedules");
        assert_eq!(
            direct_outcome.schedule, via_engine.schedule,
            "{name}: facade changed the schedule"
        );
        assert_eq!(
            direct_outcome.simulation_effort,
            via_engine.simulation_effort
        );

        group.bench_with_input(BenchmarkId::new("old_api", name), &(), |b, ()| {
            b.iter(|| old_api_run(sut, &sim, *tl, *stcl))
        });
        group.bench_with_input(BenchmarkId::new("prebuilt", name), &(), |b, ()| {
            b.iter(|| prebuilt.schedule().expect("direct schedules"))
        });
        // Cold engine runs: clearing the cache keeps the simulation work
        // identical to the direct paths, so the difference is pure facade
        // overhead (shared-cache publication + dynamic dispatch).
        group.bench_with_input(BenchmarkId::new("engine_cold", name), &(), |b, ()| {
            b.iter(|| {
                engine.cache().clear();
                engine.schedule().expect("engine schedules")
            })
        });
        // Warm engine runs: what the long-lived cache buys on repeats.
        engine.schedule().expect("warm-up run");
        group.bench_with_input(BenchmarkId::new("engine_warm", name), &(), |b, ()| {
            b.iter(|| engine.schedule().expect("engine schedules"))
        });

        if record {
            // All four workloads interleaved sample by sample, so slow
            // frequency drift hits them equally and the per-sample ratios
            // are clean. The per-iteration cache reset on the cold-engine
            // side is a harness artefact — a production engine never clears;
            // the warm cache is the point — so its cost is measured on its
            // own (repopulation untimed) and subtracted out of the cold
            // engine numbers.
            let (times, ratios) = interleaved_median_seconds(
                25,
                40,
                &mut [
                    &mut || old_api_run(sut, &sim, *tl, *stcl),
                    &mut || {
                        prebuilt.schedule().expect("direct schedules");
                    },
                    &mut || {
                        engine.cache().clear();
                        engine.schedule().expect("engine schedules");
                    },
                    &mut || {
                        engine.schedule().expect("engine schedules");
                    },
                ],
            );
            let clear_s = {
                let clears: Vec<f64> = (0..101)
                    .map(|_| {
                        engine.schedule().expect("repopulate the cache");
                        let start = Instant::now();
                        engine.cache().clear();
                        start.elapsed().as_secs_f64()
                    })
                    .collect();
                median(clears)
            };
            let old_api_s = times[0];
            let prebuilt_s = times[1];
            let engine_cold_s = (times[2] - clear_s).max(0.0);
            let engine_warm_s = times[3];
            // Headline overhead: facade vs the old construct-and-schedule
            // call pattern it replaces, clear-corrected.
            let overhead_vs_old_api = ratios[2] - clear_s / old_api_s - 1.0;
            let overhead_vs_prebuilt = ratios[2] / ratios[1] - clear_s / prebuilt_s - 1.0;
            let warm_speedup = 1.0 / ratios[3];
            rows.push((
                *name,
                old_api_s,
                prebuilt_s,
                engine_cold_s,
                overhead_vs_old_api,
                overhead_vs_prebuilt,
                engine_warm_s,
                warm_speedup,
            ));
        }
    }
    group.finish();
    if record {
        write_baseline(&rows);
    }
}

/// Records the measured numbers as `BENCH_pr3.json` at the workspace root.
/// Hand-rolled JSON: the workspace has no registry access, hence no serde.
#[allow(clippy::type_complexity)]
fn write_baseline(rows: &[(&str, f64, f64, f64, f64, f64, f64, f64)]) {
    let mut entries: Vec<String> = Vec::new();
    for (
        name,
        old_api_s,
        prebuilt_s,
        engine_cold_s,
        overhead_vs_old_api,
        overhead_vs_prebuilt,
        engine_warm_s,
        warm_speedup,
    ) in rows
    {
        println!(
            "engine_overhead/{name}: old-api {:.3} ms, prebuilt {:.3} ms, \
             engine cold {:.3} ms (overhead vs old-api {:+.2}%, vs prebuilt {:+.2}%), \
             engine warm {:.3} ms (speedup {warm_speedup:.1}x)",
            old_api_s * 1e3,
            prebuilt_s * 1e3,
            engine_cold_s * 1e3,
            overhead_vs_old_api * 1e2,
            overhead_vs_prebuilt * 1e2,
            engine_warm_s * 1e3,
        );
        entries.push(format!(
            "    \"{name}\": {{\n      \"old_api_seconds\": {old_api_s:.6e},\n      \"prebuilt_seconds\": {prebuilt_s:.6e},\n      \"engine_cold_seconds\": {engine_cold_s:.6e},\n      \"engine_overhead_fraction\": {overhead_vs_old_api:.4},\n      \"engine_overhead_vs_prebuilt_fraction\": {overhead_vs_prebuilt:.4},\n      \"engine_warm_seconds\": {engine_warm_s:.6e},\n      \"warm_cache_speedup\": {warm_speedup:.2}\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 3,\n  \"bench\": \"engine_overhead\",\n  \"description\": \"Engine facade vs direct ThermalAwareScheduler::schedule(). engine_overhead_fraction compares a cold engine run against the old construct-and-schedule call pattern the facade replaces (the <1% budget; typically negative because the engine prebuilds the guidance model). engine_overhead_vs_prebuilt_fraction is the stricter comparison against a hand-prebuilt scheduler and prices the shared-cache publication. Warm runs show the shared-session-cache payoff. Median wall-clock, interleaved batched sampling.\",\n  \"systems\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_overhead
}
criterion_main!(benches);
