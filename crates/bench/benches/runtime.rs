//! P1: raw runtime of the building blocks — steady-state solves, transient
//! session simulation and schedule generation — versus SoC size. The paper's
//! "rapid generation" claim rests on the guidance model keeping the number of
//! expensive simulations small; this bench quantifies both sides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched::{SchedulerConfig, ThermalAwareScheduler};
use thermsched_bench::alpha_fixture;
use thermsched_floorplan::library as fp_library;
use thermsched_soc::{GeneratorConfig, SocGenerator};
use thermsched_thermal::{PowerMap, RcThermalSimulator, ThermalSimulator};

fn bench_thermal_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/steady_state_solve");
    for n in [4usize, 8, 12, 16] {
        let fp = fp_library::uniform_grid(n, n, 1.5);
        let sim = RcThermalSimulator::from_floorplan(&fp).expect("grid model builds");
        let power = PowerMap::from_vec(vec![1.0; fp.block_count()]).expect("valid power");
        group.bench_with_input(
            BenchmarkId::from_parameter(n * n),
            &(sim, power),
            |b, (sim, power)| b.iter(|| sim.steady_state(power).expect("solve succeeds")),
        );
    }
    group.finish();
}

fn bench_session_simulation(c: &mut Criterion) {
    let (sut, sim) = alpha_fixture();
    let mut power = PowerMap::zeros(sut.core_count());
    for core in 0..5 {
        power.set(core, sut.test_power(core)).expect("valid power");
    }
    c.bench_function("runtime/transient_session_1s", |b| {
        b.iter(|| {
            sim.simulate_session(&power, 1.0)
                .expect("simulation succeeds")
        })
    });
}

fn bench_schedule_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/schedule_generation");
    group.sample_size(10);
    for grid in [3usize, 4, 5] {
        let config = GeneratorConfig {
            grid_columns: grid,
            grid_rows: grid,
            ..GeneratorConfig::default()
        };
        let mut generator = SocGenerator::new(7, config).expect("valid generator");
        let sut = generator.generate().expect("generation succeeds");
        let sim = RcThermalSimulator::from_floorplan(sut.floorplan()).expect("model builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(grid * grid),
            &(sut, sim),
            |b, (sut, sim)| {
                b.iter(|| {
                    let config = SchedulerConfig::new(170.0, 60.0).expect("valid config");
                    ThermalAwareScheduler::new(sut, sim, config)
                        .expect("scheduler builds")
                        .schedule()
                        .expect("schedule generation succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_thermal_solver, bench_session_simulation, bench_schedule_generation_scaling
}
criterion_main!(benches);
