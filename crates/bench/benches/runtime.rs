//! P1: raw runtime of the building blocks — steady-state solves, transient
//! session simulation and schedule generation — versus SoC size. The paper's
//! "rapid generation" claim rests on the guidance model keeping the number of
//! expensive simulations small; this bench quantifies both sides.
//!
//! The `schedule_paths` group additionally compares full-schedule generation
//! through the sequential implicit-Euler reference path against the
//! precomputed-operator fast path (now the library default) on both library
//! SUTs, and verifies that the two paths produce identical schedules. The
//! PR 2 wall-clock baseline for this comparison is the *committed*
//! `BENCH_pr2.json` at the workspace root — a historical record this bench
//! no longer rewrites; the facade-era numbers are recorded by the
//! `engine_overhead` bench as `BENCH_pr3.json` alongside it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched::{ScheduleOutcome, SchedulerConfig, ThermalAwareScheduler};
use thermsched_bench::alpha_fixture;
use thermsched_floorplan::library as fp_library;
use thermsched_soc::{library as soc_library, GeneratorConfig, SocGenerator, SystemUnderTest};
use thermsched_thermal::{PowerMap, RcThermalSimulator, ThermalSimulator};

fn bench_thermal_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/steady_state_solve");
    for n in [4usize, 8, 12, 16] {
        let fp = fp_library::uniform_grid(n, n, 1.5);
        let sim = RcThermalSimulator::from_floorplan(&fp).expect("grid model builds");
        let power = PowerMap::from_vec(vec![1.0; fp.block_count()]).expect("valid power");
        group.bench_with_input(
            BenchmarkId::from_parameter(n * n),
            &(sim, power),
            |b, (sim, power)| b.iter(|| sim.steady_state(power).expect("solve succeeds")),
        );
    }
    group.finish();
}

fn bench_session_simulation(c: &mut Criterion) {
    let (sut, sim) = alpha_fixture();
    let mut power = PowerMap::zeros(sut.core_count());
    for core in 0..5 {
        power.set(core, sut.test_power(core)).expect("valid power");
    }
    c.bench_function("runtime/transient_session_1s", |b| {
        b.iter(|| {
            sim.simulate_session(&power, 1.0)
                .expect("simulation succeeds")
        })
    });
}

fn bench_schedule_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/schedule_generation");
    group.sample_size(10);
    for grid in [3usize, 4, 5] {
        let config = GeneratorConfig {
            grid_columns: grid,
            grid_rows: grid,
            ..GeneratorConfig::default()
        };
        let mut generator = SocGenerator::new(7, config).expect("valid generator");
        let sut = generator.generate().expect("generation succeeds");
        let sim = RcThermalSimulator::from_floorplan(sut.floorplan()).expect("model builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(grid * grid),
            &(sut, sim),
            |b, (sut, sim)| {
                b.iter(|| {
                    let config = SchedulerConfig::new(170.0, 60.0).expect("valid config");
                    ThermalAwareScheduler::new(sut, sim, config)
                        .expect("scheduler builds")
                        .schedule()
                        .expect("schedule generation succeeds")
                })
            },
        );
    }
    group.finish();
}

/// One full scheduling run at the paper's mid-range operating point for the
/// given system.
fn run_schedule(
    sut: &SystemUnderTest,
    sim: &RcThermalSimulator,
    tl: f64,
    stcl: f64,
) -> ScheduleOutcome {
    let config = SchedulerConfig::new(tl, stcl).expect("valid config");
    ThermalAwareScheduler::new(sut, sim, config)
        .expect("scheduler builds")
        .schedule()
        .expect("schedule generation succeeds")
}

fn bench_schedule_paths(c: &mut Criterion) {
    let suts: [(&str, SystemUnderTest, f64, f64); 2] = [
        ("alpha21364", soc_library::alpha21364_sut(), 165.0, 50.0),
        ("figure1", soc_library::figure1_sut(), 90.0, 40.0),
    ];
    let mut group = c.benchmark_group("runtime/schedule_paths");
    group.sample_size(10);
    for (name, sut, tl, stcl) in &suts {
        let reference = RcThermalSimulator::reference_from_floorplan(sut.floorplan())
            .expect("reference model builds");
        // Default construction = precomputed-operator fast path.
        let fast = RcThermalSimulator::from_floorplan(sut.floorplan()).expect("fast model builds");

        // The speedup claim is only meaningful if both paths produce the
        // same schedule; verify before timing anything.
        let r = run_schedule(sut, &reference, *tl, *stcl);
        let f = run_schedule(sut, &fast, *tl, *stcl);
        assert_eq!(r.schedule, f.schedule, "{name}: paths disagree on sessions");
        assert_eq!(r.simulation_effort, f.simulation_effort);
        assert_eq!(r.discarded_sessions, f.discarded_sessions);

        group.bench_with_input(
            BenchmarkId::new("reference", name),
            &(sut, &reference),
            |b, (sut, sim)| b.iter(|| run_schedule(sut, sim, *tl, *stcl)),
        );
        group.bench_with_input(
            BenchmarkId::new("fast", name),
            &(sut, &fast),
            |b, (sut, sim)| b.iter(|| run_schedule(sut, sim, *tl, *stcl)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_thermal_solver, bench_session_simulation,
        bench_schedule_generation_scaling, bench_schedule_paths
}
criterion_main!(benches);
