//! P1: raw runtime of the building blocks — steady-state solves, transient
//! session simulation and schedule generation — versus SoC size. The paper's
//! "rapid generation" claim rests on the guidance model keeping the number of
//! expensive simulations small; this bench quantifies both sides.
//!
//! The `schedule_paths` group additionally compares full-schedule generation
//! through the sequential implicit-Euler reference path against the
//! precomputed-operator fast path (+ session cache) on both library SUTs,
//! verifies that the two paths produce identical schedules, and records the
//! measured baseline to `BENCH_pr2.json` at the workspace root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched::{ScheduleOutcome, SchedulerConfig, ThermalAwareScheduler};
use thermsched_bench::alpha_fixture;
use thermsched_floorplan::library as fp_library;
use thermsched_soc::{library as soc_library, GeneratorConfig, SocGenerator, SystemUnderTest};
use thermsched_thermal::{PowerMap, RcThermalSimulator, ThermalSimulator};

fn bench_thermal_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/steady_state_solve");
    for n in [4usize, 8, 12, 16] {
        let fp = fp_library::uniform_grid(n, n, 1.5);
        let sim = RcThermalSimulator::from_floorplan(&fp).expect("grid model builds");
        let power = PowerMap::from_vec(vec![1.0; fp.block_count()]).expect("valid power");
        group.bench_with_input(
            BenchmarkId::from_parameter(n * n),
            &(sim, power),
            |b, (sim, power)| b.iter(|| sim.steady_state(power).expect("solve succeeds")),
        );
    }
    group.finish();
}

fn bench_session_simulation(c: &mut Criterion) {
    let (sut, sim) = alpha_fixture();
    let mut power = PowerMap::zeros(sut.core_count());
    for core in 0..5 {
        power.set(core, sut.test_power(core)).expect("valid power");
    }
    c.bench_function("runtime/transient_session_1s", |b| {
        b.iter(|| {
            sim.simulate_session(&power, 1.0)
                .expect("simulation succeeds")
        })
    });
}

fn bench_schedule_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/schedule_generation");
    group.sample_size(10);
    for grid in [3usize, 4, 5] {
        let config = GeneratorConfig {
            grid_columns: grid,
            grid_rows: grid,
            ..GeneratorConfig::default()
        };
        let mut generator = SocGenerator::new(7, config).expect("valid generator");
        let sut = generator.generate().expect("generation succeeds");
        let sim = RcThermalSimulator::from_floorplan(sut.floorplan()).expect("model builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(grid * grid),
            &(sut, sim),
            |b, (sut, sim)| {
                b.iter(|| {
                    let config = SchedulerConfig::new(170.0, 60.0).expect("valid config");
                    ThermalAwareScheduler::new(sut, sim, config)
                        .expect("scheduler builds")
                        .schedule()
                        .expect("schedule generation succeeds")
                })
            },
        );
    }
    group.finish();
}

/// One full scheduling run at the paper's mid-range operating point for the
/// given system.
fn run_schedule(
    sut: &SystemUnderTest,
    sim: &RcThermalSimulator,
    tl: f64,
    stcl: f64,
) -> ScheduleOutcome {
    let config = SchedulerConfig::new(tl, stcl).expect("valid config");
    ThermalAwareScheduler::new(sut, sim, config)
        .expect("scheduler builds")
        .schedule()
        .expect("schedule generation succeeds")
}

/// Median wall-clock seconds of `samples` runs of `f` (after one warm-up).
fn median_seconds<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Whether this invocation should (re)measure and overwrite the committed
/// `BENCH_pr2.json` baseline. Mirrors the criterion stub's filter semantics:
/// the baseline is recorded only when the `schedule_paths` benchmarks are
/// actually selected, and never in `cargo test --benches` (`--test`) mode —
/// a filtered run like `cargo bench -- steady_state` must not clobber the
/// committed numbers with timings nobody asked for.
fn baseline_recording_enabled() -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--test") {
        return false;
    }
    match args.iter().find(|a| !a.starts_with('-')) {
        None => true,
        Some(filter) => [
            "runtime/schedule_paths/reference/alpha21364",
            "runtime/schedule_paths/fast/alpha21364",
            "runtime/schedule_paths/reference/figure1",
            "runtime/schedule_paths/fast/figure1",
        ]
        .iter()
        .any(|id| id.contains(filter.as_str())),
    }
}

fn bench_schedule_paths(c: &mut Criterion) {
    let record = baseline_recording_enabled();
    let suts: [(&str, SystemUnderTest, f64, f64); 2] = [
        ("alpha21364", soc_library::alpha21364_sut(), 165.0, 50.0),
        ("figure1", soc_library::figure1_sut(), 90.0, 40.0),
    ];
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("runtime/schedule_paths");
    group.sample_size(10);
    for (name, sut, tl, stcl) in &suts {
        let reference =
            RcThermalSimulator::from_floorplan(sut.floorplan()).expect("reference model builds");
        let fast =
            RcThermalSimulator::fast_from_floorplan(sut.floorplan()).expect("fast model builds");

        // The speedup claim is only meaningful if both paths produce the
        // same schedule; verify before timing anything.
        let r = run_schedule(sut, &reference, *tl, *stcl);
        let f = run_schedule(sut, &fast, *tl, *stcl);
        assert_eq!(r.schedule, f.schedule, "{name}: paths disagree on sessions");
        assert_eq!(r.simulation_effort, f.simulation_effort);
        assert_eq!(r.discarded_sessions, f.discarded_sessions);

        group.bench_with_input(
            BenchmarkId::new("reference", name),
            &(sut, &reference),
            |b, (sut, sim)| b.iter(|| run_schedule(sut, sim, *tl, *stcl)),
        );
        group.bench_with_input(
            BenchmarkId::new("fast", name),
            &(sut, &fast),
            |b, (sut, sim)| b.iter(|| run_schedule(sut, sim, *tl, *stcl)),
        );

        if record {
            let reference_s = median_seconds(9, || {
                run_schedule(sut, &reference, *tl, *stcl);
            });
            let fast_s = median_seconds(9, || {
                run_schedule(sut, &fast, *tl, *stcl);
            });
            rows.push((*name, reference_s, fast_s));
        }
    }
    group.finish();
    if record {
        write_baseline(&rows);
    }
}

/// Records the measured baseline as `BENCH_pr2.json` at the workspace root so
/// future PRs have a trajectory to compare against. Hand-rolled JSON: the
/// workspace has no registry access, hence no serde.
fn write_baseline(rows: &[(&str, f64, f64)]) {
    let mut entries: Vec<String> = Vec::new();
    for (name, reference_s, fast_s) in rows {
        let speedup = reference_s / fast_s;
        println!(
            "schedule_paths/{name}: reference {:.3} ms, fast {:.3} ms, speedup {speedup:.1}x",
            reference_s * 1e3,
            fast_s * 1e3
        );
        entries.push(format!(
            "    \"{name}\": {{\n      \"reference_seconds\": {reference_s:.6e},\n      \"fast_seconds\": {fast_s:.6e},\n      \"speedup\": {speedup:.2}\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"bench\": \"runtime/schedule_paths\",\n  \"description\": \"Full-schedule generation: implicit-Euler reference path vs precomputed-operator fast path + session cache (median wall-clock)\",\n  \"systems\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_thermal_solver, bench_session_simulation,
        bench_schedule_generation_scaling, bench_schedule_paths
}
criterion_main!(benches);
