//! Regenerates Figure 1 of the paper (the motivational hot-spot example) and
//! benchmarks the thermal evaluation of the two equal-power sessions.

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report};
use thermsched_bench::figure1_fixture;

fn bench_figure1(c: &mut Criterion) {
    // Print the reproduced figure once so `cargo bench` output documents it.
    let report_data = experiments::figure1().expect("figure1 experiment runs");
    println!("\n{}", report::render_figure1(&report_data));

    let (sut, simulator) = figure1_fixture();
    c.bench_function("figure1/equal_power_sessions", |b| {
        b.iter(|| {
            let r =
                experiments::figure1_with(&sut, &simulator, 45.0).expect("figure1 experiment runs");
            assert!(r.temperature_gap > 0.0);
            r
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figure1
}
criterion_main!(benches);
