//! Resolution scaling of the grid backend and the multi-RHS session batcher.
//!
//! Two questions, answered on one machine and recorded to `BENCH_pr6.json`
//! (alongside, never overwriting, the frozen `BENCH_pr2/3/4/5.json`
//! history):
//!
//! 1. **What does resolution cost under each stepper?** Median wall-clock of
//!    one full-fidelity transient session (1 s at 10 ms steps) on the
//!    Alpha-21364 floorplan at 24×24, 48×48, 96×96 and 128×128 cells, for
//!    the banded implicit-Euler reference and the Peaceman–Rachford ADI
//!    stepper. The banded solve is `O(n·b)` per step with `b` growing with
//!    the grid edge; ADI is `O(n)` through tridiagonal sweeps, which is what
//!    makes 96×96+ affordable.
//! 2. **What does the multi-RHS batcher buy?** `k` same-duration sessions
//!    advanced through one column-blocked banded solve per step versus the
//!    same `k` sessions solved one at a time — identical arithmetic per
//!    lane (the results are bit-identical by contract), so the speedup is
//!    pure memory traffic: the factorisation is streamed once per step
//!    instead of once per step *per lane*.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched_bench::{baseline_recording_enabled, median};
use thermsched_soc::library;
use thermsched_thermal::{
    GridResolution, GridThermalSimulator, PackageConfig, PowerMap, ThermalBackend,
    ThermalSimulator, TransientConfig, TransientMethod,
};

/// The session every point of the curve integrates: 1 s at 10 ms steps.
const SESSION_SECONDS: f64 = 1.0;
const TIME_STEP: f64 = 1e-2;
/// Lanes of the multi-RHS comparison.
const LANES: usize = 8;

fn simulator(resolution: usize, method: TransientMethod) -> GridThermalSimulator {
    let sut = library::alpha21364_sut();
    GridThermalSimulator::with_config(
        sut.floorplan(),
        &PackageConfig::default(),
        GridResolution::new(resolution, resolution).unwrap(),
        TransientConfig {
            time_step: TIME_STEP,
            ..TransientConfig::default()
        }
        .with_method(method),
    )
    .expect("library floorplan fits the bench resolutions")
}

fn power_for(sim: &GridThermalSimulator) -> PowerMap {
    let mut power = PowerMap::zeros(sim.block_count());
    power.set(6, 18.0).unwrap();
    power.set(11, 12.0).unwrap();
    power
}

/// Per-lane power maps for the batched comparison: distinct powers so no
/// lane degenerates into another.
fn lane_powers(sim: &GridThermalSimulator) -> Vec<PowerMap> {
    (0..LANES)
        .map(|lane| {
            let mut power = PowerMap::zeros(sim.block_count());
            power
                .set(lane % sim.block_count(), 9.0 + lane as f64)
                .unwrap();
            power
                .set((lane + 7) % sim.block_count(), 4.0 + 0.5 * lane as f64)
                .unwrap();
            power
        })
        .collect()
}

fn session_seconds(sim: &GridThermalSimulator, power: &PowerMap) -> f64 {
    let started = Instant::now();
    sim.simulate_session(power, SESSION_SECONDS)
        .expect("session integrates");
    started.elapsed().as_secs_f64()
}

/// The benchmark ids whose selection allows (re)recording `BENCH_pr6.json`.
const RECORDED_IDS: [&str; 2] = ["resolution_curve/banded-24", "multi_rhs/batched"];

fn bench_resolution(c: &mut Criterion) {
    let record = baseline_recording_enabled(&RECORDED_IDS);

    // Criterion groups cover the cheap end of the curve and the batcher;
    // the full 24..128 sweep is measured once below when recording.
    let banded24 = simulator(24, TransientMethod::Auto);
    let adi24 = simulator(24, TransientMethod::Adi);
    let power = power_for(&banded24);
    let mut group = c.benchmark_group("resolution_curve");
    group.sample_size(10);
    group.bench_function("banded-24", |b| {
        b.iter(|| banded24.simulate_session(&power, SESSION_SECONDS).unwrap())
    });
    group.bench_function("adi-24", |b| {
        b.iter(|| adi24.simulate_session(&power, SESSION_SECONDS).unwrap())
    });
    group.finish();

    let powers = lane_powers(&banded24);
    let mut group = c.benchmark_group("multi_rhs");
    group.sample_size(10);
    group.bench_function("batched", |b| {
        b.iter(|| {
            banded24
                .simulate_sessions(&powers, SESSION_SECONDS)
                .unwrap()
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            powers
                .iter()
                .map(|p| banded24.simulate_session(p, SESSION_SECONDS).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();

    if record {
        const SAMPLES: usize = 7;
        let mut curve = Vec::new();
        for resolution in [24usize, 48, 96, 128] {
            let banded = simulator(resolution, TransientMethod::Auto);
            let adi = simulator(resolution, TransientMethod::Adi);
            let power = power_for(&banded);
            let mut banded_s = Vec::with_capacity(SAMPLES);
            let mut adi_s = Vec::with_capacity(SAMPLES);
            for _ in 0..SAMPLES {
                banded_s.push(session_seconds(&banded, &power));
                adi_s.push(session_seconds(&adi, &power));
            }
            let banded_ms = median(banded_s) * 1e3;
            let adi_ms = median(adi_s) * 1e3;
            println!(
                "resolution_curve {resolution}x{resolution}: banded {banded_ms:.3} ms, \
                 adi {adi_ms:.3} ms ({:.2}x)",
                banded_ms / adi_ms
            );
            curve.push((resolution, banded_ms, adi_ms));
        }

        // Interleaved best-of pairs (the PR 4 throughput recipe): on a
        // single-CPU container the minimum over many alternating runs is
        // the noise-robust estimate — medians still absorb scheduler
        // preemptions that hit one side of the pair.
        const PAIRS: usize = 20;
        let mut sequential_s = Vec::with_capacity(PAIRS);
        let mut batched_s = Vec::with_capacity(PAIRS);
        for _ in 0..PAIRS {
            let started = Instant::now();
            let single: Vec<_> = powers
                .iter()
                .map(|p| banded24.simulate_session(p, SESSION_SECONDS).unwrap())
                .collect();
            sequential_s.push(started.elapsed().as_secs_f64());
            let started = Instant::now();
            let batched = banded24
                .simulate_sessions(&powers, SESSION_SECONDS)
                .unwrap();
            batched_s.push(started.elapsed().as_secs_f64());
            assert_eq!(batched, single, "batching is bit-exact by contract");
        }
        let best = |samples: &[f64]| {
            samples
                .iter()
                .copied()
                .reduce(f64::min)
                .expect("PAIRS > 0 samples")
        };
        let sequential_ms = best(&sequential_s) * 1e3;
        let batched_ms = best(&batched_s) * 1e3;
        let speedup = sequential_ms / batched_ms;
        println!(
            "multi_rhs at 24x24, {LANES} lanes: sequential {sequential_ms:.3} ms vs \
             batched {batched_ms:.3} ms ({speedup:.2}x)"
        );
        write_baseline(&curve, sequential_ms, batched_ms, speedup);
    }
}

/// Records the measured numbers as `BENCH_pr6.json` at the workspace root.
/// Hand-rolled JSON: the workspace has no registry access, hence no serde.
fn write_baseline(curve: &[(usize, f64, f64)], sequential_ms: f64, batched_ms: f64, speedup: f64) {
    let mut points = String::new();
    for (i, (resolution, banded_ms, adi_ms)) in curve.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{\n      \"resolution\": \"{resolution}x{resolution}\",\n      \
             \"cells\": {},\n      \"banded_session_ms\": {banded_ms:.4},\n      \
             \"adi_session_ms\": {adi_ms:.4},\n      \
             \"banded_over_adi\": {:.4}\n    }}",
            resolution * resolution,
            banded_ms / adi_ms,
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"bench\": \"resolution_scaling\",\n  \"description\": \"Resolution scaling of the grid backend and the multi-RHS session batcher. resolution_curve: median wall-clock of one full-fidelity transient session (1 s at 10 ms steps, Alpha-21364 floorplan) per grid resolution, banded implicit Euler (O(n*b) per step) vs Peaceman-Rachford ADI (O(n) per step through shared tridiagonal sweeps); ADI is what makes 96x96+ affordable. multi_rhs: k same-duration sessions advanced through one column-blocked banded solve per step vs one at a time — bit-identical results by contract, so the speedup is pure memory traffic (the factorisation streams once per step instead of once per lane).\",\n  \"metadata\": {{\n    \"caveat\": \"single-CPU container timings; absolute milliseconds are machine-specific, the ratios between columns are the signal\",\n    \"session_seconds\": {SESSION_SECONDS},\n    \"time_step_seconds\": {TIME_STEP}\n  }},\n  \"resolution_curve\": [\n{points}\n  ],\n  \"multi_rhs\": {{\n    \"resolution\": \"24x24\",\n    \"lanes\": {LANES},\n    \"sequential_ms\": {sequential_ms:.4},\n    \"batched_ms\": {batched_ms:.4},\n    \"speedup\": {speedup:.4}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_resolution
}
criterion_main!(benches);
