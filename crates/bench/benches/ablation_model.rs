//! A3 ablation: fidelity of the guidance session thermal model — the paper's
//! modification 2 (drop active–active resistances) and the lateral-only
//! restriction, each toggled.

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report};
use thermsched_bench::alpha_fixture;

fn bench_model_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();

    let points = experiments::model_options_sweep(&sut, &simulator, 155.0, 60.0)
        .expect("model ablation runs");
    println!(
        "\n{}",
        report::render_ablation("A3 — session-model fidelity (TL=155, STCL=60)", &points)
    );

    c.bench_function("ablation/model_options_sweep", |b| {
        b.iter(|| {
            experiments::model_options_sweep(&sut, &simulator, 155.0, 60.0)
                .expect("model ablation runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_ablation
}
criterion_main!(benches);
