//! A3 ablation: fidelity of the guidance session thermal model — the paper's
//! modification 2 (drop active–active resistances) and the lateral-only
//! restriction, each toggled.

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{report, AblationPoint, Engine, SweepSpec};
use thermsched_bench::alpha_fixture;

fn bench_model_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let engine = Engine::builder()
        .sut(&sut)
        .backend(&simulator)
        .build()
        .expect("engine builds");
    let spec = SweepSpec::model_ablation(155.0, 60.0);

    let points: Vec<AblationPoint> = engine
        .sweep(&spec)
        .expect("model ablation runs")
        .into_points()
        .into_iter()
        .map(AblationPoint::from)
        .collect();
    println!(
        "\n{}",
        report::render_ablation("A3 — session-model fidelity (TL=155, STCL=60)", &points)
    );

    c.bench_function("ablation/model_options_sweep", |b| {
        b.iter(|| engine.sweep(&spec).expect("model ablation runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_ablation
}
criterion_main!(benches);
