//! Grid-backend fidelity cost and the cross-scenario operator cache.
//!
//! Two questions, answered on one machine and recorded to `BENCH_pr5.json`
//! (alongside, never overwriting, the frozen `BENCH_pr2/3/4.json` history):
//!
//! 1. **What does full fidelity cost at grid granularity?** One transient
//!    session integration (implicit Euler over the banded factorisation)
//!    versus one steady-state upper-bound solve (one banded direct solve)
//!    on the Alpha-21364 floorplan at 24×24 cells.
//! 2. **What does the operator cache buy a corpus?** Batch throughput with
//!    the grid-transient backend over a single-shape corpus (maximal
//!    reuse), operator cache on versus off, plus the backend-construction
//!    pass measured on its own — construction is exactly what the cache
//!    deduplicates, so its on/off ratio isolates the effect from job cost.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched_bench::{baseline_recording_enabled, median};
use thermsched_service::{
    BackendKind, Corpus, ScenarioSpec, ServiceConfig, ServiceRunner, StoreKind,
};
use thermsched_soc::library;
use thermsched_thermal::{
    GridResolution, GridThermalSimulator, PackageConfig, PowerMap, ThermalSimulator,
};

/// The grid-transient corpus: every scenario shares one 4×4 shape, so the
/// operator cache collapses all backend builds onto one factorisation.
fn corpus() -> Corpus {
    ScenarioSpec {
        seed: 55,
        scenarios: 8,
        grid_shapes: vec![(4, 4)],
        stc_limits: vec![40.0],
        ..ScenarioSpec::default()
    }
    .build()
    .expect("bench spec is valid")
}

fn config(operator_cache: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        store: StoreKind::Sharded { shards: 8 },
        backend: BackendKind::GridTransient { cells_per_core: 4 },
        operator_cache,
        batch_same_shape: true,
        ..ServiceConfig::default()
    }
}

fn fidelity_fixture() -> (GridThermalSimulator, PowerMap) {
    let sut = library::alpha21364_sut();
    let sim = GridThermalSimulator::new(
        sut.floorplan(),
        &PackageConfig::default(),
        GridResolution::new(24, 24).unwrap(),
    )
    .expect("library floorplan fits a 24x24 grid");
    let mut power = PowerMap::zeros(sim.block_count());
    power.set(6, 18.0).unwrap();
    power.set(11, 12.0).unwrap();
    (sim, power)
}

/// Jobs per second of one cold batch run.
fn batch_jobs_per_second(corpus: &Corpus, operator_cache: bool) -> f64 {
    let report = ServiceRunner::new(config(operator_cache))
        .expect("bench config is valid")
        .run(corpus)
        .expect("batch runs");
    assert_eq!(
        report.stats().completed,
        report.stats().job_count,
        "the bench corpus must complete everywhere"
    );
    report.stats().jobs_per_second
}

/// Wall-clock seconds of the backend-construction pass alone: build one
/// backend per scenario, through a fresh operator cache or privately.
fn backend_build_seconds(corpus: &Corpus, operator_cache: bool) -> f64 {
    use std::sync::Arc;
    use thermsched::OperatorCacheHandle;
    use thermsched_thermal::ThermalBackend;
    let started = Instant::now();
    let cache = OperatorCacheHandle::new();
    let mut built: Vec<Arc<dyn ThermalBackend>> = Vec::with_capacity(corpus.scenarios().len());
    for scenario in corpus.scenarios() {
        let build = || -> Result<Arc<dyn ThermalBackend>, thermsched_thermal::ThermalError> {
            Ok(Arc::new(GridThermalSimulator::new(
                scenario.sut.floorplan(),
                &PackageConfig::default(),
                GridResolution::new(scenario.grid.0 * 4, scenario.grid.1 * 4).unwrap(),
            )?))
        };
        let backend = if operator_cache {
            let key = BackendKind::GridTransient { cells_per_core: 4 }.key(scenario);
            cache.get_or_try_build(key, build).unwrap()
        } else {
            build().unwrap()
        };
        built.push(backend);
    }
    assert_eq!(built.len(), corpus.scenarios().len());
    started.elapsed().as_secs_f64()
}

/// The benchmark ids whose selection allows (re)recording `BENCH_pr5.json`.
const RECORDED_IDS: [&str; 2] = ["grid_fidelity/transient", "grid_operator_cache/on"];

fn bench_grid(c: &mut Criterion) {
    let record = baseline_recording_enabled(&RECORDED_IDS);
    let (sim, power) = fidelity_fixture();

    let mut group = c.benchmark_group("grid_fidelity");
    group.sample_size(10);
    group.bench_function("transient", |b| {
        b.iter(|| sim.transient(&power, 1.0).expect("session integrates"))
    });
    group.bench_function("steady", |b| {
        b.iter(|| sim.steady_state(&power).expect("steady state solves"))
    });
    group.finish();

    let corpus = corpus();
    let mut group = c.benchmark_group("grid_operator_cache");
    group.sample_size(10);
    group.bench_function("on", |b| b.iter(|| batch_jobs_per_second(&corpus, true)));
    group.bench_function("off", |b| b.iter(|| batch_jobs_per_second(&corpus, false)));
    group.finish();

    if record {
        // Fidelity cost: medians over repeated single solves.
        const SOLVE_SAMPLES: usize = 20;
        let time = |f: &mut dyn FnMut()| -> f64 {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64()
        };
        let mut transient_s = Vec::with_capacity(SOLVE_SAMPLES);
        let mut steady_s = Vec::with_capacity(SOLVE_SAMPLES);
        for _ in 0..SOLVE_SAMPLES {
            transient_s.push(time(&mut || {
                sim.transient(&power, 1.0).expect("session integrates");
            }));
            steady_s.push(time(&mut || {
                sim.steady_state(&power).expect("steady state solves");
            }));
        }
        let transient_ms = median(transient_s) * 1e3;
        let steady_ms = median(steady_s) * 1e3;
        println!(
            "grid_fidelity: transient {transient_ms:.3} ms vs steady {steady_ms:.3} ms \
             ({:.1}x for full fidelity)",
            transient_ms / steady_ms
        );

        // Operator cache: interleaved on/off pairs, best-of for throughput
        // (one-sided noise), medians for the construction pass.
        const PAIRS: usize = 8;
        let mut throughput: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        let mut build: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for pair in 0..PAIRS {
            let order: [bool; 2] = if pair % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            for on in order {
                let side = usize::from(!on);
                throughput[side].push(batch_jobs_per_second(&corpus, on));
                build[side].push(backend_build_seconds(&corpus, on));
            }
        }
        let best = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let jobs_on = best(&throughput[0]);
        let jobs_off = best(&throughput[1]);
        let build_on_ms = median(build[0].clone()) * 1e3;
        let build_off_ms = median(build[1].clone()) * 1e3;
        println!(
            "grid_operator_cache: {jobs_on:.2} jobs/s on vs {jobs_off:.2} jobs/s off \
             ({:.3}x); backend build pass {build_on_ms:.2} ms on vs {build_off_ms:.2} ms off \
             ({:.1}x)",
            jobs_on / jobs_off,
            build_off_ms / build_on_ms
        );
        write_baseline(
            &corpus,
            transient_ms,
            steady_ms,
            jobs_on,
            jobs_off,
            build_on_ms,
            build_off_ms,
        );
    }
}

/// Records the measured numbers as `BENCH_pr5.json` at the workspace root.
/// Hand-rolled JSON: the workspace has no registry access, hence no serde.
fn write_baseline(
    corpus: &Corpus,
    transient_ms: f64,
    steady_ms: f64,
    jobs_on: f64,
    jobs_off: f64,
    build_on_ms: f64,
    build_off_ms: f64,
) {
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"bench\": \"grid_transient\",\n  \"description\": \"Grid-backend fidelity cost and the cross-scenario operator cache. grid_fidelity: median wall-clock of one full-fidelity transient session integration (1 s at 1 ms steps, banded-Cholesky implicit Euler, Alpha-21364 at 24x24 cells) vs one steady-state upper-bound solve (one banded direct solve) — the ratio is the price of replacing the modification-1 bound with the real transient. operator_cache: batch throughput of a single-shape grid-transient corpus with the operator cache on vs off (best over 8 interleaved cold batches each; throughput noise is one-sided), plus the backend-construction pass alone (median), which is exactly the work the cache deduplicates.\",\n  \"grid_fidelity\": {{\n    \"resolution\": \"24x24\",\n    \"session_seconds\": 1.0,\n    \"time_step_seconds\": 0.001,\n    \"transient_ms\": {transient_ms:.4},\n    \"steady_state_ms\": {steady_ms:.4},\n    \"transient_over_steady\": {:.3}\n  }},\n  \"operator_cache\": {{\n    \"backend\": \"grid-transient(4)\",\n    \"scenarios\": {},\n    \"jobs\": {},\n    \"workers\": 4,\n    \"jobs_per_second_cache_on\": {jobs_on:.3},\n    \"jobs_per_second_cache_off\": {jobs_off:.3},\n    \"throughput_ratio_on_over_off\": {:.4},\n    \"backend_build_pass_ms_cache_on\": {build_on_ms:.4},\n    \"backend_build_pass_ms_cache_off\": {build_off_ms:.4},\n    \"build_ratio_off_over_on\": {:.2}\n  }}\n}}\n",
        transient_ms / steady_ms,
        corpus.scenarios().len(),
        corpus.jobs().len(),
        jobs_on / jobs_off,
        build_off_ms / build_on_ms,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grid
}
criterion_main!(benches);
