//! Regenerates Figure 5 of the paper: test-schedule length and simulation
//! effort versus the session thermal characteristic limit, for
//! TL ∈ {145, 155, 165} °C, and benchmarks one sweep point per series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched::{report, Engine, SchedulerConfig, SweepSpec};
use thermsched_bench::alpha_fixture;

fn bench_figure5(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let engine = Engine::builder()
        .sut(&sut)
        .backend(&simulator)
        .build()
        .expect("engine builds");

    // Print the full reproduced figure once.
    let figure = engine
        .sweep(&SweepSpec::figure5())
        .expect("figure5 sweep runs");
    println!("\n{}", report::render_figure5(figure.points()));

    // Benchmark the schedule generation at a tight and a loose STCL for the
    // middle temperature limit (155 C), through the engine facade.
    let mut group = c.benchmark_group("figure5/schedule_generation");
    for stcl in [20.0, 60.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(stcl), &stcl, |b, &stcl| {
            b.iter(|| {
                let config = SchedulerConfig::new(155.0, stcl).expect("valid config");
                engine
                    .schedule_with(config)
                    .expect("schedule generation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure5
}
criterion_main!(benches);
