//! Regenerates Table 1 of the paper: schedule length, simulation effort and
//! maximum temperature over the full TL × STCL grid, and benchmarks the
//! complete sweep through the `Engine`/`SweepRunner` facade.

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report, Engine, SweepSpec};
use thermsched_bench::alpha_fixture;

fn bench_table1(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let engine = Engine::builder()
        .sut(&sut)
        .backend(&simulator)
        .build()
        .expect("engine builds");

    // Print the full reproduced table once so the bench log documents it.
    let table = engine
        .sweep(&SweepSpec::table1())
        .expect("table1 sweep runs");
    println!("\n{}", report::render_table1(table.points()));
    println!(
        "cross-point cache: {} warm hits over {} points\n",
        table.warm_cache_hits(),
        table.len()
    );

    // Benchmark a single representative row group (one TL, all STCL values),
    // which is the unit of work a user exploring the trade-off would repeat.
    // Repeats run against the engine's warm session cache, exactly as they
    // would for that user.
    let row = SweepSpec::grid(&[165.0], &experiments::default_stc_limits());
    c.bench_function("table1/row_group_tl165", |b| {
        b.iter(|| engine.sweep(&row).expect("sweep runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
