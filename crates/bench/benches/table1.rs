//! Regenerates Table 1 of the paper: schedule length, simulation effort and
//! maximum temperature over the full TL × STCL grid, and benchmarks the
//! complete sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report};
use thermsched_bench::alpha_fixture;

fn bench_table1(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();

    // Print the full reproduced table once so the bench log documents it.
    let points = experiments::table1_sweep(
        &sut,
        &simulator,
        &experiments::default_temperature_limits(),
        &experiments::default_stc_limits(),
    )
    .expect("table1 sweep runs");
    println!("\n{}", report::render_table1(&points));

    // Benchmark a single representative row group (one TL, all STCL values),
    // which is the unit of work a user exploring the trade-off would repeat.
    c.bench_function("table1/row_group_tl165", |b| {
        b.iter(|| {
            experiments::table1_sweep(
                &sut,
                &simulator,
                &[165.0],
                &experiments::default_stc_limits(),
            )
            .expect("sweep runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
