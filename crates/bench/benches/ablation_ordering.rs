//! A2 ablation: candidate-core ordering strategies for the session-filling
//! loop (the paper's pseudocode leaves the iteration order unspecified).

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report};
use thermsched_bench::alpha_fixture;

fn bench_ordering_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();

    let points =
        experiments::ordering_sweep(&sut, &simulator, 155.0, 60.0).expect("ordering ablation runs");
    println!(
        "\n{}",
        report::render_ablation("A2 — candidate-core ordering (TL=155, STCL=60)", &points)
    );

    c.bench_function("ablation/ordering_sweep", |b| {
        b.iter(|| {
            experiments::ordering_sweep(&sut, &simulator, 155.0, 60.0)
                .expect("ordering ablation runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ordering_ablation
}
criterion_main!(benches);
