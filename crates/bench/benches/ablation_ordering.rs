//! A2 ablation: candidate-core ordering strategies for the session-filling
//! loop (the paper's pseudocode leaves the iteration order unspecified).

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{report, AblationPoint, Engine, SweepSpec};
use thermsched_bench::alpha_fixture;

fn bench_ordering_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let engine = Engine::builder()
        .sut(&sut)
        .backend(&simulator)
        .build()
        .expect("engine builds");
    let spec = SweepSpec::ordering_ablation(155.0, 60.0);

    let points: Vec<AblationPoint> = engine
        .sweep(&spec)
        .expect("ordering ablation runs")
        .into_points()
        .into_iter()
        .map(AblationPoint::from)
        .collect();
    println!(
        "\n{}",
        report::render_ablation("A2 — candidate-core ordering (TL=155, STCL=60)", &points)
    );

    c.bench_function("ablation/ordering_sweep", |b| {
        b.iter(|| engine.sweep(&spec).expect("ordering ablation runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ordering_ablation
}
criterion_main!(benches);
