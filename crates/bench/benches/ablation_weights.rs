//! A1 ablation: sensitivity of Algorithm 1 to the violation weight factor
//! (the paper fixes it at 1.1 without exploring alternatives).

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{experiments, report};
use thermsched_bench::alpha_fixture;

fn bench_weight_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let factors = [1.0, 1.05, 1.1, 1.25, 1.5, 2.0];

    let points = experiments::weight_factor_sweep(&sut, &simulator, 155.0, 80.0, &factors)
        .expect("weight ablation runs");
    println!(
        "\n{}",
        report::render_ablation("A1 — violation weight factor (TL=155, STCL=80)", &points)
    );

    c.bench_function("ablation/weight_factor_sweep", |b| {
        b.iter(|| {
            experiments::weight_factor_sweep(&sut, &simulator, 155.0, 80.0, &factors)
                .expect("weight ablation runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_weight_ablation
}
criterion_main!(benches);
