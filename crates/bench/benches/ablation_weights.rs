//! A1 ablation: sensitivity of Algorithm 1 to the violation weight factor
//! (the paper fixes it at 1.1 without exploring alternatives).

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched::{report, AblationPoint, Engine, SweepSpec};
use thermsched_bench::alpha_fixture;

fn bench_weight_ablation(c: &mut Criterion) {
    let (sut, simulator) = alpha_fixture();
    let engine = Engine::builder()
        .sut(&sut)
        .backend(&simulator)
        .build()
        .expect("engine builds");
    let factors = [1.0, 1.05, 1.1, 1.25, 1.5, 2.0];
    let spec = SweepSpec::weight_ablation(155.0, 80.0, &factors);

    let points: Vec<AblationPoint> = engine
        .sweep(&spec)
        .expect("weight ablation runs")
        .into_points()
        .into_iter()
        .map(AblationPoint::from)
        .collect();
    println!(
        "\n{}",
        report::render_ablation("A1 — violation weight factor (TL=155, STCL=80)", &points)
    );

    c.bench_function("ablation/weight_factor_sweep", |b| {
        b.iter(|| engine.sweep(&spec).expect("weight ablation runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_weight_ablation
}
criterion_main!(benches);
