//! Batch-service throughput: jobs per second and cache hit rate versus
//! worker count, sharded store versus the single-lock mutex store.
//!
//! The workload is one fixed seeded corpus (16 scenarios × 4 STCL points =
//! 64 jobs) rebuilt identically for every configuration — the service's
//! determinism contract guarantees every configuration schedules the exact
//! same work, so the only thing that varies is the execution machinery
//! being measured. The recorded numbers land in `BENCH_pr4.json` at the
//! workspace root, alongside (never overwriting) the frozen
//! `BENCH_pr2.json` / `BENCH_pr3.json` history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thermsched_bench::{baseline_recording_enabled, median};
use thermsched_service::{Corpus, ScenarioSpec, ServiceConfig, ServiceRunner, StoreKind};

/// Worker counts the recording sweep measures.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The fixed corpus every configuration runs: 16 systems of 20–30 cores,
/// four operating points each. Jobs are heavy enough that store overhead is
/// amortised the way a production batch would amortise it, and the four
/// points per scenario give the shared stores real cross-job reuse.
fn corpus() -> Corpus {
    ScenarioSpec {
        seed: 42,
        scenarios: 16,
        grid_shapes: vec![(5, 4), (5, 5), (6, 5)],
        stc_limits: vec![25.0, 40.0, 55.0, 70.0],
        ..ScenarioSpec::default()
    }
    .build()
    .expect("bench spec is valid")
}

fn runner(workers: usize, store: StoreKind) -> ServiceRunner {
    ServiceRunner::new(ServiceConfig {
        workers,
        store,
        ..ServiceConfig::default()
    })
    .expect("bench config is valid")
}

/// One measured sample of a configuration: (jobs per second, cache hit rate,
/// contended locks). Each sample is a full batch over a cold store.
fn sample(corpus: &Corpus, workers: usize, store: StoreKind) -> (f64, f64, u64) {
    let report = runner(workers, store).run(corpus).expect("batch runs");
    assert_eq!(
        report.stats().completed,
        report.stats().job_count,
        "the bench corpus must complete everywhere"
    );
    (
        report.stats().jobs_per_second,
        report.stats().store.hit_rate(),
        report.stats().store.contended_locks,
    )
}

/// The benchmark ids whose selection allows (re)recording `BENCH_pr4.json`.
const RECORDED_IDS: [&str; 2] = ["throughput/mutex", "throughput/sharded8"];

fn bench_throughput(c: &mut Criterion) {
    let record = baseline_recording_enabled(&RECORDED_IDS);
    let corpus = corpus();
    let stores: [(&str, StoreKind); 2] = [
        ("mutex", StoreKind::Mutex),
        ("sharded8", StoreKind::Sharded { shards: 8 }),
    ];

    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for (store_name, store) in stores {
        for workers in [1, 8] {
            group.bench_with_input(
                BenchmarkId::new(store_name, format!("{workers}w")),
                &(),
                |b, ()| b.iter(|| sample(&corpus, workers, store)),
            );
        }
    }
    group.finish();

    if record {
        // Mutex and sharded batches are interleaved sample by sample with
        // alternating order inside each pair, so slow frequency drift and
        // order effects hit both stores equally. The recorded
        // jobs-per-second is the best over samples: throughput noise is
        // one-sided (preemption, duplicate misses and frequency dips only
        // ever slow a batch down), so best-of-N is the lowest-variance
        // estimator of a configuration's capability — medians at this batch
        // size are dominated by scheduler jitter.
        let mut per_store: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
        let mut ratio_at_8 = f64::NAN;
        for workers in WORKER_COUNTS {
            const PAIRS: usize = 40;
            let mut measured: [Vec<(f64, f64, u64)>; 2] = [Vec::new(), Vec::new()];
            for pair in 0..PAIRS {
                let order: [usize; 2] = if pair % 2 == 0 { [0, 1] } else { [1, 0] };
                for side in order {
                    measured[side].push(sample(&corpus, workers, stores[side].1));
                }
            }
            let best = |side: usize| -> f64 {
                measured[side]
                    .iter()
                    .map(|s| s.0)
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            let ratio = best(1) / best(0);
            if workers == 8 {
                ratio_at_8 = ratio;
            }
            for (side, (store_name, _)) in stores.iter().enumerate() {
                let jobs_per_second = best(side);
                let hit_rate = median(measured[side].iter().map(|s| s.1).collect::<Vec<_>>());
                let contended = measured[side].iter().map(|s| s.2).max().unwrap_or(0);
                println!(
                    "throughput/{store_name}/{workers}w: {jobs_per_second:.0} jobs/s, \
                     {:.1}% cache hit rate, max {contended} contended locks",
                    hit_rate * 100.0
                );
                per_store[side].push(format!(
                    "        \"{workers}\": {{\n          \"jobs_per_second\": {jobs_per_second:.1},\n          \"cache_hit_rate\": {hit_rate:.4},\n          \"max_contended_locks\": {contended}\n        }}"
                ));
            }
            println!("throughput: sharded8 vs mutex at {workers} workers = {ratio:.3}x");
        }
        let store_entries: Vec<String> = stores
            .iter()
            .enumerate()
            .map(|(side, (store_name, _))| {
                format!(
                    "    \"{store_name}\": {{\n      \"workers\": {{\n{}\n      }}\n    }}",
                    per_store[side].join(",\n")
                )
            })
            .collect();
        write_baseline(&store_entries, ratio_at_8, &corpus);
    }
}

/// Records the measured numbers as `BENCH_pr4.json` at the workspace root.
/// Hand-rolled JSON: the workspace has no registry access, hence no serde.
fn write_baseline(store_entries: &[String], ratio_at_8: f64, corpus: &Corpus) {
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"bench\": \"throughput\",\n  \"description\": \"Batch-service throughput on one fixed seeded corpus: jobs/sec, shared-store cache hit rate and peak lock contention vs worker count, for the single-lock mutex store and the 8-way sharded store. jobs_per_second is the best over 40 interleaved cold batches per configuration (throughput noise is one-sided, so best-of-N estimates capability); cache_hit_rate is the median over the same samples and max_contended_locks the maximum. sharded_vs_mutex_jobs_per_second_at_8_workers is the headline ratio of those bests (>= 1 means sharding does not cost throughput even when the machine cannot run the workers in parallel).\",\n  \"corpus\": {{\n    \"seed\": 42,\n    \"scenarios\": {},\n    \"jobs\": {},\n    \"total_cores\": {}\n  }},\n  \"stores\": {{\n{}\n  }},\n  \"sharded_vs_mutex_jobs_per_second_at_8_workers\": {ratio_at_8:.3}\n}}\n",
        corpus.scenarios().len(),
        corpus.jobs().len(),
        corpus.total_cores(),
        store_entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
