//! Streaming front-end latency under admission pressure.
//!
//! One question, answered on one machine and recorded to `BENCH_pr7.json`
//! (alongside, never overwriting, the frozen `BENCH_pr2..6.json` history):
//! what do the robustness layers cost and do under load? A fixed burst of
//! mixed-priority submissions is streamed through a two-worker [`Frontend`]
//! with a seeded fault plan (30% retryable injected errors, three attempts
//! per job) at several ingress-queue capacities, and the drain report's
//! p50/p99 queueing latency plus the shed/reject/retry counters are
//! recorded per capacity. Small queues trade latency for displacement —
//! the burst outruns the workers, so low-priority work is shed — while
//! large queues admit everything and pay for it in sojourn time.
//!
//! Submission order is deterministic (so the fault plan's injections are
//! too); the latency percentiles and the queue-occupancy counters are the
//! machine-dependent part, which is exactly what the baseline captures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use thermsched_bench::baseline_recording_enabled;
use thermsched_service::{
    Corpus, DrainReport, FaultPlan, Frontend, FrontendConfig, Priority, RetryPolicy, ScenarioSpec,
    ServiceConfig, StoreKind, Submission,
};

/// Submissions per streamed burst.
const BURST: usize = 24;
/// Worker threads of the front-end.
const WORKERS: usize = 2;
/// Queue capacities of the recorded curve.
const CAPACITIES: [usize; 3] = [2, 8, 32];

fn corpus() -> Corpus {
    ScenarioSpec {
        seed: 2005,
        scenarios: 2,
        stc_limits: vec![40.0],
        ..ScenarioSpec::default()
    }
    .build()
    .expect("bench spec is valid")
}

fn config(queue_capacity: usize) -> FrontendConfig {
    FrontendConfig {
        service: ServiceConfig {
            workers: WORKERS,
            store: StoreKind::Sharded { shards: 8 },
            faults: FaultPlan {
                seed: 7,
                error_rate: 0.3,
                ..FaultPlan::none()
            },
            retry: RetryPolicy::retries(3),
            ..ServiceConfig::default()
        },
        queue_capacity,
        shed_on_full: true,
    }
}

/// Streams one burst through a fresh front-end and drains it: high/normal/
/// low priorities cycle through the burst, so under pressure the low class
/// is displaced first.
fn stream_once(queue_capacity: usize) -> DrainReport {
    let corpus = corpus();
    let frontend =
        Frontend::start(config(queue_capacity), corpus.clone()).expect("frontend starts");
    let jobs = corpus.jobs();
    let handles: Vec<_> = (0..BURST)
        .map(|i| {
            let submission = Submission::from_job(&jobs[i % jobs.len()]);
            let submission = match i % 3 {
                0 => submission.with_priority(Priority::High),
                1 => submission,
                _ => submission.with_priority(Priority::Low),
            };
            frontend.submit(submission)
        })
        .collect();
    for handle in &handles {
        handle.wait();
    }
    frontend.drain(Duration::from_secs(60))
}

/// The benchmark ids whose selection allows (re)recording `BENCH_pr7.json`.
const RECORDED_IDS: [&str; 1] = ["frontend_latency/stream-8"];

fn bench_frontend(c: &mut Criterion) {
    let record = baseline_recording_enabled(&RECORDED_IDS);

    let mut group = c.benchmark_group("frontend_latency");
    group.sample_size(10);
    group.bench_function("stream-8", |b| b.iter(|| stream_once(8)));
    group.bench_function("stream-32", |b| b.iter(|| stream_once(32)));
    group.finish();

    if record {
        let mut rows = Vec::new();
        for capacity in CAPACITIES {
            let report = stream_once(capacity);
            let s = &report.stats;
            println!(
                "frontend_latency capacity {capacity}: p50 {:.3} ms, p99 {:.3} ms, \
                 completed {}, shed {}, rejected {}, retried attempts {}",
                s.latency.p50_seconds * 1e3,
                s.latency.p99_seconds * 1e3,
                s.completed,
                s.shed,
                s.rejected,
                s.retried_attempts
            );
            rows.push((capacity, report));
        }
        write_baseline(&rows);
    }
}

/// Records the measured numbers as `BENCH_pr7.json` at the workspace root.
/// Hand-rolled JSON: the workspace has no registry access, hence no serde.
fn write_baseline(rows: &[(usize, DrainReport)]) {
    let mut points = String::new();
    for (i, (capacity, report)) in rows.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        let s = &report.stats;
        points.push_str(&format!(
            "    {{\n      \"queue_capacity\": {capacity},\n      \
             \"p50_ms\": {:.4},\n      \"p99_ms\": {:.4},\n      \
             \"max_ms\": {:.4},\n      \"completed\": {},\n      \
             \"shed\": {},\n      \"rejected\": {},\n      \
             \"retried_attempts\": {},\n      \"injected_faults\": {}\n    }}",
            s.latency.p50_seconds * 1e3,
            s.latency.p99_seconds * 1e3,
            s.latency.max_seconds * 1e3,
            s.completed,
            s.shed,
            s.rejected,
            s.retried_attempts,
            s.injected_faults,
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 7,\n  \"bench\": \"frontend_latency\",\n  \"description\": \"Streaming front-end latency and robustness counters under admission pressure: a fixed burst of {BURST} mixed-priority submissions streamed through a {WORKERS}-worker Frontend with a seeded fault plan (30% retryable injected errors, up to 3 attempts per job), at several ingress-queue capacities. Per capacity the drain report's p50/p99/max queueing latency and the shed/reject/retry/injection counters are recorded. Small queues displace low-priority work (shed_on_full) and keep latency low; large queues admit the whole burst and pay in sojourn time. Submission order and therefore fault injection are deterministic; the latencies and occupancy counters are the machine-dependent signal.\",\n  \"metadata\": {{\n    \"caveat\": \"single-CPU container timings; absolute milliseconds are machine-specific, the shape of the latency-vs-capacity curve is the signal\",\n    \"burst\": {BURST},\n    \"workers\": {WORKERS},\n    \"error_rate\": 0.3,\n    \"max_attempts\": 3\n  }},\n  \"queue_depths\": [\n{points}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend
}
criterion_main!(benches);
