//! Shared fixtures for the `thermsched` benchmark harness.
//!
//! Each Criterion bench target regenerates one table or figure of the DATE
//! 2005 paper (printing the reproduced rows/series to stdout before timing
//! the underlying computation) or one ablation from `DESIGN.md`. The actual
//! experiment logic lives in [`thermsched::experiments`]; this crate only
//! provides the common setup used by every target.

use thermsched_soc::{library, SystemUnderTest};
use thermsched_thermal::RcThermalSimulator;

/// The Alpha-21364-like system and a transient-fidelity simulator for it —
/// the fixture used by the Table 1 / Figure 5 benches.
///
/// # Panics
///
/// Panics if the library system cannot be built, which indicates a programming
/// error in the workspace rather than a user error.
pub fn alpha_fixture() -> (SystemUnderTest, RcThermalSimulator) {
    let sut = library::alpha21364_sut();
    let simulator = RcThermalSimulator::from_floorplan(sut.floorplan())
        .expect("library floorplan produces a valid thermal model");
    (sut, simulator)
}

/// The Figure 1 hypothetical 7-core system and its simulator.
///
/// # Panics
///
/// Panics if the library system cannot be built.
pub fn figure1_fixture() -> (SystemUnderTest, RcThermalSimulator) {
    let sut = library::figure1_sut();
    let simulator = RcThermalSimulator::from_floorplan(sut.floorplan())
        .expect("library floorplan produces a valid thermal model");
    (sut, simulator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (sut, sim) = alpha_fixture();
        assert_eq!(sut.core_count(), 15);
        assert_eq!(thermsched_thermal::ThermalSimulator::block_count(&sim), 15);
        let (sut, _) = figure1_fixture();
        assert_eq!(sut.core_count(), 7);
    }
}
