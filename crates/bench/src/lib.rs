//! Shared fixtures for the `thermsched` benchmark harness.
//!
//! Each Criterion bench target regenerates one table or figure of the DATE
//! 2005 paper (printing the reproduced rows/series to stdout before timing
//! the underlying computation) or one ablation from `DESIGN.md`. The actual
//! experiment logic lives in [`thermsched::experiments`]; this crate only
//! provides the common setup used by every target.

use thermsched_soc::{library, SystemUnderTest};
use thermsched_thermal::RcThermalSimulator;

/// The Alpha-21364-like system and a transient-fidelity simulator for it —
/// the fixture used by the Table 1 / Figure 5 benches.
///
/// # Panics
///
/// Panics if the library system cannot be built, which indicates a programming
/// error in the workspace rather than a user error.
pub fn alpha_fixture() -> (SystemUnderTest, RcThermalSimulator) {
    let sut = library::alpha21364_sut();
    let simulator = RcThermalSimulator::from_floorplan(sut.floorplan())
        .expect("library floorplan produces a valid thermal model");
    (sut, simulator)
}

/// The Figure 1 hypothetical 7-core system and its simulator.
///
/// # Panics
///
/// Panics if the library system cannot be built.
pub fn figure1_fixture() -> (SystemUnderTest, RcThermalSimulator) {
    let sut = library::figure1_sut();
    let simulator = RcThermalSimulator::from_floorplan(sut.floorplan())
        .expect("library floorplan produces a valid thermal model");
    (sut, simulator)
}

/// Median of a set of wall-clock samples.
///
/// # Panics
///
/// Panics on an empty or NaN-containing sample set.
pub fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    values[values.len() / 2]
}

/// Whether a baseline-recording bench invocation should (re)measure and
/// overwrite its committed `BENCH_pr<N>.json` file. Mirrors the vendored
/// criterion stub's filter semantics: the baseline is recorded only when at
/// least one of `recorded_ids` is actually selected by the CLI filter, and
/// never in `cargo test --benches` (`--test`) mode — a filtered run like
/// `cargo bench -- some_other_group` must not clobber committed numbers
/// with timings nobody asked for.
pub fn baseline_recording_enabled(recorded_ids: &[&str]) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--test") {
        return false;
    }
    match args.iter().find(|a| !a.starts_with('-')) {
        None => true,
        Some(filter) => recorded_ids.iter().any(|id| id.contains(filter.as_str())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (sut, sim) = alpha_fixture();
        assert_eq!(sut.core_count(), 15);
        assert_eq!(thermsched_thermal::ThermalSimulator::block_count(&sim), 15);
        let (sut, _) = figure1_fixture();
        assert_eq!(sut.core_count(), 7);
    }
}
