//! High-level session-oriented simulation API used by the test scheduler.

use thermsched_floorplan::{BlockId, Floorplan};

use crate::{
    PackageConfig, PowerMap, PowerTrace, Result, SteadyStateSolver, Temperatures, ThermalError,
    ThermalNetwork, TransientConfig, TransientSolver,
};

/// Per-session thermal simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionThermalResult {
    /// Maximum temperature reached by each block during the session (°C).
    pub max_block_temperatures: Vec<f64>,
    /// Node temperatures at the end of the session (°C).
    pub final_temperatures: Temperatures,
    /// Simulated session duration in seconds.
    pub duration: f64,
}

impl SessionThermalResult {
    /// Hottest temperature reached by any block during the session.
    pub fn max_temperature(&self) -> f64 {
        self.max_block_temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum temperature reached by one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_max_temperature(&self, id: BlockId) -> f64 {
        self.max_block_temperatures[id]
    }

    /// Blocks whose maximum temperature reached or exceeded `limit` (°C).
    pub fn violating_blocks(&self, limit: f64) -> Vec<BlockId> {
        self.max_block_temperatures
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= limit)
            .map(|(i, _)| i)
            .collect()
    }
}

/// How session maximum temperatures are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimulationFidelity {
    /// Integrate the transient response over the session and record the
    /// per-block maximum (the paper's validation flow with HotSpot).
    #[default]
    Transient,
    /// Use the steady-state solution as the per-block maximum. This is the
    /// paper's "modification 1" upper bound and is substantially cheaper.
    SteadyState,
}

/// A thermal simulator that can evaluate test sessions.
///
/// The scheduler in the `thermsched` core crate is generic over this trait so
/// that alternative simulators (e.g. a grid-level model or a wrapper around an
/// external tool) can be swapped in; the paper itself notes that "other IC
/// thermal simulation tools could be used just as well".
pub trait ThermalSimulator {
    /// Number of floorplan blocks known to the simulator.
    fn block_count(&self) -> usize;

    /// Ambient temperature in °C.
    fn ambient(&self) -> f64;

    /// Simulates a test session with the given per-block power for `duration`
    /// seconds, starting from an ambient-temperature die.
    ///
    /// # Errors
    ///
    /// Implementations return an error for malformed power maps or durations.
    fn simulate_session(&self, power: &PowerMap, duration: f64) -> Result<SessionThermalResult>;

    /// Simulates a piecewise-constant [`PowerTrace`], optionally
    /// warm-starting from a caller-supplied temperature state instead of
    /// ambient.
    ///
    /// `initial` may carry either portable per-block temperatures (length
    /// [`ThermalSimulator::block_count`]; any internal nodes start at
    /// ambient) or the simulator's own full final state as returned in
    /// [`SessionThermalResult::final_temperatures`]. A single-phase trace
    /// from ambient must be bit-identical to
    /// [`ThermalSimulator::simulate_session`].
    ///
    /// The default implementation serves exactly that constant-from-ambient
    /// case and rejects everything else with [`ThermalError::InvalidTrace`];
    /// the library backends override it with full trace integration.
    ///
    /// # Errors
    ///
    /// Implementations return an error for malformed traces or initial
    /// states the backend cannot interpret.
    fn simulate_trace(
        &self,
        trace: &PowerTrace,
        initial: Option<&Temperatures>,
    ) -> Result<SessionThermalResult> {
        let canon = trace.canonical();
        if initial.is_none() && canon.phase_count() == 1 {
            let (power, duration) = &canon.phases()[0];
            return self.simulate_session(power, *duration);
        }
        Err(ThermalError::InvalidTrace {
            message: "this simulator does not support multi-phase traces or warm starts",
        })
    }

    /// Steady-state temperatures under the given power map.
    ///
    /// # Errors
    ///
    /// Implementations return an error for malformed power maps.
    fn steady_state(&self, power: &PowerMap) -> Result<Temperatures>;
}

/// The RC-equivalent compact simulator: the crate's reference implementation
/// of [`ThermalSimulator`], playing the role HotSpot plays in the paper.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{PowerMap, RcThermalSimulator, ThermalSimulator};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::figure1_system();
/// let sim = RcThermalSimulator::from_floorplan(&fp)?;
/// let mut p = PowerMap::zeros(fp.block_count());
/// p.set(fp.index_of("C2").unwrap(), 15.0)?;
/// let session = sim.simulate_session(&p, 1.0)?;
/// assert!(session.max_temperature() > sim.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RcThermalSimulator {
    network: ThermalNetwork,
    steady: SteadyStateSolver,
    transient: TransientSolver,
    fidelity: SimulationFidelity,
}

impl RcThermalSimulator {
    /// Builds a simulator for a floorplan with the default package and
    /// transient settings. The default transient method is
    /// [`crate::TransientMethod::Auto`]: whole constant-power sessions are
    /// advanced through the precomputed-operator fast path (`O(n³ · log k)`
    /// instead of `k` sequential steps, exact for from-ambient sessions),
    /// with automatic fallback to implicit-Euler stepping for simulations
    /// from an arbitrary initial state.
    ///
    /// # Errors
    ///
    /// Propagates model construction and factorisation errors.
    pub fn from_floorplan(floorplan: &Floorplan) -> Result<Self> {
        Self::new(
            floorplan,
            &PackageConfig::default(),
            TransientConfig::default(),
        )
    }

    /// Builds a simulator like [`RcThermalSimulator::from_floorplan`] but
    /// with the sequential implicit-Euler reference path
    /// ([`crate::TransientMethod::ImplicitEuler`]) for every request. The
    /// equivalence suites compare the fast default against this
    /// configuration; results agree to well within 1e-6 °C.
    ///
    /// # Errors
    ///
    /// Propagates model construction and factorisation errors.
    pub fn reference_from_floorplan(floorplan: &Floorplan) -> Result<Self> {
        Self::new(
            floorplan,
            &PackageConfig::default(),
            TransientConfig::reference(),
        )
    }

    /// Builds a simulator with explicit package and transient configuration.
    ///
    /// # Errors
    ///
    /// Propagates model construction and factorisation errors.
    pub fn new(
        floorplan: &Floorplan,
        package: &PackageConfig,
        transient: TransientConfig,
    ) -> Result<Self> {
        let network = ThermalNetwork::build(floorplan, package)?;
        let steady = SteadyStateSolver::new(&network)?;
        let transient = TransientSolver::new(&network, transient)?;
        Ok(RcThermalSimulator {
            network,
            steady,
            transient,
            fidelity: SimulationFidelity::default(),
        })
    }

    /// Selects how session maxima are computed.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: SimulationFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Borrows the underlying thermal network (for the session thermal model,
    /// which reuses its lateral/edge resistances).
    pub fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    /// The configured fidelity.
    pub fn fidelity(&self) -> SimulationFidelity {
        self.fidelity
    }

    /// The transient method session simulations are served by.
    pub fn transient_method(&self) -> crate::TransientMethod {
        self.transient.method()
    }

    /// Expands a warm-start state to a full node vector: either the solver's
    /// own node state, or portable per-block temperatures with every
    /// internal node at ambient.
    fn initial_nodes(&self, initial: &Temperatures) -> Result<Vec<f64>> {
        let values = initial.node_temperatures();
        let node_count = self.network.node_count();
        if values.len() == node_count {
            return Ok(values.to_vec());
        }
        if values.len() == self.network.block_count() {
            let mut nodes = vec![self.network.ambient(); node_count];
            nodes[..values.len()].copy_from_slice(values);
            return Ok(nodes);
        }
        Err(ThermalError::PowerLengthMismatch {
            expected: node_count,
            found: values.len(),
        })
    }
}

impl crate::ThermalBackend for RcThermalSimulator {
    fn fidelity(&self) -> SimulationFidelity {
        self.fidelity
    }

    fn supports_fast_path(&self) -> bool {
        self.transient.method().uses_fast_path()
    }

    fn backend_name(&self) -> &'static str {
        "rc-compact"
    }
}

impl ThermalSimulator for RcThermalSimulator {
    fn block_count(&self) -> usize {
        self.network.block_count()
    }

    fn ambient(&self) -> f64 {
        self.network.ambient()
    }

    fn simulate_session(&self, power: &PowerMap, duration: f64) -> Result<SessionThermalResult> {
        match self.fidelity {
            SimulationFidelity::Transient => {
                let r = self.transient.simulate_from_ambient(power, duration)?;
                Ok(SessionThermalResult {
                    max_block_temperatures: r.max_block_temperatures,
                    final_temperatures: r.final_temperatures,
                    duration,
                })
            }
            SimulationFidelity::SteadyState => {
                if !(duration > 0.0 && duration.is_finite()) {
                    return Err(crate::ThermalError::InvalidDuration { value: duration });
                }
                let t = self.steady.solve(power)?;
                Ok(SessionThermalResult {
                    max_block_temperatures: t.block_temperatures().to_vec(),
                    final_temperatures: t,
                    duration,
                })
            }
        }
    }

    fn simulate_trace(
        &self,
        trace: &PowerTrace,
        initial: Option<&Temperatures>,
    ) -> Result<SessionThermalResult> {
        match self.fidelity {
            SimulationFidelity::Transient => {
                let initial_nodes = initial.map(|t| self.initial_nodes(t)).transpose()?;
                let r = self
                    .transient
                    .simulate_trace(trace, initial_nodes.as_deref())?;
                Ok(SessionThermalResult {
                    max_block_temperatures: r.max_block_temperatures,
                    final_temperatures: r.final_temperatures,
                    duration: r.duration,
                })
            }
            SimulationFidelity::SteadyState => {
                // The steady-state upper bound is stateless: each phase is
                // bounded by its own steady solution, the trace maximum is
                // the element-wise maximum over phases, and the warm start
                // has no influence (it decays under any constant bound).
                let canon = trace.canonical();
                let mut max_block = vec![f64::NEG_INFINITY; self.block_count()];
                let mut last = None;
                for (power, _) in canon.phases() {
                    let t = self.steady.solve(power)?;
                    for (m, &v) in max_block.iter_mut().zip(t.block_temperatures()) {
                        if v > *m {
                            *m = v;
                        }
                    }
                    last = Some(t);
                }
                Ok(SessionThermalResult {
                    max_block_temperatures: max_block,
                    final_temperatures: last.expect("traces are validated non-empty"),
                    duration: canon.total_duration(),
                })
            }
        }
    }

    fn steady_state(&self, power: &PowerMap) -> Result<Temperatures> {
        self.steady.solve(power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_floorplan::library;

    fn sim() -> (RcThermalSimulator, Floorplan) {
        let fp = library::alpha21364();
        let sim = RcThermalSimulator::from_floorplan(&fp).unwrap();
        (sim, fp)
    }

    #[test]
    fn block_count_and_ambient_are_exposed() {
        let (sim, fp) = sim();
        assert_eq!(sim.block_count(), fp.block_count());
        assert_eq!(sim.ambient(), 45.0);
        assert_eq!(sim.fidelity(), SimulationFidelity::Transient);
    }

    #[test]
    fn transient_session_max_is_bounded_by_steady_state() {
        let (sim, fp) = sim();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 18.0).unwrap();
        p.set(fp.index_of("Dcache").unwrap(), 12.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        let steady = sim.steady_state(&p).unwrap();
        for i in 0..fp.block_count() {
            assert!(session.max_block_temperatures[i] <= steady.block(i) + 1e-6);
        }
        assert!(session.max_temperature() <= steady.max_block_temperature() + 1e-6);
    }

    #[test]
    fn steady_state_fidelity_reports_steady_maxima() {
        let (sim, fp) = sim();
        let sim = sim.with_fidelity(SimulationFidelity::SteadyState);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("Bpred").unwrap(), 9.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        let steady = sim.steady_state(&p).unwrap();
        for i in 0..fp.block_count() {
            assert!((session.max_block_temperatures[i] - steady.block(i)).abs() < 1e-12);
        }
        assert!(sim.simulate_session(&p, -1.0).is_err());
    }

    #[test]
    fn violating_blocks_filters_by_limit() {
        let (sim, fp) = sim();
        let bpred = fp.index_of("Bpred").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(bpred, 20.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        let hot = session.block_max_temperature(bpred);
        assert!(session.violating_blocks(hot + 1.0).is_empty());
        let violators = session.violating_blocks(hot - 0.5);
        assert!(violators.contains(&bpred));
    }

    #[test]
    fn figure1_small_cores_run_hotter_than_large_cores_at_equal_power() {
        // The crux of the paper's motivational example: equal total power,
        // very different peak temperature.
        let fp = library::figure1_system();
        let sim = RcThermalSimulator::from_floorplan(&fp).unwrap();
        let mut small = PowerMap::zeros(fp.block_count());
        for name in ["C2", "C3", "C4"] {
            small.set(fp.index_of(name).unwrap(), 15.0).unwrap();
        }
        let mut large = PowerMap::zeros(fp.block_count());
        for name in ["C5", "C6", "C7"] {
            large.set(fp.index_of(name).unwrap(), 15.0).unwrap();
        }
        assert!((small.total() - large.total()).abs() < 1e-12);
        let t_small = sim.simulate_session(&small, 1.0).unwrap().max_temperature();
        let t_large = sim.simulate_session(&large, 1.0).unwrap().max_temperature();
        assert!(
            t_small > t_large + 10.0,
            "small-core session should be much hotter: {t_small:.1} vs {t_large:.1}"
        );
    }

    #[test]
    fn network_accessor_reflects_floorplan() {
        let (sim, fp) = sim();
        assert_eq!(sim.network().block_count(), fp.block_count());
    }

    #[test]
    fn trace_session_equivalence_through_the_trait() {
        let (sim, fp) = sim();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 11.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        let traced = sim
            .simulate_trace(&crate::PowerTrace::constant(p, 1.0).unwrap(), None)
            .unwrap();
        assert_eq!(session, traced);
    }

    #[test]
    fn block_level_warm_start_heats_internal_nodes_from_ambient() {
        let (sim, fp) = sim();
        let hot = fp.index_of("Bpred").unwrap();
        let mut blocks = vec![sim.ambient(); fp.block_count()];
        blocks[hot] = 95.0;
        let initial = Temperatures::new(blocks, fp.block_count());
        let idle = crate::PowerTrace::constant(PowerMap::zeros(fp.block_count()), 0.5).unwrap();
        let warm = sim.simulate_trace(&idle, Some(&initial)).unwrap();
        // The hot block's maximum is its (decaying) start temperature.
        assert!((warm.max_block_temperatures[hot] - 95.0).abs() < 1e-9);
        // A wrong-length initial state is rejected.
        let bad = Temperatures::new(vec![45.0; 3], 3);
        assert!(sim.simulate_trace(&idle, Some(&bad)).is_err());
    }

    #[test]
    fn steady_fidelity_traces_bound_each_phase() {
        let (sim, fp) = sim();
        let sim = sim.with_fidelity(SimulationFidelity::SteadyState);
        let mut high = PowerMap::zeros(fp.block_count());
        high.set(fp.index_of("IntExec").unwrap(), 15.0).unwrap();
        let low = high.scaled(0.2).unwrap();
        let trace = crate::PowerTrace::new(vec![(high.clone(), 0.5), (low.clone(), 0.5)]).unwrap();
        let traced = sim.simulate_trace(&trace, None).unwrap();
        let high_ss = sim.steady_state(&high).unwrap();
        let low_ss = sim.steady_state(&low).unwrap();
        for i in 0..fp.block_count() {
            assert!(
                (traced.max_block_temperatures[i] - high_ss.block(i).max(low_ss.block(i))).abs()
                    < 1e-12
            );
            assert!((traced.final_temperatures.block(i) - low_ss.block(i)).abs() < 1e-12);
        }
    }
}
