//! Assembly of the RC-equivalent thermal network from a floorplan and a
//! package description.
//!
//! The model follows the block-level HotSpot idea (thermal–electrical
//! duality): every floorplan block is a node, laterally coupled to its
//! abutting neighbours and to the die edge, and vertically coupled through
//! the interface material to a heat-spreader node, which connects through the
//! heat-sink node and a convection resistance to the ambient (thermal
//! ground).

use thermsched_floorplan::{AdjacencyGraph, BlockId, Floorplan, Side};
use thermsched_linalg::DenseMatrix;

use crate::{PackageConfig, Result, ThermalError};

/// What a node of the thermal network represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A die-level floorplan block (index is the floorplan [`BlockId`]).
    Block(usize),
    /// The lumped heat-spreader node.
    Spreader,
    /// The lumped heat-sink node.
    Sink,
}

/// The assembled RC-equivalent thermal network.
///
/// Temperatures are expressed as rises over the ambient; the conductance
/// matrix `G` (in W/K) satisfies `G · ΔT = P` in steady state and
/// `C · dΔT/dt = P − G · ΔT` in the transient case, with `C` the per-node
/// thermal capacitance in J/K.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{PackageConfig, ThermalNetwork};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let net = ThermalNetwork::build(&fp, &PackageConfig::default())?;
/// assert_eq!(net.block_count(), 15);
/// assert_eq!(net.node_count(), 17); // blocks + spreader + sink
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    conductance: DenseMatrix,
    capacitance: Vec<f64>,
    kinds: Vec<NodeKind>,
    block_count: usize,
    ambient: f64,
    /// Lateral block-to-block thermal resistances, kept for the session
    /// thermal model (K/W). `lateral_resistance[i][j]` is `f64::INFINITY`
    /// when blocks `i` and `j` do not abut.
    lateral_resistance: Vec<Vec<f64>>,
    /// Per-block, per-side resistance of the lateral path to the die edge
    /// (K/W); `f64::INFINITY` when the block does not touch that edge.
    edge_resistance: Vec<[f64; 4]>,
    /// Per-block vertical resistance to the spreader node (K/W).
    vertical_resistance: Vec<f64>,
}

impl ThermalNetwork {
    /// Builds the network for `floorplan` with the given package.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if the package fails
    /// validation.
    pub fn build(floorplan: &Floorplan, package: &PackageConfig) -> Result<Self> {
        package.validate()?;
        let n = floorplan.block_count();
        let adjacency = floorplan.adjacency();
        let node_count = n + 2;
        let spreader = n;
        let sink = n + 1;

        let mut g = DenseMatrix::zeros(node_count, node_count);
        let mut c = vec![0.0; node_count];
        let mut kinds = Vec::with_capacity(node_count);
        for i in 0..n {
            kinds.push(NodeKind::Block(i));
        }
        kinds.push(NodeKind::Spreader);
        kinds.push(NodeKind::Sink);

        let k_die = package.die_material.conductivity;
        let t_die = package.die_thickness;

        // Lateral block-to-block conductances.
        let mut lateral_resistance = vec![vec![f64::INFINITY; n]; n];
        for edge in adjacency.edges() {
            let conductance = k_die * t_die * edge.length / edge.center_distance;
            if conductance > 0.0 {
                stamp_pair(&mut g, edge.a, edge.b, conductance);
                let r = 1.0 / conductance;
                lateral_resistance[edge.a][edge.b] = r;
                lateral_resistance[edge.b][edge.a] = r;
            }
        }

        // Lateral block-to-edge (ambient) conductances and vertical paths.
        let mut edge_resistance = vec![[f64::INFINITY; 4]; n];
        let mut vertical_resistance = vec![0.0; n];
        for (id, block) in floorplan.iter() {
            let exposure = adjacency.boundary_exposure(id);
            for (s, side) in Side::ALL.iter().enumerate() {
                let len = exposure.on_side(*side);
                if len <= 0.0 {
                    continue;
                }
                // Distance from the block centre to the exposed edge.
                let half = match side {
                    Side::North | Side::South => block.height() / 2.0,
                    Side::East | Side::West => block.width() / 2.0,
                };
                let r_silicon = half / (k_die * t_die * len);
                let r_package = package.edge_resistance_per_meter / len;
                let r_total = r_silicon + r_package;
                edge_resistance[id][s] = r_total;
                // Path to ambient: stamp on the diagonal only.
                g.add_to(id, id, 1.0 / r_total);
            }

            // Vertical path: die conduction + interface material, per block area.
            let area = block.area();
            let r_die_v = t_die / (k_die * area);
            let r_tim =
                package.interface_thickness / (package.interface_material.conductivity * area);
            let r_vert = r_die_v + r_tim;
            vertical_resistance[id] = r_vert;
            stamp_pair(&mut g, id, spreader, 1.0 / r_vert);

            // Block thermal capacitance.
            c[id] = package.die_material.volumetric_heat_capacity * area * t_die;
        }

        // Spreader to sink conduction.
        let a_spreader = package.spreader_side * package.spreader_side;
        let a_sink = package.sink_side * package.sink_side;
        let r_spreader =
            package.spreader_thickness / (package.spreader_material.conductivity * a_spreader);
        let r_sink_cond = package.sink_thickness / (package.sink_material.conductivity * a_sink);
        stamp_pair(&mut g, spreader, sink, 1.0 / (r_spreader + r_sink_cond));

        // Sink to ambient convection.
        g.add_to(sink, sink, 1.0 / package.convection_resistance);

        // Spreader and sink capacitances.
        c[spreader] = package.spreader_material.volumetric_heat_capacity
            * a_spreader
            * package.spreader_thickness;
        c[sink] = package.sink_material.volumetric_heat_capacity * a_sink * package.sink_thickness;

        Ok(ThermalNetwork {
            conductance: g,
            capacitance: c,
            kinds,
            block_count: n,
            ambient: package.ambient,
            lateral_resistance,
            edge_resistance,
            vertical_resistance,
        })
    }

    /// Number of die blocks in the model.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Total number of nodes (blocks + spreader + sink).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Ambient temperature in °C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Kind of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_kind(&self, i: usize) -> NodeKind {
        self.kinds[i]
    }

    /// Borrows the conductance matrix `G` (W/K).
    pub fn conductance(&self) -> &DenseMatrix {
        &self.conductance
    }

    /// Borrows the per-node capacitance vector (J/K).
    pub fn capacitance(&self) -> &[f64] {
        &self.capacitance
    }

    /// Lateral thermal resistance between two blocks in K/W
    /// (`f64::INFINITY` if the blocks do not abut).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn lateral_resistance(&self, a: BlockId, b: BlockId) -> f64 {
        self.lateral_resistance[a][b]
    }

    /// Resistance of the lateral path from block `id` to the die edge on the
    /// given side, in K/W (`f64::INFINITY` if the block does not reach that
    /// edge).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge_resistance(&self, id: BlockId, side: Side) -> f64 {
        let s = Side::ALL.iter().position(|x| *x == side).expect("side");
        self.edge_resistance[id][s]
    }

    /// Vertical resistance from block `id` to the spreader node, in K/W.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertical_resistance(&self, id: BlockId) -> f64 {
        self.vertical_resistance[id]
    }

    /// Expands a per-block power map into a full-length node power vector
    /// (spreader and sink dissipate nothing).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if the power map does not
    /// cover exactly [`ThermalNetwork::block_count`] blocks.
    pub fn node_power_vector(&self, block_powers: &[f64]) -> Result<Vec<f64>> {
        if block_powers.len() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: block_powers.len(),
            });
        }
        let mut p = vec![0.0; self.node_count()];
        p[..self.block_count].copy_from_slice(block_powers);
        Ok(p)
    }

    /// The adjacency graph the network was built from can be recomputed from
    /// the floorplan; this helper instead re-derives which blocks are coupled
    /// laterally in the *network*, which tests use to check the stamping.
    pub fn laterally_coupled(&self, a: BlockId, b: BlockId) -> bool {
        self.lateral_resistance(a, b).is_finite()
    }
}

/// Stamps a conductance between nodes `a` and `b` into the matrix.
fn stamp_pair(g: &mut DenseMatrix, a: usize, b: usize, conductance: f64) {
    g.add_to(a, a, conductance);
    g.add_to(b, b, conductance);
    g.add_to(a, b, -conductance);
    g.add_to(b, a, -conductance);
}

/// Helper re-exported for use by the adjacency-based session model: computes
/// the lateral silicon resistance between two abutting blocks given the
/// shared-edge geometry (K/W).
pub fn lateral_resistance_from_geometry(
    adjacency: &AdjacencyGraph,
    package: &PackageConfig,
    a: BlockId,
    b: BlockId,
) -> f64 {
    match adjacency.edge_between(a, b) {
        Some(edge) => {
            let conductance =
                package.die_material.conductivity * package.die_thickness * edge.length
                    / edge.center_distance;
            if conductance > 0.0 {
                1.0 / conductance
            } else {
                f64::INFINITY
            }
        }
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_floorplan::library;

    fn net() -> ThermalNetwork {
        ThermalNetwork::build(&library::alpha21364(), &PackageConfig::default()).unwrap()
    }

    #[test]
    fn node_layout() {
        let n = net();
        assert_eq!(n.block_count(), 15);
        assert_eq!(n.node_count(), 17);
        assert_eq!(n.node_kind(0), NodeKind::Block(0));
        assert_eq!(n.node_kind(15), NodeKind::Spreader);
        assert_eq!(n.node_kind(16), NodeKind::Sink);
        assert_eq!(n.ambient(), 45.0);
    }

    #[test]
    fn conductance_matrix_is_symmetric_and_diagonally_dominant() {
        let n = net();
        let g = n.conductance();
        assert!(g.is_symmetric(1e-9));
        assert!(g.is_diagonally_dominant());
        // Strict dominance at the sink row (convection to ground).
        let sink = 16;
        let row_off: f64 = (0..17)
            .filter(|&j| j != sink)
            .map(|j| g.get(sink, j).abs())
            .sum();
        assert!(g.get(sink, sink) > row_off);
    }

    #[test]
    fn lateral_resistances_match_adjacency() {
        let fp = library::alpha21364();
        let n = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        let adj = fp.adjacency();
        let icache = fp.index_of("Icache").unwrap();
        let dcache = fp.index_of("Dcache").unwrap();
        let fpadd = fp.index_of("FPAdd").unwrap();
        assert!(adj.shared_edge_length(icache, dcache) > 0.0);
        assert!(n.laterally_coupled(icache, dcache));
        assert!(n.lateral_resistance(icache, dcache).is_finite());
        // Icache (bottom-middle) and FPAdd (top row) are not adjacent.
        assert!(!n.laterally_coupled(icache, fpadd));
        assert!(n.lateral_resistance(icache, fpadd).is_infinite());
    }

    #[test]
    fn edge_resistance_only_for_boundary_blocks() {
        let fp = library::alpha21364();
        let n = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        let l2_bottom = fp.index_of("L2_bottom").unwrap();
        let int_exec = fp.index_of("IntExec").unwrap();
        assert!(n.edge_resistance(l2_bottom, Side::South).is_finite());
        // IntExec is interior: no edge exposure on any side.
        for side in Side::ALL {
            assert!(n.edge_resistance(int_exec, side).is_infinite());
        }
    }

    #[test]
    fn vertical_resistance_scales_inversely_with_area() {
        let fp = library::alpha21364();
        let n = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        let big = fp.index_of("L2_bottom").unwrap();
        let small = fp.index_of("Bpred").unwrap();
        let area_ratio = fp.blocks()[big].area() / fp.blocks()[small].area();
        let r_ratio = n.vertical_resistance(small) / n.vertical_resistance(big);
        assert!((area_ratio - r_ratio).abs() / area_ratio < 1e-9);
    }

    #[test]
    fn capacitances_are_positive_and_sink_dominates() {
        let n = net();
        for &c in n.capacitance() {
            assert!(c > 0.0);
        }
        let sink_c = n.capacitance()[16];
        let max_block_c = n.capacitance()[..15].iter().cloned().fold(0.0, f64::max);
        assert!(sink_c > max_block_c);
    }

    #[test]
    fn node_power_vector_expands_blocks() {
        let n = net();
        let p = n.node_power_vector(&[1.0; 15]).unwrap();
        assert_eq!(p.len(), 17);
        assert_eq!(p[14], 1.0);
        assert_eq!(p[15], 0.0);
        assert_eq!(p[16], 0.0);
        assert!(n.node_power_vector(&[1.0; 3]).is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field at a time is the point
    fn invalid_package_is_rejected() {
        let mut pkg = PackageConfig::default();
        pkg.die_thickness = -1.0;
        assert!(ThermalNetwork::build(&library::alpha21364(), &pkg).is_err());
    }

    #[test]
    fn geometry_helper_matches_network_resistance() {
        let fp = library::alpha21364();
        let pkg = PackageConfig::default();
        let n = ThermalNetwork::build(&fp, &pkg).unwrap();
        let adj = fp.adjacency();
        let a = fp.index_of("Icache").unwrap();
        let b = fp.index_of("Dcache").unwrap();
        let from_geom = lateral_resistance_from_geometry(&adj, &pkg, a, b);
        assert!((from_geom - n.lateral_resistance(a, b)).abs() < 1e-9);
        let c = fp.index_of("FPAdd").unwrap();
        assert!(lateral_resistance_from_geometry(&adj, &pkg, a, c).is_infinite());
    }
}
