//! Block-level RC-equivalent compact thermal simulation for the `thermsched`
//! workspace.
//!
//! This crate plays the role that the HotSpot simulator plays in the DATE
//! 2005 paper "Rapid Generation of Thermal-Safe Test Schedules": given a
//! floorplan and a per-block power map, it predicts block temperatures, which
//! the test scheduler uses to *validate* candidate test sessions. The model
//! follows the thermal–electrical duality of the architecture-level RC model
//! (Skadron et al., ISCAS 2003):
//!
//! * every floorplan block is a node with a thermal capacitance,
//! * abutting blocks are coupled by lateral thermal resistances,
//! * blocks on the die boundary have a lateral path to the ambient,
//! * every block has a vertical path (die + interface material) to a lumped
//!   heat-spreader node, which connects through the heat sink and a
//!   convection resistance to the ambient.
//!
//! Both steady-state ([`SteadyStateSolver`]) and transient
//! ([`TransientSolver`]) solutions are available; [`RcThermalSimulator`]
//! wraps them behind the [`ThermalSimulator`] trait consumed by the
//! scheduler.
//!
//! # The transient solver paths
//!
//! The transient solver offers two [`TransientMethod`]s, selected through
//! [`TransientConfig`]:
//!
//! * [`TransientMethod::Auto`] (the default) picks the fastest path that is
//!   exact for each request. From-ambient constant-power sessions — the
//!   scheduler's exact usage pattern — go through the precomputed-operator
//!   fast path: the dense step operator `A = (C/Δt + G)⁻¹ · (C/Δt)` is
//!   built once and a whole `k`-step session advances through
//!   `(Aᵏ, S_k = I + A + … + Aᵏ⁻¹)` assembled by repeated squaring, with
//!   the powered operator cached per step count, so a session costs
//!   `O(n³ · log k)` (amortised: one solve plus one matrix–vector product)
//!   instead of `O(n² · k)` with zero per-step allocation. From ambient the
//!   path is *exact* for the per-block maxima too: the implicit-Euler
//!   iterates rise monotonically (non-negative `A` and power), so the
//!   interval maximum equals the final temperature. Anything else falls
//!   back to implicit-Euler stepping.
//! * [`TransientMethod::ImplicitEuler`] (the reference implementation,
//!   opt-in via [`TransientConfig::reference`]) steps the recurrence
//!   `(C/Δt + G) · ΔT_{k+1} = C/Δt · ΔT_k + P` one time step at a time. It
//!   is exact for *any* initial state and is the only path used by
//!   [`TransientSolver::simulate`] when resuming from arbitrary
//!   temperatures. Both paths agree to well within 1e-6 °C; a property
//!   suite in the workspace root enforces this.
//!
//! # Example
//!
//! ```
//! use thermsched_floorplan::library;
//! use thermsched_thermal::{PowerMap, RcThermalSimulator, ThermalSimulator};
//!
//! # fn main() -> Result<(), thermsched_thermal::ThermalError> {
//! let floorplan = library::alpha21364();
//! let simulator = RcThermalSimulator::from_floorplan(&floorplan)?;
//! let mut power = PowerMap::zeros(floorplan.block_count());
//! power.set(floorplan.index_of("IntExec").unwrap(), 25.0)?;
//! let session = simulator.simulate_session(&power, 1.0)?;
//! println!("peak temperature: {:.1} C", session.max_temperature());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
pub mod grid;
mod materials;
mod network;
mod package;
mod power;
mod simulator;
mod steady_state;
mod temperatures;
mod trace;
mod transient;
mod wire;

pub use backend::ThermalBackend;
pub use error::ThermalError;
pub use grid::{GridResolution, GridThermalSimulator};
pub use materials::Material;
pub use network::{lateral_resistance_from_geometry, NodeKind, ThermalNetwork};
pub use package::PackageConfig;
pub use power::PowerMap;
pub use simulator::{
    RcThermalSimulator, SessionThermalResult, SimulationFidelity, ThermalSimulator,
};
pub use steady_state::SteadyStateSolver;
pub use temperatures::Temperatures;
pub use trace::PowerTrace;
pub use transient::{TransientConfig, TransientMethod, TransientResult, TransientSolver};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = ThermalError> = std::result::Result<T, E>;
