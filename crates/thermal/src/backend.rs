//! Capability discovery over thermal simulators.
//!
//! [`ThermalSimulator`] describes *what* a simulator can compute;
//! [`ThermalBackend`] additionally describes *how* it computes it, so that
//! schedulers and facades can reason about a simulator they only know as a
//! trait object: does it integrate the transient response or bound it with
//! the steady state, and are from-ambient sessions served by the
//! precomputed-operator fast path? The trait is object-safe — the scheduling
//! stack in the `thermsched` core crate stores backends as
//! `&dyn ThermalBackend` — and requires `Send + Sync` because every consumer
//! fans work out across scoped threads.

use crate::{PowerMap, Result, SessionThermalResult, SimulationFidelity, ThermalSimulator};

/// A [`ThermalSimulator`] that can describe its own solution strategy.
///
/// Implementations must answer the capability queries consistently with what
/// [`ThermalSimulator::simulate_session`] actually does; the conformance
/// suite in the workspace root checks both library backends through
/// `&dyn ThermalBackend`.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{RcThermalSimulator, ThermalBackend};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let sim = RcThermalSimulator::from_floorplan(&fp)?;
/// let backend: &dyn ThermalBackend = &sim;
/// assert!(backend.supports_fast_path(), "fast path is the default");
/// # Ok(())
/// # }
/// ```
pub trait ThermalBackend: ThermalSimulator + Send + Sync {
    /// How session maximum temperatures are evaluated: integrated transient
    /// response, or the steady-state upper bound (the paper's
    /// "modification 1").
    fn fidelity(&self) -> SimulationFidelity;

    /// Whether from-ambient constant-power session simulations are advanced
    /// through the precomputed-operator fast path instead of the sequential
    /// implicit-Euler reference loop. Backends that never integrate a
    /// transient (e.g. steady-state-only models) return `false`.
    fn supports_fast_path(&self) -> bool;

    /// Short stable identifier for reports and baseline files.
    fn backend_name(&self) -> &'static str;

    /// Simulates many sessions of the same `duration` under per-session
    /// constant power maps.
    ///
    /// The default implementation is a sequential loop over
    /// [`ThermalSimulator::simulate_session`]; backends with a multi-RHS
    /// fast path (the grid simulator's column-blocked banded solves)
    /// override it to advance all sessions in one matrix-matrix pass.
    /// Overrides must return results identical to the sequential loop —
    /// batching is a throughput contract, never an accuracy trade — so
    /// callers may batch freely wherever same-shape work queues up.
    ///
    /// # Errors
    ///
    /// Whatever [`ThermalSimulator::simulate_session`] returns for the
    /// failing session.
    fn simulate_sessions(
        &self,
        powers: &[PowerMap],
        duration: f64,
    ) -> Result<Vec<SessionThermalResult>> {
        powers
            .iter()
            .map(|p| self.simulate_session(p, duration))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridResolution, GridThermalSimulator, PackageConfig, RcThermalSimulator};
    use thermsched_floorplan::library;

    #[test]
    fn trait_is_object_safe_and_both_backends_report_capabilities() {
        let fp = library::alpha21364();
        let rc = RcThermalSimulator::from_floorplan(&fp).unwrap();
        let grid = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(24, 24).unwrap(),
        )
        .unwrap();
        let grid_steady = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(24, 24).unwrap(),
        )
        .unwrap()
        .with_fidelity(SimulationFidelity::SteadyState);
        let backends: [&dyn ThermalBackend; 3] = [&rc, &grid, &grid_steady];
        // Both default backends are full fidelity with a fast path.
        for b in &backends[..2] {
            assert!(b.supports_fast_path());
            assert_eq!(ThermalBackend::fidelity(*b), SimulationFidelity::Transient);
        }
        // The steady-state grid is the modification-1 upper-bound model: no
        // transient is ever integrated, so no fast path either.
        assert!(!backends[2].supports_fast_path());
        assert_eq!(
            ThermalBackend::fidelity(backends[2]),
            SimulationFidelity::SteadyState
        );
        assert_eq!(backends[1].backend_name(), "grid-transient");
        assert_eq!(backends[2].backend_name(), "grid-steady-state");
        for b in backends {
            assert_eq!(b.block_count(), fp.block_count());
            assert!(!b.backend_name().is_empty());
        }
        // Batched sessions match the sequential loop bit for bit through the
        // trait object, for both the default implementation (rc) and the
        // grid's multi-RHS override.
        let mut powers = Vec::new();
        for block in [0usize, 3, 7] {
            let mut p = PowerMap::zeros(fp.block_count());
            p.set(block, 9.0 + block as f64).unwrap();
            powers.push(p);
        }
        for b in backends {
            let batched = b.simulate_sessions(&powers, 0.25).unwrap();
            for (p, batch) in powers.iter().zip(&batched) {
                assert_eq!(batch, &b.simulate_session(p, 0.25).unwrap());
            }
        }
    }
}
