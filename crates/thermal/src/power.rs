//! Power maps: per-block power dissipation driving the thermal model.

use std::collections::BTreeMap;

use thermsched_floorplan::{BlockId, Floorplan};

use crate::{Result, ThermalError};

/// Per-block power dissipation in watts.
///
/// A `PowerMap` is always created for a specific number of blocks; blocks
/// whose power is not set dissipate zero (they are idle / passive, in the
/// paper's terminology).
///
/// # Example
///
/// ```
/// use thermsched_thermal::PowerMap;
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let mut p = PowerMap::zeros(3);
/// p.set(1, 12.5)?;
/// assert_eq!(p.power(1), 12.5);
/// assert_eq!(p.total(), 12.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    powers: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map for `block_count` blocks.
    pub fn zeros(block_count: usize) -> Self {
        PowerMap {
            powers: vec![0.0; block_count],
        }
    }

    /// Creates a power map from a plain vector of per-block powers.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPower`] if any value is negative or
    /// non-finite.
    pub fn from_vec(powers: Vec<f64>) -> Result<Self> {
        for (i, &p) in powers.iter().enumerate() {
            if !(p >= 0.0 && p.is_finite()) {
                return Err(ThermalError::InvalidPower { block: i, value: p });
            }
        }
        Ok(PowerMap { powers })
    }

    /// Creates a power map for a floorplan from `(block name, watts)` pairs.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::UnknownBlock`] if a name does not exist in the
    ///   floorplan (reported with a block id equal to the floorplan size).
    /// * [`ThermalError::InvalidPower`] for negative or non-finite powers.
    pub fn from_named(fp: &Floorplan, powers: &BTreeMap<String, f64>) -> Result<Self> {
        let mut map = PowerMap::zeros(fp.block_count());
        for (name, &p) in powers {
            let id = fp.index_of(name).ok_or(ThermalError::UnknownBlock {
                block: fp.block_count(),
                count: fp.block_count(),
            })?;
            map.set(id, p)?;
        }
        Ok(map)
    }

    /// Number of blocks this map covers.
    pub fn block_count(&self) -> usize {
        self.powers.len()
    }

    /// Power of block `id` in watts (zero if never set).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn power(&self, id: BlockId) -> f64 {
        self.powers[id]
    }

    /// Sets the power of block `id`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::UnknownBlock`] if `id` is out of range.
    /// * [`ThermalError::InvalidPower`] if `watts` is negative or non-finite.
    pub fn set(&mut self, id: BlockId, watts: f64) -> Result<()> {
        if id >= self.powers.len() {
            return Err(ThermalError::UnknownBlock {
                block: id,
                count: self.powers.len(),
            });
        }
        if !(watts >= 0.0 && watts.is_finite()) {
            return Err(ThermalError::InvalidPower {
                block: id,
                value: watts,
            });
        }
        self.powers[id] = watts;
        Ok(())
    }

    /// Total power over all blocks in watts.
    pub fn total(&self) -> f64 {
        self.powers.iter().sum()
    }

    /// A copy of this map with every block's power multiplied by `factor`
    /// (the building block for DVFS-style trace phases).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPower`] if `factor` is negative or
    /// non-finite (reported against block 0).
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !(factor >= 0.0 && factor.is_finite()) {
            return Err(ThermalError::InvalidPower {
                block: 0,
                value: factor,
            });
        }
        PowerMap::from_vec(self.powers.iter().map(|p| p * factor).collect())
    }

    /// Ids of blocks with strictly positive power (the "active" blocks).
    pub fn active_blocks(&self) -> Vec<BlockId> {
        self.powers
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Borrows the raw per-block power slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.powers
    }

    /// Power density of block `id` in W/m², given the floorplan that defines
    /// the block areas.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownBlock`] if `id` is out of range of
    /// either the map or the floorplan.
    pub fn power_density(&self, fp: &Floorplan, id: BlockId) -> Result<f64> {
        if id >= self.powers.len() || id >= fp.block_count() {
            return Err(ThermalError::UnknownBlock {
                block: id,
                count: self.powers.len().min(fp.block_count()),
            });
        }
        let area = fp.blocks()[id].area();
        Ok(self.powers[id] / area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_floorplan::Block;

    fn fp2() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("a", 2.0, 2.0, 0.0, 0.0),
            Block::from_mm("b", 4.0, 2.0, 2.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn zeros_and_set() {
        let mut p = PowerMap::zeros(3);
        assert_eq!(p.block_count(), 3);
        assert_eq!(p.total(), 0.0);
        p.set(0, 5.0).unwrap();
        p.set(2, 2.5).unwrap();
        assert_eq!(p.power(0), 5.0);
        assert_eq!(p.total(), 7.5);
        assert_eq!(p.active_blocks(), vec![0, 2]);
        assert_eq!(p.as_slice(), &[5.0, 0.0, 2.5]);
    }

    #[test]
    fn set_validates() {
        let mut p = PowerMap::zeros(2);
        assert!(matches!(
            p.set(5, 1.0),
            Err(ThermalError::UnknownBlock { .. })
        ));
        assert!(matches!(
            p.set(0, -1.0),
            Err(ThermalError::InvalidPower { .. })
        ));
        assert!(p.set(0, f64::NAN).is_err());
    }

    #[test]
    fn from_vec_validates() {
        assert!(PowerMap::from_vec(vec![1.0, 0.0]).is_ok());
        assert!(PowerMap::from_vec(vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn from_named_resolves_block_names() {
        let fp = fp2();
        let mut named = BTreeMap::new();
        named.insert("b".to_owned(), 10.0);
        let p = PowerMap::from_named(&fp, &named).unwrap();
        assert_eq!(p.power(1), 10.0);
        assert_eq!(p.power(0), 0.0);

        named.insert("missing".to_owned(), 1.0);
        assert!(PowerMap::from_named(&fp, &named).is_err());
    }

    #[test]
    fn power_density_uses_block_area() {
        let fp = fp2();
        let p = PowerMap::from_vec(vec![4.0, 4.0]).unwrap();
        // Block a is 4 mm^2, block b is 8 mm^2.
        let da = p.power_density(&fp, 0).unwrap();
        let db = p.power_density(&fp, 1).unwrap();
        assert!((da / db - 2.0).abs() < 1e-9);
        assert!(p.power_density(&fp, 7).is_err());
    }
}
