//! Temperature vectors produced by the solvers.

use thermsched_floorplan::BlockId;

/// Absolute node temperatures (°C) produced by a steady-state or transient
/// solve.
///
/// Only the first [`Temperatures::block_count`] entries correspond to
/// floorplan blocks; the remaining entries are package nodes (spreader and
/// sink), exposed because they are occasionally useful for debugging the
/// model but rarely needed by schedulers.
#[derive(Debug, Clone, PartialEq)]
pub struct Temperatures {
    values: Vec<f64>,
    block_count: usize,
}

impl Temperatures {
    /// Wraps a vector of absolute node temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `block_count > values.len()`.
    pub fn new(values: Vec<f64>, block_count: usize) -> Self {
        assert!(
            block_count <= values.len(),
            "block count cannot exceed node count"
        );
        Temperatures {
            values,
            block_count,
        }
    }

    /// Number of floorplan blocks covered.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Temperature of block `id` in °C.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.block_count()`.
    pub fn block(&self, id: BlockId) -> f64 {
        assert!(id < self.block_count, "block id out of range");
        self.values[id]
    }

    /// All block temperatures in block-id order.
    pub fn block_temperatures(&self) -> &[f64] {
        &self.values[..self.block_count]
    }

    /// All node temperatures (blocks followed by package nodes).
    pub fn node_temperatures(&self) -> &[f64] {
        &self.values
    }

    /// Hottest block temperature, together with the block id.
    ///
    /// Returns `None` if the model has no blocks.
    pub fn hottest_block(&self) -> Option<(BlockId, f64)> {
        self.values[..self.block_count]
            .iter()
            .copied()
            .enumerate()
            .fold(None, |acc, (i, t)| match acc {
                Some((_, best)) if best >= t => acc,
                _ => Some((i, t)),
            })
    }

    /// Hottest block temperature in °C (`-inf` if the model has no blocks).
    pub fn max_block_temperature(&self) -> f64 {
        self.hottest_block()
            .map(|(_, t)| t)
            .unwrap_or(f64::NEG_INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Temperatures::new(vec![50.0, 80.0, 60.0, 47.0, 46.0], 3);
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.block(1), 80.0);
        assert_eq!(t.block_temperatures(), &[50.0, 80.0, 60.0]);
        assert_eq!(t.node_temperatures().len(), 5);
        assert_eq!(t.hottest_block(), Some((1, 80.0)));
        assert_eq!(t.max_block_temperature(), 80.0);
    }

    #[test]
    fn hottest_prefers_first_on_ties() {
        let t = Temperatures::new(vec![70.0, 70.0], 2);
        assert_eq!(t.hottest_block(), Some((0, 70.0)));
    }

    #[test]
    fn zero_blocks() {
        let t = Temperatures::new(vec![45.0], 0);
        assert_eq!(t.hottest_block(), None);
        assert_eq!(t.max_block_temperature(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "block id out of range")]
    fn out_of_range_block_panics() {
        let t = Temperatures::new(vec![50.0, 60.0], 1);
        let _ = t.block(1);
    }

    #[test]
    #[should_panic(expected = "block count cannot exceed node count")]
    fn invalid_block_count_panics() {
        let _ = Temperatures::new(vec![50.0], 2);
    }
}
