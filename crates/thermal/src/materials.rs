//! Material properties used by the RC-equivalent thermal model.
//!
//! Default values follow the ones shipped with the HotSpot simulator the
//! paper used for validation (silicon die, thermal-interface material, copper
//! heat spreader and heat sink).

use crate::{Result, ThermalError};

/// Thermal properties of one material layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity in J/(m³·K).
    pub volumetric_heat_capacity: f64,
}

impl Material {
    /// Creates a material after validating that both properties are positive
    /// and finite.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive or
    /// non-finite values.
    pub fn new(conductivity: f64, volumetric_heat_capacity: f64) -> Result<Self> {
        if !(conductivity > 0.0 && conductivity.is_finite()) {
            return Err(ThermalError::InvalidParameter {
                name: "conductivity",
                value: conductivity,
            });
        }
        if !(volumetric_heat_capacity > 0.0 && volumetric_heat_capacity.is_finite()) {
            return Err(ThermalError::InvalidParameter {
                name: "volumetric_heat_capacity",
                value: volumetric_heat_capacity,
            });
        }
        Ok(Material {
            conductivity,
            volumetric_heat_capacity,
        })
    }

    /// Bulk silicon at operating temperature (k ≈ 100 W/m·K, c ≈ 1.75 MJ/m³K).
    pub fn silicon() -> Self {
        Material {
            conductivity: 100.0,
            volumetric_heat_capacity: 1.75e6,
        }
    }

    /// Copper used for the heat spreader and heat sink base
    /// (k ≈ 400 W/m·K, c ≈ 3.55 MJ/m³K).
    pub fn copper() -> Self {
        Material {
            conductivity: 400.0,
            volumetric_heat_capacity: 3.55e6,
        }
    }

    /// Thermal interface material (grease) between die and spreader
    /// (k ≈ 0.8 W/m·K, c ≈ 4 MJ/m³K).
    ///
    /// The interface layer dominates the per-block vertical resistance, which
    /// therefore scales inversely with block area; this is what makes power
    /// *density* (not power) the quantity that determines block temperature,
    /// the effect the DATE 2005 paper builds on.
    pub fn thermal_interface() -> Self {
        Material {
            conductivity: 0.8,
            volumetric_heat_capacity: 4.0e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_physical() {
        for m in [
            Material::silicon(),
            Material::copper(),
            Material::thermal_interface(),
        ] {
            assert!(m.conductivity > 0.0);
            assert!(m.volumetric_heat_capacity > 0.0);
        }
        // Copper conducts much better than the interface material.
        assert!(
            Material::copper().conductivity > 10.0 * Material::thermal_interface().conductivity
        );
    }

    #[test]
    fn new_validates_inputs() {
        assert!(Material::new(100.0, 1e6).is_ok());
        assert!(Material::new(0.0, 1e6).is_err());
        assert!(Material::new(100.0, -1.0).is_err());
        assert!(Material::new(f64::NAN, 1e6).is_err());
    }
}
