//! Fine-grained grid thermal model.
//!
//! The block-level RC model in [`crate::ThermalNetwork`] lumps every
//! floorplan block into a single node. HotSpot — the simulator the paper used
//! for validation — also offers a *grid mode* in which the die is discretised
//! into a regular mesh of thermal cells, which resolves intra-block gradients
//! and the exact geometry of hot-spot formation. This module provides the
//! equivalent: a steady-state grid model assembled as a sparse system and
//! solved with the conjugate-gradient solver from `thermsched-linalg`.
//!
//! The grid model is intentionally steady-state only: the paper's
//! modification 1 uses steady-state temperatures as upper bounds of the
//! transient session profile, and the scheduler consumes the model through
//! the same [`ThermalSimulator`] trait as the block-level simulator, so the
//! two can be swapped to study guidance-vs-validation fidelity.

use thermsched_floorplan::{BlockId, Floorplan};
use thermsched_linalg::{ConjugateGradient, CsrMatrix, Triplet};

use crate::{
    PackageConfig, PowerMap, Result, SessionThermalResult, Temperatures, ThermalError,
    ThermalSimulator,
};

/// Resolution of the thermal grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridResolution {
    /// Number of grid columns across the die width.
    pub columns: usize,
    /// Number of grid rows across the die height.
    pub rows: usize,
}

impl Default for GridResolution {
    fn default() -> Self {
        GridResolution {
            columns: 32,
            rows: 32,
        }
    }
}

impl GridResolution {
    /// Creates a resolution after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if either dimension is zero.
    pub fn new(columns: usize, rows: usize) -> Result<Self> {
        if columns == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "grid_columns",
                value: 0.0,
            });
        }
        if rows == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "grid_rows",
                value: 0.0,
            });
        }
        Ok(GridResolution { columns, rows })
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.columns * self.rows
    }
}

/// Steady-state grid thermal simulator.
///
/// The die bounding box is divided into `columns × rows` cells. Each cell is
/// coupled laterally to its four neighbours through the silicon sheet
/// conductance and vertically to the ambient through the per-area die,
/// interface and (area-apportioned) package resistance. Cell powers are the
/// block powers spread uniformly over the cells whose centres fall inside the
/// block.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{GridResolution, GridThermalSimulator, PowerMap, ThermalSimulator};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let sim = GridThermalSimulator::new(&fp, &Default::default(), GridResolution::new(24, 24)?)?;
/// let mut power = PowerMap::zeros(fp.block_count());
/// power.set(fp.index_of("IntExec").unwrap(), 20.0)?;
/// let session = sim.simulate_session(&power, 1.0)?;
/// assert!(session.max_temperature() > sim.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GridThermalSimulator {
    resolution: GridResolution,
    /// Sparse conductance matrix over grid cells (W/K).
    conductance: CsrMatrix,
    /// For each cell, the floorplan block covering its centre (if any).
    cell_block: Vec<Option<BlockId>>,
    /// For each block, the indices of its cells.
    block_cells: Vec<Vec<usize>>,
    block_count: usize,
    ambient: f64,
    solver: ConjugateGradient,
}

impl GridThermalSimulator {
    /// Builds the grid model for a floorplan, package and resolution.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] if the package or resolution is
    ///   invalid, or if some block covers no grid cell (the resolution is too
    ///   coarse for the smallest block).
    pub fn new(
        floorplan: &Floorplan,
        package: &PackageConfig,
        resolution: GridResolution,
    ) -> Result<Self> {
        package.validate()?;
        let bounds = floorplan.bounds();
        let nx = resolution.columns;
        let ny = resolution.rows;
        let cell_w = bounds.width / nx as f64;
        let cell_h = bounds.height / ny as f64;

        // Map cells to blocks by cell-centre containment; cells whose centre
        // falls on a block boundary (or in floating-point slivers between
        // abutting blocks) are assigned to the nearest block so that a fully
        // tiled die always yields a fully covered grid.
        let mut cell_block = vec![None; resolution.cell_count()];
        let mut block_cells = vec![Vec::new(); floorplan.block_count()];
        for iy in 0..ny {
            for ix in 0..nx {
                let cx = bounds.x + (ix as f64 + 0.5) * cell_w;
                let cy = bounds.y + (iy as f64 + 0.5) * cell_h;
                let cell = iy * nx + ix;
                let mut assigned = None;
                for (id, block) in floorplan.iter() {
                    let r = block.rect();
                    if cx >= r.x && cx < r.right() && cy >= r.y && cy < r.top() {
                        assigned = Some(id);
                        break;
                    }
                }
                if assigned.is_none() {
                    // Nearest block by centre-to-rectangle distance, but only
                    // when the centre is essentially on a boundary (within one
                    // cell); genuine whitespace stays unassigned (background
                    // silicon with no power source).
                    let mut best: Option<(BlockId, f64)> = None;
                    for (id, block) in floorplan.iter() {
                        let r = block.rect();
                        let dx = (r.x - cx).max(cx - r.right()).max(0.0);
                        let dy = (r.y - cy).max(cy - r.top()).max(0.0);
                        let d = (dx * dx + dy * dy).sqrt();
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((id, d));
                        }
                    }
                    if let Some((id, d)) = best {
                        if d < cell_w.min(cell_h) {
                            assigned = Some(id);
                        }
                    }
                }
                if let Some(id) = assigned {
                    cell_block[cell] = Some(id);
                    block_cells[id].push(cell);
                }
            }
        }
        for (id, cells) in block_cells.iter().enumerate() {
            if cells.is_empty() {
                return Err(ThermalError::InvalidParameter {
                    name: "grid resolution too coarse for block",
                    value: id as f64,
                });
            }
        }

        // Assemble the sparse conductance matrix.
        let k_die = package.die_material.conductivity;
        let t_die = package.die_thickness;
        let cell_area = cell_w * cell_h;
        // Per-area vertical resistance: die + interface + package share.
        let die_area = bounds.area();
        let a_spreader = package.spreader_side * package.spreader_side;
        let a_sink = package.sink_side * package.sink_side;
        let package_resistance = package.spreader_thickness
            / (package.spreader_material.conductivity * a_spreader)
            + package.sink_thickness / (package.sink_material.conductivity * a_sink)
            + package.convection_resistance;
        let r_area = t_die / k_die
            + package.interface_thickness / package.interface_material.conductivity
            + package_resistance * die_area;
        let g_vertical = cell_area / r_area;

        // Lateral sheet conductance between orthogonally adjacent cells:
        // G = k * t * (shared edge) / (centre distance).
        let g_lat_x = k_die * t_die * cell_h / cell_w;
        let g_lat_y = k_die * t_die * cell_w / cell_h;

        let mut triplets = Vec::with_capacity(resolution.cell_count() * 5);
        for iy in 0..ny {
            for ix in 0..nx {
                let cell = iy * nx + ix;
                triplets.push(Triplet::new(cell, cell, g_vertical));
                if ix + 1 < nx {
                    let east = cell + 1;
                    triplets.push(Triplet::new(cell, cell, g_lat_x));
                    triplets.push(Triplet::new(east, east, g_lat_x));
                    triplets.push(Triplet::new(cell, east, -g_lat_x));
                    triplets.push(Triplet::new(east, cell, -g_lat_x));
                }
                if iy + 1 < ny {
                    let north = cell + nx;
                    triplets.push(Triplet::new(cell, cell, g_lat_y));
                    triplets.push(Triplet::new(north, north, g_lat_y));
                    triplets.push(Triplet::new(cell, north, -g_lat_y));
                    triplets.push(Triplet::new(north, cell, -g_lat_y));
                }
            }
        }
        let conductance =
            CsrMatrix::from_triplets(resolution.cell_count(), resolution.cell_count(), &triplets)?;

        Ok(GridThermalSimulator {
            resolution,
            conductance,
            cell_block,
            block_cells,
            block_count: floorplan.block_count(),
            ambient: package.ambient,
            solver: ConjugateGradient::new().with_tolerance(1e-9),
        })
    }

    /// The grid resolution.
    pub fn resolution(&self) -> GridResolution {
        self.resolution
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.resolution.cell_count()
    }

    /// The block covering cell `cell`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_block(&self, cell: usize) -> Option<BlockId> {
        self.cell_block[cell]
    }

    /// Solves the steady-state cell temperatures (°C) for a per-block power
    /// map.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the power map does not cover
    ///   the floorplan's blocks.
    /// * [`ThermalError::Solver`] if the conjugate-gradient solve fails.
    pub fn cell_temperatures(&self, power: &PowerMap) -> Result<Vec<f64>> {
        if power.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: power.block_count(),
            });
        }
        let mut rhs = vec![0.0; self.cell_count()];
        for (block, cells) in self.block_cells.iter().enumerate() {
            let p = power.power(block);
            if p > 0.0 {
                let per_cell = p / cells.len() as f64;
                for &cell in cells {
                    rhs[cell] += per_cell;
                }
            }
        }
        let solution = self.solver.solve(&self.conductance, &rhs)?;
        Ok(solution.x.iter().map(|dt| dt + self.ambient).collect())
    }

    /// Reduces cell temperatures to per-block maxima.
    fn block_maxima(&self, cells: &[f64]) -> Vec<f64> {
        self.block_cells
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|&c| cells[c])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }
}

impl crate::ThermalBackend for GridThermalSimulator {
    fn fidelity(&self) -> crate::SimulationFidelity {
        // Modification 1 of the paper: the steady-state solution is the
        // per-block maximum, an upper bound of the transient profile.
        crate::SimulationFidelity::SteadyState
    }

    fn supports_fast_path(&self) -> bool {
        false
    }

    fn backend_name(&self) -> &'static str {
        "grid-steady-state"
    }
}

impl ThermalSimulator for GridThermalSimulator {
    fn block_count(&self) -> usize {
        self.block_count
    }

    fn ambient(&self) -> f64 {
        self.ambient
    }

    fn simulate_session(&self, power: &PowerMap, duration: f64) -> Result<SessionThermalResult> {
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(ThermalError::InvalidDuration { value: duration });
        }
        let cells = self.cell_temperatures(power)?;
        let max_block_temperatures = self.block_maxima(&cells);
        // Report per-block mean temperature as the "final" value; the maxima
        // already capture the hot spots.
        let means: Vec<f64> = self
            .block_cells
            .iter()
            .map(|ids| ids.iter().map(|&c| cells[c]).sum::<f64>() / ids.len() as f64)
            .collect();
        Ok(SessionThermalResult {
            max_block_temperatures,
            final_temperatures: Temperatures::new(means, self.block_count),
            duration,
        })
    }

    fn steady_state(&self, power: &PowerMap) -> Result<Temperatures> {
        let cells = self.cell_temperatures(power)?;
        Ok(Temperatures::new(
            self.block_maxima(&cells),
            self.block_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RcThermalSimulator;
    use thermsched_floorplan::library;

    fn grid_sim(n: usize) -> (GridThermalSimulator, Floorplan) {
        let fp = library::alpha21364();
        let sim = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(n, n).unwrap(),
        )
        .unwrap();
        (sim, fp)
    }

    #[test]
    fn resolution_validation() {
        assert!(GridResolution::new(0, 4).is_err());
        assert!(GridResolution::new(4, 0).is_err());
        assert_eq!(GridResolution::default().cell_count(), 1024);
    }

    #[test]
    fn every_cell_maps_to_a_block_on_a_fully_tiled_die() {
        let (sim, fp) = grid_sim(24);
        assert_eq!(sim.cell_count(), 576);
        assert_eq!(sim.block_count(), fp.block_count());
        for cell in 0..sim.cell_count() {
            assert!(sim.cell_block(cell).is_some());
        }
    }

    #[test]
    fn too_coarse_resolution_is_rejected() {
        // A 2x2 grid cannot give every one of the 15 blocks a cell.
        let fp = library::alpha21364();
        let err = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(2, 2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::InvalidParameter { .. }));
    }

    #[test]
    fn zero_power_is_ambient_everywhere() {
        let (sim, fp) = grid_sim(16);
        let temps = sim
            .cell_temperatures(&PowerMap::zeros(fp.block_count()))
            .unwrap();
        for t in temps {
            assert!((t - sim.ambient()).abs() < 1e-6);
        }
    }

    #[test]
    fn heated_block_contains_the_hottest_cell() {
        let (sim, fp) = grid_sim(24);
        let idx = fp.index_of("IntExec").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 21.0).unwrap();
        let cells = sim.cell_temperatures(&p).unwrap();
        let (hottest_cell, _) =
            cells
                .iter()
                .enumerate()
                .fold(
                    (0, f64::NEG_INFINITY),
                    |acc, (i, &t)| {
                        if t > acc.1 {
                            (i, t)
                        } else {
                            acc
                        }
                    },
                );
        assert_eq!(sim.cell_block(hottest_cell), Some(idx));
    }

    #[test]
    fn agrees_qualitatively_with_the_block_level_model() {
        // Same power map: both models must name the same hottest block and
        // agree on the temperature ordering of heated vs idle blocks.
        let fp = library::alpha21364();
        let grid = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(32, 32).unwrap(),
        )
        .unwrap();
        let block = RcThermalSimulator::from_floorplan(&fp).unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("FPAdd").unwrap(), 20.0).unwrap();
        p.set(fp.index_of("Dcache").unwrap(), 17.0).unwrap();
        let tg = grid.steady_state(&p).unwrap();
        let tb = block.steady_state(&p).unwrap();
        assert_eq!(tg.hottest_block().unwrap().0, tb.hottest_block().unwrap().0);
        // Within a factor-of-two band on the temperature rise of the hottest
        // block (the models differ in spreading fidelity, not in physics).
        let rg = tg.max_block_temperature() - 45.0;
        let rb = tb.max_block_temperature() - 45.0;
        assert!(
            rg > 0.5 * rb && rg < 2.0 * rb,
            "grid {rg:.1} vs block {rb:.1}"
        );
    }

    #[test]
    fn refining_the_grid_converges() {
        let fp = library::alpha21364();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("Bpred").unwrap(), 8.0).unwrap();
        let coarse = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(24, 24).unwrap(),
        )
        .unwrap();
        let fine = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(48, 48).unwrap(),
        )
        .unwrap();
        let tc = coarse.steady_state(&p).unwrap().max_block_temperature();
        let tf = fine.steady_state(&p).unwrap().max_block_temperature();
        assert!(
            (tc - tf).abs() < 0.25 * (tf - 45.0).abs().max(1.0),
            "coarse {tc:.2} vs fine {tf:.2}"
        );
    }

    #[test]
    fn session_api_reports_maxima_and_validates_inputs() {
        let (sim, fp) = grid_sim(16);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(0, 30.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        assert!(session.max_temperature() > sim.ambient());
        assert_eq!(session.max_block_temperatures.len(), fp.block_count());
        assert!(sim.simulate_session(&p, 0.0).is_err());
        assert!(sim.simulate_session(&PowerMap::zeros(3), 1.0).is_err());
    }

    #[test]
    fn small_block_runs_hotter_than_large_block_at_equal_power() {
        let (sim, fp) = grid_sim(32);
        let small = fp.index_of("Bpred").unwrap();
        let large = fp.index_of("L2_bottom").unwrap();
        let mut ps = PowerMap::zeros(fp.block_count());
        ps.set(small, 10.0).unwrap();
        let mut pl = PowerMap::zeros(fp.block_count());
        pl.set(large, 10.0).unwrap();
        let ts = sim.steady_state(&ps).unwrap().block(small);
        let tl = sim.steady_state(&pl).unwrap().block(large);
        assert!(ts > tl, "power density must dominate: {ts:.1} vs {tl:.1}");
    }
}
