//! Fine-grained grid thermal model.
//!
//! The block-level RC model in [`crate::ThermalNetwork`] lumps every
//! floorplan block into a single node. HotSpot — the simulator the paper used
//! for validation — also offers a *grid mode* in which the die is discretised
//! into a regular mesh of thermal cells, which resolves intra-block gradients
//! and the exact geometry of hot-spot formation. This module provides the
//! equivalent.
//!
//! The grid model solves both fidelities. Its steady state (the paper's
//! modification 1 upper bound) is assembled as a sparse system and solved
//! directly through a banded Cholesky factorisation of the conductance
//! matrix, built once at construction; its transient response integrates the same
//! network with per-cell die capacitances through an implicit-Euler
//! recurrence whose stepping matrix `C/Δt + G` is factorised exactly once
//! per (grid shape, Δt) by [`thermsched_linalg::BandedCholesky`] — every
//! step is then one allocation-free `O(n · b)` banded solve. The scheduler
//! consumes the model through the same [`ThermalSimulator`] trait as the
//! block-level simulator, so the two can be swapped to study
//! guidance-vs-validation fidelity at either granularity.

use thermsched_floorplan::{BlockId, Floorplan};
use thermsched_linalg::{
    AdiStepOperator, BandedCholesky, CsrMatrix, ImplicitStepOperator, Triplet,
};

use crate::{
    PackageConfig, PowerMap, PowerTrace, Result, SessionThermalResult, SimulationFidelity,
    Temperatures, ThermalError, ThermalSimulator, TransientConfig, TransientMethod,
    TransientResult,
};

/// Resolution of the thermal grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridResolution {
    /// Number of grid columns across the die width.
    pub columns: usize,
    /// Number of grid rows across the die height.
    pub rows: usize,
}

impl Default for GridResolution {
    fn default() -> Self {
        GridResolution {
            columns: 32,
            rows: 32,
        }
    }
}

impl GridResolution {
    /// Creates a resolution after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if either dimension is zero.
    pub fn new(columns: usize, rows: usize) -> Result<Self> {
        if columns == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "grid_columns",
                value: 0.0,
            });
        }
        if rows == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "grid_rows",
                value: 0.0,
            });
        }
        Ok(GridResolution { columns, rows })
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.columns * self.rows
    }
}

/// Fine-grained grid thermal simulator.
///
/// The die bounding box is divided into `columns × rows` cells. Each cell is
/// coupled laterally to its four neighbours through the silicon sheet
/// conductance and vertically to the ambient through the per-area die,
/// interface and (area-apportioned) package resistance. Cell powers are the
/// block powers spread uniformly over the cells whose centres fall inside the
/// block.
///
/// Sessions are evaluated at the configured [`SimulationFidelity`]:
///
/// * [`SimulationFidelity::Transient`] (the default) integrates the cell
///   network `C · dΔT/dt = P − G · ΔT` with implicit Euler, where each
///   cell's capacitance is the die material's heat capacity over the cell
///   volume and the package is treated as a quasi-static resistance (its
///   own time constants are seconds-scale and only *delay* heating, so the
///   approximation is conservative). The stepping matrix is factorised
///   once at construction; with [`TransientMethod::Auto`] a from-ambient
///   constant-power session skips per-step maximum tracking entirely,
///   because the implicit-Euler iterates rise monotonically from rest (the
///   stepping matrix is an M-matrix and cell powers are non-negative), so
///   the per-block session maximum provably equals the final value.
/// * [`SimulationFidelity::SteadyState`] reports the steady-state solution
///   as the per-block maximum — the paper's "modification 1" upper bound,
///   selected via [`GridThermalSimulator::with_fidelity`].
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{GridResolution, GridThermalSimulator, PowerMap, ThermalSimulator};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let sim = GridThermalSimulator::new(&fp, &Default::default(), GridResolution::new(24, 24)?)?;
/// let mut power = PowerMap::zeros(fp.block_count());
/// power.set(fp.index_of("IntExec").unwrap(), 20.0)?;
/// let session = sim.simulate_session(&power, 1.0)?;
/// assert!(session.max_temperature() > sim.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GridThermalSimulator {
    resolution: GridResolution,
    /// For each cell, the floorplan block covering its centre (if any).
    cell_block: Vec<Option<BlockId>>,
    /// For each block, the indices of its cells.
    block_cells: Vec<Vec<usize>>,
    block_count: usize,
    ambient: f64,
    /// Factorised steady-state conductance matrix `G` over the cells.
    steady: BandedCholesky,
    /// The transient stepping engine selected by the configured
    /// [`TransientMethod`].
    stepper: GridStepper,
    time_step: f64,
    method: TransientMethod,
    fidelity: SimulationFidelity,
}

/// Transient stepping engine behind [`GridThermalSimulator`]: the banded
/// implicit-Euler factorisation (reference and fast paths) or the
/// Peaceman–Rachford ADI splitting ([`TransientMethod::Adi`], which skips
/// the `O(n · b²)` banded stepping factorisation entirely — only the two
/// shared tridiagonal factors are built).
#[derive(Debug)]
enum GridStepper {
    Banded(ImplicitStepOperator),
    Adi(AdiStepOperator),
}

impl GridThermalSimulator {
    /// Builds the grid model for a floorplan, package and resolution, with
    /// the default transient configuration ([`TransientConfig::default`]:
    /// 1 ms steps, [`TransientMethod::Auto`]) and transient fidelity.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] if the package or resolution is
    ///   invalid, or if some block covers no grid cell (the resolution is too
    ///   coarse for the smallest block).
    pub fn new(
        floorplan: &Floorplan,
        package: &PackageConfig,
        resolution: GridResolution,
    ) -> Result<Self> {
        Self::with_config(floorplan, package, resolution, TransientConfig::default())
    }

    /// Builds the grid model with an explicit transient configuration (time
    /// step and solution path for from-ambient sessions).
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidDuration`] if the time step is non-positive
    ///   or non-finite.
    /// * See [`GridThermalSimulator::new`] for the remaining cases.
    pub fn with_config(
        floorplan: &Floorplan,
        package: &PackageConfig,
        resolution: GridResolution,
        transient: TransientConfig,
    ) -> Result<Self> {
        package.validate()?;
        if !(transient.time_step > 0.0 && transient.time_step.is_finite()) {
            return Err(ThermalError::InvalidDuration {
                value: transient.time_step,
            });
        }
        let bounds = floorplan.bounds();
        let nx = resolution.columns;
        let ny = resolution.rows;
        let cell_w = bounds.width / nx as f64;
        let cell_h = bounds.height / ny as f64;

        // Map cells to blocks by cell-centre containment; cells whose centre
        // falls on a block boundary (or in floating-point slivers between
        // abutting blocks) are assigned to the nearest block so that a fully
        // tiled die always yields a fully covered grid.
        let mut cell_block = vec![None; resolution.cell_count()];
        let mut block_cells = vec![Vec::new(); floorplan.block_count()];
        for iy in 0..ny {
            for ix in 0..nx {
                let cx = bounds.x + (ix as f64 + 0.5) * cell_w;
                let cy = bounds.y + (iy as f64 + 0.5) * cell_h;
                let cell = iy * nx + ix;
                let mut assigned = None;
                for (id, block) in floorplan.iter() {
                    let r = block.rect();
                    if cx >= r.x && cx < r.right() && cy >= r.y && cy < r.top() {
                        assigned = Some(id);
                        break;
                    }
                }
                if assigned.is_none() {
                    // Nearest block by centre-to-rectangle distance, but only
                    // when the centre is essentially on a boundary (within one
                    // cell); genuine whitespace stays unassigned (background
                    // silicon with no power source).
                    let mut best: Option<(BlockId, f64)> = None;
                    for (id, block) in floorplan.iter() {
                        let r = block.rect();
                        let dx = (r.x - cx).max(cx - r.right()).max(0.0);
                        let dy = (r.y - cy).max(cy - r.top()).max(0.0);
                        let d = (dx * dx + dy * dy).sqrt();
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((id, d));
                        }
                    }
                    if let Some((id, d)) = best {
                        if d < cell_w.min(cell_h) {
                            assigned = Some(id);
                        }
                    }
                }
                if let Some(id) = assigned {
                    cell_block[cell] = Some(id);
                    block_cells[id].push(cell);
                }
            }
        }
        for (id, cells) in block_cells.iter().enumerate() {
            if cells.is_empty() {
                return Err(ThermalError::InvalidParameter {
                    name: "grid resolution too coarse for block",
                    value: id as f64,
                });
            }
        }

        // Assemble the sparse conductance matrix.
        let k_die = package.die_material.conductivity;
        let t_die = package.die_thickness;
        let cell_area = cell_w * cell_h;
        // Per-area vertical resistance: die + interface + package share.
        let die_area = bounds.area();
        let a_spreader = package.spreader_side * package.spreader_side;
        let a_sink = package.sink_side * package.sink_side;
        let package_resistance = package.spreader_thickness
            / (package.spreader_material.conductivity * a_spreader)
            + package.sink_thickness / (package.sink_material.conductivity * a_sink)
            + package.convection_resistance;
        let r_area = t_die / k_die
            + package.interface_thickness / package.interface_material.conductivity
            + package_resistance * die_area;
        let g_vertical = cell_area / r_area;

        // Lateral sheet conductance between orthogonally adjacent cells:
        // G = k * t * (shared edge) / (centre distance).
        let g_lat_x = k_die * t_die * cell_h / cell_w;
        let g_lat_y = k_die * t_die * cell_w / cell_h;

        let mut triplets = Vec::with_capacity(resolution.cell_count() * 5);
        for iy in 0..ny {
            for ix in 0..nx {
                let cell = iy * nx + ix;
                triplets.push(Triplet::new(cell, cell, g_vertical));
                if ix + 1 < nx {
                    let east = cell + 1;
                    triplets.push(Triplet::new(cell, cell, g_lat_x));
                    triplets.push(Triplet::new(east, east, g_lat_x));
                    triplets.push(Triplet::new(cell, east, -g_lat_x));
                    triplets.push(Triplet::new(east, cell, -g_lat_x));
                }
                if iy + 1 < ny {
                    let north = cell + nx;
                    triplets.push(Triplet::new(cell, cell, g_lat_y));
                    triplets.push(Triplet::new(north, north, g_lat_y));
                    triplets.push(Triplet::new(cell, north, -g_lat_y));
                    triplets.push(Triplet::new(north, cell, -g_lat_y));
                }
            }
        }
        let conductance =
            CsrMatrix::from_triplets(resolution.cell_count(), resolution.cell_count(), &triplets)?;

        // Per-cell thermal capacitance: die material heat capacity over the
        // cell volume. The package stack is treated as quasi-static
        // resistance (see the type-level docs).
        let cell_capacitance = package.die_material.volumetric_heat_capacity * cell_area * t_die;
        let stepper = match transient.method {
            // ADI splits G along its Kronecker factors: only two shared
            // tridiagonal factorisations are built, never the O(n·b²)
            // banded stepping matrix — the saving that makes 128×128+
            // resolutions affordable.
            TransientMethod::Adi => GridStepper::Adi(AdiStepOperator::new(
                nx,
                ny,
                g_lat_x,
                g_lat_y,
                g_vertical,
                cell_capacitance,
                transient.time_step,
            )?),
            TransientMethod::Auto | TransientMethod::ImplicitEuler => {
                let capacitance = vec![cell_capacitance; resolution.cell_count()];
                GridStepper::Banded(ImplicitStepOperator::new(
                    &conductance,
                    &capacitance,
                    transient.time_step,
                )?)
            }
        };
        // Factor the steady-state system too: G is SPD and banded just like
        // the stepping matrix, so every steady solve is one O(n·b) pass
        // instead of tens of conjugate-gradient matrix sweeps.
        let steady = BandedCholesky::new(&conductance)?;

        Ok(GridThermalSimulator {
            resolution,
            cell_block,
            block_cells,
            block_count: floorplan.block_count(),
            ambient: package.ambient,
            steady,
            stepper,
            time_step: transient.time_step,
            method: transient.method,
            fidelity: SimulationFidelity::default(),
        })
    }

    /// Selects how session maxima are computed: the full transient
    /// integration (default) or the steady-state upper bound.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: SimulationFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The configured fidelity.
    pub fn fidelity(&self) -> SimulationFidelity {
        self.fidelity
    }

    /// The transient integration time step in seconds.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// The transient method from-ambient session simulations are served by.
    pub fn transient_method(&self) -> TransientMethod {
        self.method
    }

    /// The grid resolution.
    pub fn resolution(&self) -> GridResolution {
        self.resolution
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.resolution.cell_count()
    }

    /// The block covering cell `cell`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_block(&self, cell: usize) -> Option<BlockId> {
        self.cell_block[cell]
    }

    /// Solves the steady-state cell temperatures (°C) for a per-block power
    /// map.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the power map does not cover
    ///   the floorplan's blocks.
    /// * [`ThermalError::Solver`] if the banded solve fails.
    pub fn cell_temperatures(&self, power: &PowerMap) -> Result<Vec<f64>> {
        let rhs = self.cell_power_vector(power)?;
        let solution = self.steady.solve(&rhs)?;
        Ok(solution.iter().map(|dt| dt + self.ambient).collect())
    }

    /// Cell temperatures (°C) after integrating `duration` seconds of
    /// constant power from a uniformly ambient die with implicit Euler.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the power map does not
    ///   cover the floorplan's blocks.
    /// * [`ThermalError::InvalidDuration`] if `duration` is non-positive or
    ///   non-finite.
    pub fn transient_cell_temperatures(&self, power: &PowerMap, duration: f64) -> Result<Vec<f64>> {
        let (cells, _, _) = self.integrate_from_ambient(power, duration, false)?;
        Ok(cells)
    }

    /// Integrates `duration` seconds of constant power from a uniformly
    /// ambient die and reduces the cell response to per-block results, the
    /// grid counterpart of [`crate::TransientSolver::simulate_from_ambient`].
    ///
    /// With [`TransientMethod::Auto`] the per-step maximum tracking is
    /// skipped: from rest under constant non-negative power the
    /// implicit-Euler iterates rise monotonically (the stepping matrix
    /// `C/Δt + G` is an M-matrix, so its inverse is element-wise
    /// non-negative), hence the interval maximum of every cell equals its
    /// final value exactly. [`TransientMethod::ImplicitEuler`] tracks the
    /// running maximum every step — the reference the fast path is
    /// validated against.
    ///
    /// # Errors
    ///
    /// See [`GridThermalSimulator::transient_cell_temperatures`].
    pub fn transient(&self, power: &PowerMap, duration: f64) -> Result<TransientResult> {
        let track_maxima = !self.method.uses_fast_path();
        let (final_cells, max_cells, steps) =
            self.integrate_from_ambient(power, duration, track_maxima)?;
        let means: Vec<f64> = self
            .block_cells
            .iter()
            .map(|ids| ids.iter().map(|&c| final_cells[c]).sum::<f64>() / ids.len() as f64)
            .collect();
        Ok(TransientResult {
            // On the fast path max == final by the monotone-rise argument.
            max_block_temperatures: self.block_maxima(max_cells.as_deref().unwrap_or(&final_cells)),
            final_temperatures: Temperatures::new(means, self.block_count),
            steps,
            duration,
        })
    }

    /// The implicit-Euler integration loop shared by the transient entry
    /// points. Returns the final absolute cell temperatures, the per-cell
    /// running maxima (when `track_maxima` is set), and the step count.
    #[allow(clippy::type_complexity)]
    fn integrate_from_ambient(
        &self,
        power: &PowerMap,
        duration: f64,
        track_maxima: bool,
    ) -> Result<(Vec<f64>, Option<Vec<f64>>, usize)> {
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(ThermalError::InvalidDuration { value: duration });
        }
        let p = self.cell_power_vector(power)?;
        let n = self.cell_count();
        let steps = (duration / self.time_step).ceil().max(1.0) as usize;

        // State is the temperature rise over ambient; buffers are allocated
        // once here and the step loop itself is allocation-free.
        let mut rise = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        if !track_maxima {
            // Fast path: no per-step maxima are needed — the whole run is
            // the stepper's canned from-rest advance. (For the banded
            // stepper this is justified by the monotone-rise argument; ADI
            // reaches here only from entry points that want final values.)
            match &self.stepper {
                GridStepper::Banded(op) => {
                    op.advance_from_rest_into(&p, steps, &mut rise, &mut next, &mut scratch)?;
                }
                GridStepper::Adi(op) => {
                    op.advance_from_rest_into(&p, steps, &mut rise, &mut next, &mut scratch)?;
                }
            }
            let final_cells: Vec<f64> = rise.iter().map(|r| r + self.ambient).collect();
            return Ok((final_cells, None, steps));
        }
        // Reference path: track the per-cell running maximum every step.
        let mut max_rise = vec![0.0; n];
        for _ in 0..steps {
            match &self.stepper {
                GridStepper::Banded(op) => op.step_into(&rise, &p, &mut next, &mut scratch)?,
                GridStepper::Adi(op) => op.step_into(&rise, &p, &mut next, &mut scratch)?,
            }
            std::mem::swap(&mut rise, &mut next);
            for (m, &r) in max_rise.iter_mut().zip(&rise) {
                if r > *m {
                    *m = r;
                }
            }
        }

        let final_cells: Vec<f64> = rise.iter().map(|r| r + self.ambient).collect();
        let max_cells: Vec<f64> = max_rise.iter().map(|r| r + self.ambient).collect();
        Ok((final_cells, Some(max_cells), steps))
    }

    /// Expands a warm-start state to a per-cell temperature-rise vector:
    /// either the full cell state, or portable per-block temperatures spread
    /// uniformly over each block's cells (unassigned background cells start
    /// at ambient).
    fn initial_cell_rise(&self, initial: &Temperatures) -> Result<Vec<f64>> {
        let values = initial.node_temperatures();
        let n = self.cell_count();
        let mut rise = vec![0.0; n];
        if values.len() == n {
            for (r, &v) in rise.iter_mut().zip(values) {
                *r = v - self.ambient;
            }
        } else if values.len() == self.block_count {
            for (block, cells) in self.block_cells.iter().enumerate() {
                let block_rise = values[block] - self.ambient;
                for &cell in cells {
                    rise[cell] = block_rise;
                }
            }
        } else {
            return Err(ThermalError::PowerLengthMismatch {
                expected: n,
                found: values.len(),
            });
        }
        Ok(rise)
    }

    /// Reduces final absolute cell temperatures to per-block means.
    fn block_means(&self, cells: &[f64]) -> Vec<f64> {
        self.block_cells
            .iter()
            .map(|ids| ids.iter().map(|&c| cells[c]).sum::<f64>() / ids.len() as f64)
            .collect()
    }

    /// Spreads the per-block power map uniformly over each block's cells.
    fn cell_power_vector(&self, power: &PowerMap) -> Result<Vec<f64>> {
        if power.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: power.block_count(),
            });
        }
        let mut rhs = vec![0.0; self.cell_count()];
        for (block, cells) in self.block_cells.iter().enumerate() {
            let p = power.power(block);
            if p > 0.0 {
                let per_cell = p / cells.len() as f64;
                for &cell in cells {
                    rhs[cell] += per_cell;
                }
            }
        }
        Ok(rhs)
    }

    /// Reduces cell temperatures to per-block maxima.
    fn block_maxima(&self, cells: &[f64]) -> Vec<f64> {
        self.block_cells
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|&c| cells[c])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Builds a session result from the final absolute cell temperatures of
    /// a fast-path run — the same reductions, in the same order, as the
    /// single-session path, so batched lanes stay bit-identical to it.
    fn session_from_final_cells(&self, final_cells: &[f64], duration: f64) -> SessionThermalResult {
        let means: Vec<f64> = self
            .block_cells
            .iter()
            .map(|ids| ids.iter().map(|&c| final_cells[c]).sum::<f64>() / ids.len() as f64)
            .collect();
        SessionThermalResult {
            max_block_temperatures: self.block_maxima(final_cells),
            final_temperatures: Temperatures::new(means, self.block_count),
            duration,
        }
    }

    /// Simulates many same-duration sessions in one multi-RHS pass over the
    /// banded factorisation: the per-lane power vectors become the columns
    /// of one `n × k` right-hand-side matrix and the whole batch advances
    /// through [`ImplicitStepOperator::advance_many_from_rest_into`] — one
    /// traversal of the factor per step instead of `k`.
    ///
    /// Only the banded fast path batches (from-ambient constant-power
    /// transients with no per-step maximum tracking); every other
    /// configuration — steady-state fidelity, the implicit-Euler reference,
    /// ADI — falls back to sequential [`ThermalSimulator::simulate_session`]
    /// calls. Because the multi-RHS kernels are bit-identical per column to
    /// the single-RHS solve, each lane's result is **bit-identical** to its
    /// standalone simulation either way; batching is purely a throughput
    /// knob.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThermalSimulator::simulate_session`] on any
    /// lane.
    pub fn simulate_sessions_batched(
        &self,
        powers: &[PowerMap],
        duration: f64,
    ) -> Result<Vec<SessionThermalResult>> {
        let k = powers.len();
        let op = match &self.stepper {
            GridStepper::Banded(op)
                if k > 1
                    && self.fidelity == SimulationFidelity::Transient
                    && self.method.uses_fast_path() =>
            {
                op
            }
            _ => {
                return powers
                    .iter()
                    .map(|p| self.simulate_session(p, duration))
                    .collect();
            }
        };
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(ThermalError::InvalidDuration { value: duration });
        }
        let n = self.cell_count();
        let steps = (duration / self.time_step).ceil().max(1.0) as usize;
        let mut p_mat = vec![0.0; n * k];
        for (c, power) in powers.iter().enumerate() {
            let p = self.cell_power_vector(power)?;
            for (i, v) in p.into_iter().enumerate() {
                p_mat[i * k + c] = v;
            }
        }
        let mut state = vec![0.0; n * k];
        let mut next = vec![0.0; n * k];
        let mut scratch = vec![0.0; n * k];
        op.advance_many_from_rest_into(&p_mat, steps, &mut state, &mut next, &mut scratch, k)?;
        let mut lane = vec![0.0; n];
        let mut out = Vec::with_capacity(k);
        for c in 0..k {
            for (i, cell) in lane.iter_mut().enumerate() {
                *cell = state[i * k + c] + self.ambient;
            }
            out.push(self.session_from_final_cells(&lane, duration));
        }
        Ok(out)
    }
}

impl crate::ThermalBackend for GridThermalSimulator {
    fn fidelity(&self) -> crate::SimulationFidelity {
        self.fidelity
    }

    fn supports_fast_path(&self) -> bool {
        // From-ambient constant-power sessions skip max tracking through the
        // monotone-rise argument and run on the precomputed banded
        // factorisation; a steady-state-fidelity grid never integrates.
        self.fidelity == SimulationFidelity::Transient && self.method.uses_fast_path()
    }

    fn backend_name(&self) -> &'static str {
        match (self.fidelity, self.method) {
            (SimulationFidelity::Transient, TransientMethod::Adi) => "grid-transient-adi",
            (SimulationFidelity::Transient, _) => "grid-transient",
            (SimulationFidelity::SteadyState, _) => "grid-steady-state",
        }
    }

    fn simulate_sessions(
        &self,
        powers: &[PowerMap],
        duration: f64,
    ) -> Result<Vec<SessionThermalResult>> {
        self.simulate_sessions_batched(powers, duration)
    }
}

impl ThermalSimulator for GridThermalSimulator {
    fn block_count(&self) -> usize {
        self.block_count
    }

    fn ambient(&self) -> f64 {
        self.ambient
    }

    fn simulate_session(&self, power: &PowerMap, duration: f64) -> Result<SessionThermalResult> {
        match self.fidelity {
            SimulationFidelity::Transient => {
                let r = self.transient(power, duration)?;
                Ok(SessionThermalResult {
                    max_block_temperatures: r.max_block_temperatures,
                    final_temperatures: r.final_temperatures,
                    duration,
                })
            }
            SimulationFidelity::SteadyState => {
                if !(duration > 0.0 && duration.is_finite()) {
                    return Err(ThermalError::InvalidDuration { value: duration });
                }
                let cells = self.cell_temperatures(power)?;
                let max_block_temperatures = self.block_maxima(&cells);
                // Report per-block mean temperature as the "final" value;
                // the maxima already capture the hot spots.
                let means: Vec<f64> = self
                    .block_cells
                    .iter()
                    .map(|ids| ids.iter().map(|&c| cells[c]).sum::<f64>() / ids.len() as f64)
                    .collect();
                Ok(SessionThermalResult {
                    max_block_temperatures,
                    final_temperatures: Temperatures::new(means, self.block_count),
                    duration,
                })
            }
        }
    }

    fn simulate_trace(
        &self,
        trace: &PowerTrace,
        initial: Option<&Temperatures>,
    ) -> Result<SessionThermalResult> {
        if trace.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: trace.block_count(),
            });
        }
        let canon = trace.canonical();
        match self.fidelity {
            SimulationFidelity::Transient => {
                if canon.phase_count() == 1 && initial.is_none() {
                    // Constant power from ambient: exactly the session entry
                    // point, so traced results stay bit-identical to it.
                    let (power, duration) = &canon.phases()[0];
                    return self.simulate_session(power, *duration);
                }
                // Phase-by-phase stepping on the factorisation built at
                // construction. Off-ambient there is no monotone-rise
                // argument for either stepper, so the per-cell maximum is
                // tracked at every step.
                let n = self.cell_count();
                let mut rise = match initial {
                    Some(t) => self.initial_cell_rise(t)?,
                    None => vec![0.0; n],
                };
                let mut max_rise = rise.clone();
                let mut next = vec![0.0; n];
                let mut scratch = vec![0.0; n];
                for (power, duration) in canon.phases() {
                    let p = self.cell_power_vector(power)?;
                    let steps = (duration / self.time_step).ceil().max(1.0) as usize;
                    for _ in 0..steps {
                        match &self.stepper {
                            GridStepper::Banded(op) => {
                                op.step_into(&rise, &p, &mut next, &mut scratch)?
                            }
                            GridStepper::Adi(op) => {
                                op.step_into(&rise, &p, &mut next, &mut scratch)?
                            }
                        }
                        std::mem::swap(&mut rise, &mut next);
                        for (m, &r) in max_rise.iter_mut().zip(&rise) {
                            if r > *m {
                                *m = r;
                            }
                        }
                    }
                }
                let final_cells: Vec<f64> = rise.iter().map(|r| r + self.ambient).collect();
                let max_cells: Vec<f64> = max_rise.iter().map(|r| r + self.ambient).collect();
                Ok(SessionThermalResult {
                    max_block_temperatures: self.block_maxima(&max_cells),
                    final_temperatures: Temperatures::new(
                        self.block_means(&final_cells),
                        self.block_count,
                    ),
                    duration: canon.total_duration(),
                })
            }
            SimulationFidelity::SteadyState => {
                // Stateless per-phase upper bound, like the RC simulator.
                let mut max_block = vec![f64::NEG_INFINITY; self.block_count];
                let mut last = None;
                for (power, _) in canon.phases() {
                    let cells = self.cell_temperatures(power)?;
                    for (m, v) in max_block.iter_mut().zip(self.block_maxima(&cells)) {
                        if v > *m {
                            *m = v;
                        }
                    }
                    last = Some(cells);
                }
                let last = last.expect("traces are validated non-empty");
                Ok(SessionThermalResult {
                    max_block_temperatures: max_block,
                    final_temperatures: Temperatures::new(
                        self.block_means(&last),
                        self.block_count,
                    ),
                    duration: canon.total_duration(),
                })
            }
        }
    }

    fn steady_state(&self, power: &PowerMap) -> Result<Temperatures> {
        let cells = self.cell_temperatures(power)?;
        Ok(Temperatures::new(
            self.block_maxima(&cells),
            self.block_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RcThermalSimulator;
    use thermsched_floorplan::library;

    fn grid_sim(n: usize) -> (GridThermalSimulator, Floorplan) {
        let fp = library::alpha21364();
        let sim = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(n, n).unwrap(),
        )
        .unwrap();
        (sim, fp)
    }

    #[test]
    fn resolution_validation() {
        assert!(GridResolution::new(0, 4).is_err());
        assert!(GridResolution::new(4, 0).is_err());
        assert_eq!(GridResolution::default().cell_count(), 1024);
    }

    #[test]
    fn every_cell_maps_to_a_block_on_a_fully_tiled_die() {
        let (sim, fp) = grid_sim(24);
        assert_eq!(sim.cell_count(), 576);
        assert_eq!(sim.block_count(), fp.block_count());
        for cell in 0..sim.cell_count() {
            assert!(sim.cell_block(cell).is_some());
        }
    }

    #[test]
    fn too_coarse_resolution_is_rejected() {
        // A 2x2 grid cannot give every one of the 15 blocks a cell.
        let fp = library::alpha21364();
        let err = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(2, 2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::InvalidParameter { .. }));
    }

    #[test]
    fn zero_power_is_ambient_everywhere() {
        let (sim, fp) = grid_sim(16);
        let temps = sim
            .cell_temperatures(&PowerMap::zeros(fp.block_count()))
            .unwrap();
        for t in temps {
            assert!((t - sim.ambient()).abs() < 1e-6);
        }
    }

    #[test]
    fn heated_block_contains_the_hottest_cell() {
        let (sim, fp) = grid_sim(24);
        let idx = fp.index_of("IntExec").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 21.0).unwrap();
        let cells = sim.cell_temperatures(&p).unwrap();
        let (hottest_cell, _) =
            cells
                .iter()
                .enumerate()
                .fold(
                    (0, f64::NEG_INFINITY),
                    |acc, (i, &t)| {
                        if t > acc.1 {
                            (i, t)
                        } else {
                            acc
                        }
                    },
                );
        assert_eq!(sim.cell_block(hottest_cell), Some(idx));
    }

    #[test]
    fn agrees_qualitatively_with_the_block_level_model() {
        // Same power map: both models must name the same hottest block and
        // agree on the temperature ordering of heated vs idle blocks.
        let fp = library::alpha21364();
        let grid = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(32, 32).unwrap(),
        )
        .unwrap();
        let block = RcThermalSimulator::from_floorplan(&fp).unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("FPAdd").unwrap(), 20.0).unwrap();
        p.set(fp.index_of("Dcache").unwrap(), 17.0).unwrap();
        let tg = grid.steady_state(&p).unwrap();
        let tb = block.steady_state(&p).unwrap();
        assert_eq!(tg.hottest_block().unwrap().0, tb.hottest_block().unwrap().0);
        // Within a factor-of-two band on the temperature rise of the hottest
        // block (the models differ in spreading fidelity, not in physics).
        let rg = tg.max_block_temperature() - 45.0;
        let rb = tb.max_block_temperature() - 45.0;
        assert!(
            rg > 0.5 * rb && rg < 2.0 * rb,
            "grid {rg:.1} vs block {rb:.1}"
        );
    }

    #[test]
    fn refining_the_grid_converges() {
        let fp = library::alpha21364();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("Bpred").unwrap(), 8.0).unwrap();
        let coarse = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(24, 24).unwrap(),
        )
        .unwrap();
        let fine = GridThermalSimulator::new(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(48, 48).unwrap(),
        )
        .unwrap();
        let tc = coarse.steady_state(&p).unwrap().max_block_temperature();
        let tf = fine.steady_state(&p).unwrap().max_block_temperature();
        assert!(
            (tc - tf).abs() < 0.25 * (tf - 45.0).abs().max(1.0),
            "coarse {tc:.2} vs fine {tf:.2}"
        );
    }

    #[test]
    fn session_api_reports_maxima_and_validates_inputs() {
        let (sim, fp) = grid_sim(16);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(0, 30.0).unwrap();
        let session = sim.simulate_session(&p, 1.0).unwrap();
        assert!(session.max_temperature() > sim.ambient());
        assert_eq!(session.max_block_temperatures.len(), fp.block_count());
        assert!(sim.simulate_session(&p, 0.0).is_err());
        assert!(sim.simulate_session(&PowerMap::zeros(3), 1.0).is_err());
    }

    #[test]
    fn transient_session_is_bounded_by_its_steady_state() {
        let (sim, fp) = grid_sim(16);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 18.0).unwrap();
        p.set(fp.index_of("Dcache").unwrap(), 12.0).unwrap();
        let steady = sim.steady_state(&p).unwrap();
        let mut previous = vec![sim.ambient(); fp.block_count()];
        for duration in [0.01, 0.05, 0.25, 1.0] {
            let session = sim.simulate_session(&p, duration).unwrap();
            for (block, prev) in previous.iter_mut().enumerate() {
                let t = session.block_max_temperature(block);
                assert!(
                    t <= steady.block(block) + 1e-6,
                    "block {block} at {duration}s: {t} above steady {}",
                    steady.block(block)
                );
                assert!(
                    t + 1e-9 >= *prev,
                    "block {block}: transient must rise with session length"
                );
                *prev = t;
            }
        }
    }

    #[test]
    fn transient_fast_path_matches_the_reference_exactly() {
        let fp = library::alpha21364();
        let resolution = GridResolution::new(16, 16).unwrap();
        let fast = GridThermalSimulator::new(&fp, &PackageConfig::default(), resolution).unwrap();
        let reference = GridThermalSimulator::with_config(
            &fp,
            &PackageConfig::default(),
            resolution,
            crate::TransientConfig::reference(),
        )
        .unwrap();
        assert_eq!(fast.transient_method(), TransientMethod::Auto);
        assert_eq!(reference.transient_method(), TransientMethod::ImplicitEuler);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("FPMul").unwrap(), 14.0).unwrap();
        p.set(fp.index_of("Bpred").unwrap(), 6.0).unwrap();
        for duration in [0.003, 0.04, 0.3] {
            let f = fast.transient(&p, duration).unwrap();
            let r = reference.transient(&p, duration).unwrap();
            assert_eq!(f.steps, r.steps);
            // From ambient the monotone-rise argument makes the two paths
            // bit-identical: skipping max tracking loses nothing.
            assert_eq!(f.max_block_temperatures, r.max_block_temperatures);
            assert_eq!(f.final_temperatures, r.final_temperatures);
        }
    }

    #[test]
    fn long_transient_sessions_converge_to_the_steady_state() {
        let fp = library::alpha21364();
        let sim = GridThermalSimulator::with_config(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(16, 16).unwrap(),
            crate::TransientConfig {
                time_step: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sim.time_step(), 5e-3);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 20.0).unwrap();
        let steady = sim.cell_temperatures(&p).unwrap();
        let settled = sim.transient_cell_temperatures(&p, 2.0).unwrap();
        for (t, s) in settled.iter().zip(&steady) {
            let rise = (s - sim.ambient()).abs().max(1.0);
            assert!(
                (t - s).abs() < 5e-3 * rise,
                "cell should be settled: {t} vs {s}"
            );
        }
    }

    #[test]
    fn fidelity_selects_the_session_evaluation() {
        use crate::ThermalBackend;
        let (sim, fp) = grid_sim(16);
        assert_eq!(sim.fidelity(), SimulationFidelity::Transient);
        assert!(sim.supports_fast_path());
        assert_eq!(ThermalBackend::backend_name(&sim), "grid-transient");
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 15.0).unwrap();
        let transient = sim.simulate_session(&p, 0.05).unwrap();
        let sim = sim.with_fidelity(SimulationFidelity::SteadyState);
        assert!(!sim.supports_fast_path());
        assert_eq!(ThermalBackend::backend_name(&sim), "grid-steady-state");
        let steady = sim.simulate_session(&p, 0.05).unwrap();
        // The short transient sits strictly below the steady upper bound.
        assert!(transient.max_temperature() < steady.max_temperature());
        // Steady-fidelity sessions reproduce the steady-state solution.
        let direct = sim.steady_state(&p).unwrap();
        for block in 0..fp.block_count() {
            assert!((steady.block_max_temperature(block) - direct.block(block)).abs() < 1e-12);
        }
    }

    #[test]
    fn transient_entry_points_validate_inputs() {
        let (sim, fp) = grid_sim(16);
        let p = PowerMap::zeros(fp.block_count());
        assert!(sim.transient(&p, 0.0).is_err());
        assert!(sim.transient(&p, f64::NAN).is_err());
        assert!(sim.transient(&PowerMap::zeros(3), 1.0).is_err());
        assert!(sim.transient_cell_temperatures(&p, -1.0).is_err());
        let bad = crate::TransientConfig {
            time_step: 0.0,
            ..Default::default()
        };
        assert!(GridThermalSimulator::with_config(
            &library::alpha21364(),
            &PackageConfig::default(),
            GridResolution::new(16, 16).unwrap(),
            bad,
        )
        .is_err());
    }

    #[test]
    fn batched_sessions_are_bit_identical_to_sequential_sessions() {
        let (sim, fp) = grid_sim(16);
        // Lane counts straddling the 4-lane unroll boundary.
        for lanes in [2usize, 5, 9] {
            let powers: Vec<PowerMap> = (0..lanes)
                .map(|lane| {
                    let mut p = PowerMap::zeros(fp.block_count());
                    p.set(lane % fp.block_count(), 6.0 + lane as f64 * 1.3)
                        .unwrap();
                    p.set((lane + 4) % fp.block_count(), 3.5).unwrap();
                    p
                })
                .collect();
            let batched = sim.simulate_sessions_batched(&powers, 0.08).unwrap();
            assert_eq!(batched.len(), lanes);
            for (power, batch) in powers.iter().zip(&batched) {
                assert_eq!(batch, &sim.simulate_session(power, 0.08).unwrap());
            }
        }
        // Non-batching configurations fall back to the sequential loop and
        // still agree with themselves.
        let reference = GridThermalSimulator::with_config(
            &fp,
            &PackageConfig::default(),
            GridResolution::new(16, 16).unwrap(),
            crate::TransientConfig::reference(),
        )
        .unwrap();
        let powers: Vec<PowerMap> = (0..3)
            .map(|lane| {
                let mut p = PowerMap::zeros(fp.block_count());
                p.set(lane, 8.0).unwrap();
                p
            })
            .collect();
        let batched = reference.simulate_sessions_batched(&powers, 0.05).unwrap();
        for (power, batch) in powers.iter().zip(&batched) {
            assert_eq!(batch, &reference.simulate_session(power, 0.05).unwrap());
        }
    }

    #[test]
    fn adi_method_tracks_the_banded_reference_within_a_band() {
        use crate::ThermalBackend;
        let fp = library::alpha21364();
        let resolution = GridResolution::new(16, 16).unwrap();
        let config = crate::TransientConfig {
            time_step: 2e-3,
            ..Default::default()
        };
        let banded =
            GridThermalSimulator::with_config(&fp, &PackageConfig::default(), resolution, config)
                .unwrap();
        let adi = GridThermalSimulator::with_config(
            &fp,
            &PackageConfig::default(),
            resolution,
            config.with_method(TransientMethod::Adi),
        )
        .unwrap();
        assert_eq!(adi.transient_method(), TransientMethod::Adi);
        assert_eq!(ThermalBackend::backend_name(&adi), "grid-transient-adi");
        assert!(!adi.supports_fast_path(), "ADI maxima are tracked per step");

        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 18.0).unwrap();
        p.set(fp.index_of("FPMul").unwrap(), 9.0).unwrap();
        // Mid-transient: the schemes differ O(Δt); every block stays within
        // 5% of the *peak* rise (splitting error shows up most, relatively,
        // on far-field blocks whose own rise is still tiny).
        for duration in [0.02, 0.1, 0.5] {
            let b = banded.simulate_session(&p, duration).unwrap();
            let a = adi.simulate_session(&p, duration).unwrap();
            let peak_rise = (0..fp.block_count())
                .map(|block| b.block_max_temperature(block) - banded.ambient())
                .fold(0.0f64, f64::max);
            for block in 0..fp.block_count() {
                let rise_b = b.block_max_temperature(block) - banded.ambient();
                let rise_a = a.block_max_temperature(block) - adi.ambient();
                assert!(
                    (rise_a - rise_b).abs() <= 0.05 * peak_rise,
                    "block {block} at {duration}s: adi rise {rise_a} vs banded {rise_b} \
                     (peak {peak_rise})"
                );
            }
        }
        // Deep in the settled regime both land on the same steady state.
        let b = banded.simulate_session(&p, 3.0).unwrap();
        let a = adi.simulate_session(&p, 3.0).unwrap();
        for block in 0..fp.block_count() {
            let rise = (b.block_max_temperature(block) - banded.ambient()).max(1.0);
            assert!(
                (a.block_max_temperature(block) - b.block_max_temperature(block)).abs()
                    < 0.01 * rise,
                "block {block}: steady limits diverged"
            );
        }
    }

    #[test]
    fn constant_trace_is_bit_identical_to_a_grid_session() {
        let (sim, fp) = grid_sim(16);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 16.0).unwrap();
        let session = sim.simulate_session(&p, 0.2).unwrap();
        let single = PowerTrace::constant(p.clone(), 0.2).unwrap();
        assert_eq!(sim.simulate_trace(&single, None).unwrap(), session);
        // k identical phases canonicalise back to the constant session.
        let split = PowerTrace::new(vec![(p.clone(), 0.05), (p.clone(), 0.05), (p, 0.1)]).unwrap();
        assert_eq!(sim.simulate_trace(&split, None).unwrap(), session);
    }

    #[test]
    fn traced_grid_runs_agree_across_methods_and_bound_by_phases() {
        let fp = library::alpha21364();
        let resolution = GridResolution::new(16, 16).unwrap();
        let auto = GridThermalSimulator::new(&fp, &PackageConfig::default(), resolution).unwrap();
        let reference = GridThermalSimulator::with_config(
            &fp,
            &PackageConfig::default(),
            resolution,
            crate::TransientConfig::reference(),
        )
        .unwrap();
        let mut high = PowerMap::zeros(fp.block_count());
        high.set(fp.index_of("FPMul").unwrap(), 15.0).unwrap();
        let low = high.scaled(0.3).unwrap();
        let idle = PowerMap::zeros(fp.block_count());
        let trace = PowerTrace::new(vec![(high.clone(), 0.1), (idle, 0.05), (low, 0.1)]).unwrap();
        // Both methods share the banded stepper; trace integration is the
        // same per-step loop, so the results agree exactly.
        let a = auto.simulate_trace(&trace, None).unwrap();
        let r = reference.simulate_trace(&trace, None).unwrap();
        assert_eq!(a, r);
        // The trace maximum is dominated by the hottest (first) phase and
        // bounded by that phase's steady state.
        let hot_block = fp.index_of("FPMul").unwrap();
        let steady = auto.steady_state(&high).unwrap();
        assert!(a.max_block_temperatures[hot_block] <= steady.block(hot_block) + 1e-6);
        assert!(a.max_block_temperatures[hot_block] > auto.ambient());
    }

    #[test]
    fn grid_warm_start_accepts_block_temperatures_and_decays() {
        let (sim, fp) = grid_sim(16);
        let hot = fp.index_of("Bpred").unwrap();
        let mut blocks = vec![sim.ambient(); fp.block_count()];
        blocks[hot] = 90.0;
        let initial = Temperatures::new(blocks, fp.block_count());
        let idle = PowerTrace::constant(PowerMap::zeros(fp.block_count()), 0.5).unwrap();
        let warm = sim.simulate_trace(&idle, Some(&initial)).unwrap();
        // The pre-heated block's maximum is its start value; it decays.
        assert!((warm.max_block_temperatures[hot] - 90.0).abs() < 1e-9);
        assert!(warm.final_temperatures.block(hot) < 90.0);
        // Wrong-length warm starts are rejected.
        let bad = Temperatures::new(vec![45.0; 7], 7);
        assert!(sim.simulate_trace(&idle, Some(&bad)).is_err());
    }

    #[test]
    fn small_block_runs_hotter_than_large_block_at_equal_power() {
        let (sim, fp) = grid_sim(32);
        let small = fp.index_of("Bpred").unwrap();
        let large = fp.index_of("L2_bottom").unwrap();
        let mut ps = PowerMap::zeros(fp.block_count());
        ps.set(small, 10.0).unwrap();
        let mut pl = PowerMap::zeros(fp.block_count());
        pl.set(large, 10.0).unwrap();
        let ts = sim.steady_state(&ps).unwrap().block(small);
        let tl = sim.steady_state(&pl).unwrap().block(large);
        assert!(ts > tl, "power density must dominate: {ts:.1} vs {tl:.1}");
    }
}
