//! [`Wire`] codecs for the thermal-model configuration types.

use thermsched_wire::{obj, JsonValue, Result, Wire, WireError};

use crate::{Material, PackageConfig, PowerMap, PowerTrace};

fn invalid(e: crate::ThermalError, type_name: &'static str) -> WireError {
    WireError::Invalid {
        type_name,
        message: e.to_string(),
    }
}

impl Wire for Material {
    const WIRE_TYPE: &'static str = "material";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("conductivity", self.conductivity)
            .field("volumetric_heat_capacity", self.volumetric_heat_capacity)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        Material::new(
            value.field_f64("material", "conductivity")?,
            value.field_f64("material", "volumetric_heat_capacity")?,
        )
        .map_err(|e| invalid(e, "material"))
    }
}

impl Wire for PackageConfig {
    const WIRE_TYPE: &'static str = "package_config";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("die_material", self.die_material.to_wire())
            .field("die_thickness", self.die_thickness)
            .field("interface_material", self.interface_material.to_wire())
            .field("interface_thickness", self.interface_thickness)
            .field("spreader_material", self.spreader_material.to_wire())
            .field("spreader_thickness", self.spreader_thickness)
            .field("spreader_side", self.spreader_side)
            .field("sink_thickness", self.sink_thickness)
            .field("sink_side", self.sink_side)
            .field("sink_material", self.sink_material.to_wire())
            .field("convection_resistance", self.convection_resistance)
            .field("edge_resistance_per_meter", self.edge_resistance_per_meter)
            .field("ambient", self.ambient)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "package_config";
        let config = PackageConfig {
            die_material: Material::from_wire(value.field(T, "die_material")?)?,
            die_thickness: value.field_f64(T, "die_thickness")?,
            interface_material: Material::from_wire(value.field(T, "interface_material")?)?,
            interface_thickness: value.field_f64(T, "interface_thickness")?,
            spreader_material: Material::from_wire(value.field(T, "spreader_material")?)?,
            spreader_thickness: value.field_f64(T, "spreader_thickness")?,
            spreader_side: value.field_f64(T, "spreader_side")?,
            sink_thickness: value.field_f64(T, "sink_thickness")?,
            sink_side: value.field_f64(T, "sink_side")?,
            sink_material: Material::from_wire(value.field(T, "sink_material")?)?,
            convection_resistance: value.field_f64(T, "convection_resistance")?,
            edge_resistance_per_meter: value.field_f64(T, "edge_resistance_per_meter")?,
            ambient: value.field_f64(T, "ambient")?,
        };
        config.validate().map_err(|e| invalid(e, T))?;
        Ok(config)
    }
}

impl Wire for PowerMap {
    const WIRE_TYPE: &'static str = "power_map";

    fn to_wire(&self) -> JsonValue {
        let powers: Vec<JsonValue> = (0..self.block_count())
            .map(|id| JsonValue::from(self.power(id)))
            .collect();
        obj().field("powers", powers).build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let powers = value
            .field_array("power_map", "powers")?
            .iter()
            .map(JsonValue::as_f64)
            .collect::<Result<Vec<_>>>()?;
        PowerMap::from_vec(powers).map_err(|e| invalid(e, "power_map"))
    }
}

impl Wire for PowerTrace {
    const WIRE_TYPE: &'static str = "power_trace";

    fn to_wire(&self) -> JsonValue {
        let phases: Vec<JsonValue> = self
            .phases()
            .iter()
            .map(|(power, duration)| {
                obj()
                    .field("power", power.to_wire())
                    .field("duration", *duration)
                    .build()
            })
            .collect();
        obj().field("phases", phases).build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "power_trace";
        let phases = value
            .field_array(T, "phases")?
            .iter()
            .map(|phase| {
                Ok((
                    PowerMap::from_wire(phase.field(T, "power")?)?,
                    phase.field_f64(T, "duration")?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        PowerTrace::new(phases).map_err(|e| invalid(e, T))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_config_roundtrips() {
        let config = PackageConfig::default().with_ambient(25.0);
        let json = config.to_json().unwrap();
        assert_eq!(PackageConfig::from_json(&json).unwrap(), config);
        let binary = config.to_binary().unwrap();
        assert_eq!(PackageConfig::from_binary(&binary).unwrap(), config);
    }

    #[test]
    fn power_map_roundtrips_including_empty() {
        for map in [
            PowerMap::zeros(0),
            PowerMap::from_vec(vec![0.0, 12.5, 0.125]).unwrap(),
        ] {
            let json = map.to_json().unwrap();
            assert_eq!(PowerMap::from_json(&json).unwrap(), map);
        }
    }

    #[test]
    fn power_trace_roundtrips_and_validates() {
        let trace = PowerTrace::new(vec![
            (PowerMap::from_vec(vec![5.0, 0.0]).unwrap(), 0.5),
            (PowerMap::zeros(2), 0.25),
        ])
        .unwrap();
        let json = trace.to_json().unwrap();
        assert_eq!(PowerTrace::from_json(&json).unwrap(), trace);
        let binary = trace.to_binary().unwrap();
        assert_eq!(PowerTrace::from_binary(&binary).unwrap(), trace);

        assert!(matches!(
            PowerTrace::from_json("{\"phases\": []}"),
            Err(WireError::Invalid {
                type_name: "power_trace",
                ..
            })
        ));
    }

    #[test]
    fn domain_validation_fires_on_decode() {
        assert!(matches!(
            Material::from_json("{\"conductivity\": -1.0, \"volumetric_heat_capacity\": 1.0}"),
            Err(WireError::Invalid {
                type_name: "material",
                ..
            })
        ));
        assert!(matches!(
            PowerMap::from_json("{\"powers\": [1.0, -2.0]}"),
            Err(WireError::Invalid {
                type_name: "power_map",
                ..
            })
        ));
    }
}
