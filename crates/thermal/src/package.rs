//! Package description: die, interface material, heat spreader, heat sink and
//! the convection path to ambient.

use crate::{Material, Result, ThermalError};

/// Geometry and material stack of the chip package.
///
/// The compact model built from this configuration has one node per
/// floorplan block (the die layer), one heat-spreader node, one heat-sink
/// node and the ambient as thermal ground:
///
/// ```text
///   block i ──(lateral R)── block j          (silicon, per adjacency)
///   block i ──(edge R)────── ambient          (die boundary exposure)
///   block i ──(vertical R)── spreader         (die + TIM, per block area)
///   spreader ──(R)────────── sink             (spreader conduction)
///   sink ──(R_convection)─── ambient          (fan/heatsink convection)
/// ```
///
/// Defaults are HotSpot-like: 0.5 mm die, 20 µm interface material, 1 mm
/// copper spreader, a sink with 0.1 K/W total convection resistance and a
/// 45 °C ambient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageConfig {
    /// Die (silicon) material.
    pub die_material: Material,
    /// Die thickness in metres.
    pub die_thickness: f64,
    /// Thermal interface material between die and spreader.
    pub interface_material: Material,
    /// Interface material thickness in metres.
    pub interface_thickness: f64,
    /// Heat-spreader material.
    pub spreader_material: Material,
    /// Heat-spreader thickness in metres.
    pub spreader_thickness: f64,
    /// Heat-spreader side length in metres (assumed square).
    pub spreader_side: f64,
    /// Heat-sink base thickness in metres.
    pub sink_thickness: f64,
    /// Heat-sink base side length in metres (assumed square).
    pub sink_side: f64,
    /// Heat-sink material.
    pub sink_material: Material,
    /// Total convection resistance from sink to ambient in K/W.
    pub convection_resistance: f64,
    /// Extra series resistance (per metre of exposed die edge) of the lateral
    /// path from a boundary block to the ambient, in K·m/W. Models the
    /// package material surrounding the die. Larger values make the die edge
    /// closer to adiabatic (as in HotSpot); the default keeps the edge a
    /// usable but clearly weaker heat-escape path than the vertical stack.
    pub edge_resistance_per_meter: f64,
    /// Ambient temperature in °C.
    pub ambient: f64,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            die_material: Material::silicon(),
            die_thickness: 0.5e-3,
            interface_material: Material::thermal_interface(),
            interface_thickness: 75e-6,
            spreader_material: Material::copper(),
            spreader_thickness: 1.0e-3,
            spreader_side: 30e-3,
            sink_thickness: 6.9e-3,
            sink_side: 60e-3,
            sink_material: Material::copper(),
            convection_resistance: 0.1,
            edge_resistance_per_meter: 0.05,
            ambient: 45.0,
        }
    }
}

impl PackageConfig {
    /// Creates the default HotSpot-like package.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the ambient temperature (°C).
    #[must_use]
    pub fn with_ambient(mut self, ambient: f64) -> Self {
        self.ambient = ambient;
        self
    }

    /// Sets the die thickness (metres).
    #[must_use]
    pub fn with_die_thickness(mut self, thickness: f64) -> Self {
        self.die_thickness = thickness;
        self
    }

    /// Sets the total sink-to-ambient convection resistance (K/W).
    #[must_use]
    pub fn with_convection_resistance(mut self, resistance: f64) -> Self {
        self.convection_resistance = resistance;
        self
    }

    /// Sets the lateral die-edge resistance per metre of exposed edge (K·m/W).
    #[must_use]
    pub fn with_edge_resistance_per_meter(mut self, r: f64) -> Self {
        self.edge_resistance_per_meter = r;
        self
    }

    /// Validates every geometric and material parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64); 8] = [
            ("die_thickness", self.die_thickness),
            ("interface_thickness", self.interface_thickness),
            ("spreader_thickness", self.spreader_thickness),
            ("spreader_side", self.spreader_side),
            ("sink_thickness", self.sink_thickness),
            ("sink_side", self.sink_side),
            ("convection_resistance", self.convection_resistance),
            ("edge_resistance_per_meter", self.edge_resistance_per_meter),
        ];
        for (name, value) in checks {
            if !(value > 0.0 && value.is_finite()) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        if !self.ambient.is_finite() {
            return Err(ThermalError::InvalidParameter {
                name: "ambient",
                value: self.ambient,
            });
        }
        for m in [
            self.die_material,
            self.interface_material,
            self.spreader_material,
            self.sink_material,
        ] {
            Material::new(m.conductivity, m.volumetric_heat_capacity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_package_is_valid() {
        assert!(PackageConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let p = PackageConfig::new()
            .with_ambient(25.0)
            .with_die_thickness(0.3e-3)
            .with_convection_resistance(0.25)
            .with_edge_resistance_per_meter(5.0);
        assert_eq!(p.ambient, 25.0);
        assert_eq!(p.die_thickness, 0.3e-3);
        assert_eq!(p.convection_resistance, 0.25);
        assert_eq!(p.edge_resistance_per_meter, 5.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field at a time is the point
    fn validation_catches_bad_fields() {
        let mut p = PackageConfig::default();
        p.die_thickness = 0.0;
        assert!(matches!(
            p.validate(),
            Err(ThermalError::InvalidParameter {
                name: "die_thickness",
                ..
            })
        ));

        let mut p = PackageConfig::default();
        p.convection_resistance = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = PackageConfig::default();
        p.ambient = f64::INFINITY;
        assert!(p.validate().is_err());

        let mut p = PackageConfig::default();
        p.die_material.conductivity = -5.0;
        assert!(p.validate().is_err());
    }
}
