//! Steady-state solution of the thermal network.

use thermsched_linalg::CholeskyDecomposition;

use crate::{PowerMap, Result, Temperatures, ThermalNetwork};

/// Steady-state solver: factorises the conductance matrix once and solves
/// `G · ΔT = P` for as many power maps as needed.
///
/// The paper's modification 1 argues that steady-state temperatures are upper
/// bounds for the transient profile of a test session, so this solver is both
/// the reference for the guidance model and a fast validation path.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{PackageConfig, PowerMap, SteadyStateSolver, ThermalNetwork};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let net = ThermalNetwork::build(&fp, &PackageConfig::default())?;
/// let solver = SteadyStateSolver::new(&net)?;
/// let mut power = PowerMap::zeros(fp.block_count());
/// power.set(fp.index_of("IntExec").unwrap(), 20.0)?;
/// let temps = solver.solve(&power)?;
/// assert!(temps.max_block_temperature() > net.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SteadyStateSolver {
    factorisation: CholeskyDecomposition,
    block_count: usize,
    ambient: f64,
}

impl SteadyStateSolver {
    /// Factorises the conductance matrix of `network`.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ThermalError::Solver`] error if the conductance
    /// matrix is not symmetric positive definite, which indicates a malformed
    /// model (e.g. a node with no path to ambient).
    pub fn new(network: &ThermalNetwork) -> Result<Self> {
        let factorisation = CholeskyDecomposition::new(network.conductance())?;
        Ok(SteadyStateSolver {
            factorisation,
            block_count: network.block_count(),
            ambient: network.ambient(),
        })
    }

    /// Number of blocks covered by the solver.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Solves for the steady-state temperatures under the given power map.
    ///
    /// # Errors
    ///
    /// * [`crate::ThermalError::PowerLengthMismatch`] if the power map does
    ///   not match the model's block count.
    /// * [`crate::ThermalError::Solver`] if the linear solve fails.
    pub fn solve(&self, power: &PowerMap) -> Result<Temperatures> {
        if power.block_count() != self.block_count {
            return Err(crate::ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: power.block_count(),
            });
        }
        let node_count = self.factorisation.dim();
        let mut p = vec![0.0; node_count];
        p[..self.block_count].copy_from_slice(power.as_slice());
        let rise = self.factorisation.solve(&p)?;
        let absolute: Vec<f64> = rise.iter().map(|dt| dt + self.ambient).collect();
        Ok(Temperatures::new(absolute, self.block_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackageConfig;
    use thermsched_floorplan::library;

    fn solver_and_fp() -> (SteadyStateSolver, thermsched_floorplan::Floorplan) {
        let fp = library::alpha21364();
        let net = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        (SteadyStateSolver::new(&net).unwrap(), fp)
    }

    #[test]
    fn zero_power_gives_ambient_everywhere() {
        let (solver, fp) = solver_and_fp();
        let temps = solver.solve(&PowerMap::zeros(fp.block_count())).unwrap();
        for &t in temps.block_temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heated_block_is_hottest_and_above_ambient() {
        let (solver, fp) = solver_and_fp();
        let int_exec = fp.index_of("IntExec").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(int_exec, 15.0).unwrap();
        let temps = solver.solve(&p).unwrap();
        let (hottest, t) = temps.hottest_block().unwrap();
        assert_eq!(hottest, int_exec);
        assert!(t > 45.0);
        // Every block is warmed at least to ambient.
        for &bt in temps.block_temperatures() {
            assert!(bt >= 45.0 - 1e-9);
        }
    }

    #[test]
    fn temperature_scales_linearly_with_power() {
        let (solver, fp) = solver_and_fp();
        let idx = fp.index_of("Bpred").unwrap();
        let mut p1 = PowerMap::zeros(fp.block_count());
        p1.set(idx, 5.0).unwrap();
        let mut p2 = PowerMap::zeros(fp.block_count());
        p2.set(idx, 10.0).unwrap();
        let t1 = solver.solve(&p1).unwrap();
        let t2 = solver.solve(&p2).unwrap();
        let rise1 = t1.block(idx) - 45.0;
        let rise2 = t2.block(idx) - 45.0;
        assert!((rise2 / rise1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_power_heats_small_block_more_than_large_block() {
        // The motivating observation of the paper: identical power, very
        // different temperature because of power density.
        let (solver, fp) = solver_and_fp();
        let small = fp.index_of("Bpred").unwrap(); // 4 mm^2
        let large = fp.index_of("L2_bottom").unwrap(); // 96 mm^2
        let mut ps = PowerMap::zeros(fp.block_count());
        ps.set(small, 10.0).unwrap();
        let mut pl = PowerMap::zeros(fp.block_count());
        pl.set(large, 10.0).unwrap();
        let ts = solver.solve(&ps).unwrap().block(small);
        let tl = solver.solve(&pl).unwrap().block(large);
        assert!(
            ts > tl + 5.0,
            "small block should run much hotter: {ts:.1} vs {tl:.1}"
        );
    }

    #[test]
    fn superposition_holds() {
        // The network is linear: temperatures from two sources add (as rises).
        let (solver, fp) = solver_and_fp();
        let a = fp.index_of("Icache").unwrap();
        let b = fp.index_of("Dcache").unwrap();
        let mut pa = PowerMap::zeros(fp.block_count());
        pa.set(a, 8.0).unwrap();
        let mut pb = PowerMap::zeros(fp.block_count());
        pb.set(b, 12.0).unwrap();
        let mut pab = PowerMap::zeros(fp.block_count());
        pab.set(a, 8.0).unwrap();
        pab.set(b, 12.0).unwrap();
        let ta = solver.solve(&pa).unwrap();
        let tb = solver.solve(&pb).unwrap();
        let tab = solver.solve(&pab).unwrap();
        for i in 0..fp.block_count() {
            let expected = (ta.block(i) - 45.0) + (tb.block(i) - 45.0) + 45.0;
            assert!((tab.block(i) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_wrong_power_length() {
        let (solver, _) = solver_and_fp();
        assert!(solver.solve(&PowerMap::zeros(3)).is_err());
    }
}
