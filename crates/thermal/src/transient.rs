//! Transient (time-domain) solution of the thermal network.

use thermsched_linalg::{DenseMatrix, LuDecomposition};

use crate::{PowerMap, Result, Temperatures, ThermalError, ThermalNetwork};

/// Configuration of the implicit-Euler transient integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Integration time step in seconds.
    pub time_step: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        // Die-level thermal time constants are on the order of milliseconds;
        // 1 ms resolves them while keeping second-long sessions cheap.
        TransientConfig { time_step: 1e-3 }
    }
}

/// Result of simulating one interval with constant per-block power.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Maximum temperature reached by each block over the interval (°C).
    pub max_block_temperatures: Vec<f64>,
    /// Node temperatures at the end of the interval (°C).
    pub final_temperatures: Temperatures,
    /// Number of integration steps taken.
    pub steps: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
}

impl TransientResult {
    /// Hottest block temperature observed anywhere in the interval.
    pub fn max_temperature(&self) -> f64 {
        self.max_block_temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Implicit-Euler transient solver.
///
/// Each step solves `(C/Δt + G) · ΔT_{k+1} = C/Δt · ΔT_k + P`; the left-hand
/// matrix is constant, so it is factorised once per solver and reused for
/// every step and every simulated session. Implicit Euler is unconditionally
/// stable, which matters because the network mixes millisecond block time
/// constants with a heat-sink constant of many seconds.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{PackageConfig, PowerMap, ThermalNetwork, TransientSolver};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let net = ThermalNetwork::build(&fp, &PackageConfig::default())?;
/// let solver = TransientSolver::new(&net, Default::default())?;
/// let mut p = PowerMap::zeros(fp.block_count());
/// p.set(0, 10.0)?;
/// let result = solver.simulate_from_ambient(&p, 0.5)?;
/// assert!(result.max_temperature() > net.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TransientSolver {
    factorisation: LuDecomposition,
    capacitance_over_dt: Vec<f64>,
    block_count: usize,
    node_count: usize,
    ambient: f64,
    time_step: f64,
}

impl TransientSolver {
    /// Builds the solver for a network and integrator configuration.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidDuration`] if the time step is non-positive or
    ///   non-finite.
    /// * [`ThermalError::Solver`] if the stepping matrix cannot be factorised.
    pub fn new(network: &ThermalNetwork, config: TransientConfig) -> Result<Self> {
        if !(config.time_step > 0.0 && config.time_step.is_finite()) {
            return Err(ThermalError::InvalidDuration {
                value: config.time_step,
            });
        }
        let node_count = network.node_count();
        let capacitance_over_dt: Vec<f64> = network
            .capacitance()
            .iter()
            .map(|c| c / config.time_step)
            .collect();
        let mut lhs: DenseMatrix = network.conductance().clone();
        for (i, &c) in capacitance_over_dt.iter().enumerate() {
            lhs.add_to(i, i, c);
        }
        let factorisation = LuDecomposition::new(&lhs)?;
        Ok(TransientSolver {
            factorisation,
            capacitance_over_dt,
            block_count: network.block_count(),
            node_count,
            ambient: network.ambient(),
            time_step: config.time_step,
        })
    }

    /// Integration time step in seconds.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// Number of floorplan blocks covered.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Simulates `duration` seconds starting from a uniform ambient die.
    ///
    /// # Errors
    ///
    /// See [`TransientSolver::simulate`].
    pub fn simulate_from_ambient(
        &self,
        power: &PowerMap,
        duration: f64,
    ) -> Result<TransientResult> {
        let initial = vec![self.ambient; self.node_count];
        self.simulate(power, duration, &initial)
    }

    /// Simulates `duration` seconds of constant power starting from the given
    /// absolute node temperatures.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the power map or the initial
    ///   temperature vector has the wrong length.
    /// * [`ThermalError::InvalidDuration`] if `duration` is non-positive or
    ///   non-finite.
    /// * [`ThermalError::Solver`] if a step's linear solve fails.
    pub fn simulate(
        &self,
        power: &PowerMap,
        duration: f64,
        initial_node_temperatures: &[f64],
    ) -> Result<TransientResult> {
        if power.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: power.block_count(),
            });
        }
        if initial_node_temperatures.len() != self.node_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.node_count,
                found: initial_node_temperatures.len(),
            });
        }
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(ThermalError::InvalidDuration { value: duration });
        }

        let steps = (duration / self.time_step).ceil().max(1.0) as usize;
        let mut p = vec![0.0; self.node_count];
        p[..self.block_count].copy_from_slice(power.as_slice());

        // State is the temperature rise over ambient.
        let mut rise: Vec<f64> = initial_node_temperatures
            .iter()
            .map(|t| t - self.ambient)
            .collect();
        let mut max_rise: Vec<f64> = rise[..self.block_count].to_vec();

        let mut rhs = vec![0.0; self.node_count];
        for _ in 0..steps {
            for i in 0..self.node_count {
                rhs[i] = self.capacitance_over_dt[i] * rise[i] + p[i];
            }
            rise = self.factorisation.solve(&rhs)?;
            for i in 0..self.block_count {
                if rise[i] > max_rise[i] {
                    max_rise[i] = rise[i];
                }
            }
        }

        let final_abs: Vec<f64> = rise.iter().map(|r| r + self.ambient).collect();
        Ok(TransientResult {
            max_block_temperatures: max_rise.iter().map(|r| r + self.ambient).collect(),
            final_temperatures: Temperatures::new(final_abs, self.block_count),
            steps,
            duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackageConfig, SteadyStateSolver};
    use thermsched_floorplan::library;

    fn setup() -> (ThermalNetwork, thermsched_floorplan::Floorplan) {
        let fp = library::alpha21364();
        let net = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        (net, fp)
    }

    #[test]
    fn rejects_bad_configuration_and_inputs() {
        let (net, fp) = setup();
        assert!(TransientSolver::new(&net, TransientConfig { time_step: 0.0 }).is_err());
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let p = PowerMap::zeros(fp.block_count());
        assert!(solver.simulate_from_ambient(&p, 0.0).is_err());
        assert!(solver.simulate_from_ambient(&p, f64::NAN).is_err());
        assert!(solver
            .simulate_from_ambient(&PowerMap::zeros(2), 1.0)
            .is_err());
        let bad_initial = vec![45.0; 3];
        assert!(solver.simulate(&p, 1.0, &bad_initial).is_err());
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let r = solver
            .simulate_from_ambient(&PowerMap::zeros(fp.block_count()), 0.1)
            .unwrap();
        for &t in r.final_temperatures.block_temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn temperature_rises_monotonically_toward_steady_state() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let steady = SteadyStateSolver::new(&net).unwrap();
        let idx = fp.index_of("IntExec").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 20.0).unwrap();

        let short = solver.simulate_from_ambient(&p, 0.05).unwrap();
        let long = solver.simulate_from_ambient(&p, 1.0).unwrap();
        let ss = steady.solve(&p).unwrap();

        let t_short = short.final_temperatures.block(idx);
        let t_long = long.final_temperatures.block(idx);
        let t_ss = ss.block(idx);
        assert!(t_short < t_long + 1e-9);
        // The transient never overshoots the steady state (first-order RC).
        assert!(t_long <= t_ss + 1e-6);
        assert!(long.max_temperature() <= t_ss + 1e-6);
    }

    #[test]
    fn die_reaches_quasi_steady_state_within_a_second() {
        // With the sink held cold by its large capacitance, the die-level
        // temperature differences settle within tens of milliseconds, so a
        // one-second session probes essentially the quasi-steady profile.
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let idx = fp.index_of("Bpred").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 15.0).unwrap();
        let half = solver.simulate_from_ambient(&p, 0.5).unwrap();
        let one = solver.simulate_from_ambient(&p, 1.0).unwrap();
        let diff = one.final_temperatures.block(idx) - half.final_temperatures.block(idx);
        assert!(diff.abs() < 1.0, "die should be near quasi-steady: {diff}");
    }

    #[test]
    fn continuing_a_simulation_matches_a_single_longer_run() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let idx = fp.index_of("FPMul").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 10.0).unwrap();

        let first = solver.simulate_from_ambient(&p, 0.2).unwrap();
        let resumed = solver
            .simulate(&p, 0.2, first.final_temperatures.node_temperatures())
            .unwrap();
        let single = solver.simulate_from_ambient(&p, 0.4).unwrap();
        let a = resumed.final_temperatures.block(idx);
        let b = single.final_temperatures.block(idx);
        assert!(
            (a - b).abs() < 1e-6,
            "chained vs single run differ: {a} vs {b}"
        );
    }

    #[test]
    fn step_count_matches_duration() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig { time_step: 0.01 }).unwrap();
        let r = solver
            .simulate_from_ambient(&PowerMap::zeros(fp.block_count()), 0.1)
            .unwrap();
        assert_eq!(r.steps, 10);
        assert_eq!(r.duration, 0.1);
        assert_eq!(solver.time_step(), 0.01);
        assert_eq!(solver.block_count(), fp.block_count());
    }
}
