//! Transient (time-domain) solution of the thermal network.

use std::collections::HashMap;
use std::sync::Mutex;

use thermsched_linalg::{AffineStepOperator, DenseMatrix, LuDecomposition};

use crate::{PowerMap, PowerTrace, Result, Temperatures, ThermalError, ThermalNetwork};

/// Which transient solution path the solver uses for from-ambient
/// constant-power simulations.
///
/// The opt-in-era `PrecomputedOperator` variant (behaviourally identical to
/// [`TransientMethod::Auto`]) has been folded into `Auto` and removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransientMethod {
    /// Pick the fastest path that is exact for each request: from-ambient
    /// constant-power simulations (the scheduler's usage pattern, where the
    /// precomputed operator is provably exact — see
    /// [`TransientSolver::simulate_from_ambient`]) go through the
    /// precomputed-operator path — the dense step operator
    /// `A = (C/Δt + G)⁻¹ · (C/Δt)` is built once and whole sessions advance
    /// through `(Aᵏ, S_k)` powers assembled by repeated squaring, so a
    /// `k`-step session costs `O(n³ · log k)` instead of `O(n² · k)` — while
    /// simulations from an arbitrary initial state fall back to sequential
    /// implicit-Euler stepping. This is the default: fast wherever exactness
    /// is guaranteed, reference behaviour everywhere else.
    #[default]
    Auto,
    /// Step the implicit-Euler recurrence one time step at a time for every
    /// request. Exact for any initial state and power history; this is the
    /// reference path the fast path is validated against.
    ImplicitEuler,
    /// Peaceman–Rachford alternating-direction-implicit stepping
    /// ([`thermsched_linalg::AdiStepOperator`]): the structure-exploiting
    /// path for grid-structured networks, `O(n)` per step via shared
    /// tridiagonal sweeps instead of `O(n · b)` banded solves — the knob
    /// that makes 128×128+ die resolutions affordable. Only the grid
    /// simulator has the Kronecker structure ADI splits; the dense RC
    /// solver treats this method as the sequential implicit-Euler
    /// reference (no structure to exploit, and no precomputed-operator
    /// fast path either, since ADI iterates are not provably monotone).
    Adi,
}

impl TransientMethod {
    /// Whether this method serves from-ambient constant-power simulations
    /// through the precomputed-operator fast path. ADI opts out: its
    /// iterates are not provably monotone from rest, so session maxima are
    /// tracked step by step instead of read off the final state.
    pub fn uses_fast_path(self) -> bool {
        !matches!(self, TransientMethod::ImplicitEuler | TransientMethod::Adi)
    }
}

/// Configuration of the implicit-Euler transient integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Integration time step in seconds.
    pub time_step: f64,
    /// Solution path for from-ambient constant-power simulations.
    pub method: TransientMethod,
}

impl Default for TransientConfig {
    fn default() -> Self {
        // Die-level thermal time constants are on the order of milliseconds;
        // 1 ms resolves them while keeping second-long sessions cheap. The
        // default method is Auto: precomputed-operator fast path wherever it
        // is exact, implicit-Euler stepping otherwise.
        TransientConfig {
            time_step: 1e-3,
            method: TransientMethod::default(),
        }
    }
}

impl TransientConfig {
    /// The default time step with the sequential implicit-Euler reference
    /// path for every request (the configuration equivalence suites compare
    /// the fast default against).
    pub fn reference() -> Self {
        TransientConfig {
            method: TransientMethod::ImplicitEuler,
            ..TransientConfig::default()
        }
    }

    /// Sets the solution path.
    #[must_use]
    pub fn with_method(mut self, method: TransientMethod) -> Self {
        self.method = method;
        self
    }
}

/// Result of simulating one interval with constant per-block power.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Maximum temperature reached by each block over the interval (°C).
    pub max_block_temperatures: Vec<f64>,
    /// Node temperatures at the end of the interval (°C).
    pub final_temperatures: Temperatures,
    /// Number of integration steps taken.
    pub steps: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
}

impl TransientResult {
    /// Hottest block temperature observed anywhere in the interval.
    pub fn max_temperature(&self) -> f64 {
        self.max_block_temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Implicit-Euler transient solver.
///
/// Each step solves `(C/Δt + G) · ΔT_{k+1} = C/Δt · ΔT_k + P`; the left-hand
/// matrix is constant, so it is factorised once per solver and reused for
/// every step and every simulated session. Implicit Euler is unconditionally
/// stable, which matters because the network mixes millisecond block time
/// constants with a heat-sink constant of many seconds.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::library;
/// use thermsched_thermal::{PackageConfig, PowerMap, ThermalNetwork, TransientSolver};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let fp = library::alpha21364();
/// let net = ThermalNetwork::build(&fp, &PackageConfig::default())?;
/// let solver = TransientSolver::new(&net, Default::default())?;
/// let mut p = PowerMap::zeros(fp.block_count());
/// p.set(0, 10.0)?;
/// let result = solver.simulate_from_ambient(&p, 0.5)?;
/// assert!(result.max_temperature() > net.ambient());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TransientSolver {
    factorisation: LuDecomposition,
    capacitance_over_dt: Vec<f64>,
    block_count: usize,
    node_count: usize,
    ambient: f64,
    time_step: f64,
    method: TransientMethod,
    /// The single-step operator `A = (C/Δt + G)⁻¹ · (C/Δt)`, precomputed at
    /// construction time when the fast path is selected.
    step_matrix: Option<DenseMatrix>,
    /// `k → (Aᵏ, S_k)` cache: the powered operator depends only on the step
    /// count, so every session of the same duration after the first costs a
    /// single solve plus a matrix–vector product. Guarded by a mutex so the
    /// solver stays shareable across the scheduler's phase-1 threads.
    powered: Mutex<HashMap<usize, AffineStepOperator>>,
}

impl TransientSolver {
    /// Builds the solver for a network and integrator configuration.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidDuration`] if the time step is non-positive or
    ///   non-finite.
    /// * [`ThermalError::Solver`] if the stepping matrix cannot be factorised.
    pub fn new(network: &ThermalNetwork, config: TransientConfig) -> Result<Self> {
        if !(config.time_step > 0.0 && config.time_step.is_finite()) {
            return Err(ThermalError::InvalidDuration {
                value: config.time_step,
            });
        }
        let node_count = network.node_count();
        let capacitance_over_dt: Vec<f64> = network
            .capacitance()
            .iter()
            .map(|c| c / config.time_step)
            .collect();
        let mut lhs: DenseMatrix = network.conductance().clone();
        for (i, &c) in capacitance_over_dt.iter().enumerate() {
            lhs.add_to(i, i, c);
        }
        let factorisation = LuDecomposition::new(&lhs)?;
        let step_matrix = if config.method.uses_fast_path() {
            Some(factorisation.solve_matrix(&DenseMatrix::from_diagonal(&capacitance_over_dt))?)
        } else {
            None
        };
        Ok(TransientSolver {
            factorisation,
            capacitance_over_dt,
            block_count: network.block_count(),
            node_count,
            ambient: network.ambient(),
            time_step: config.time_step,
            method: config.method,
            step_matrix,
            powered: Mutex::new(HashMap::new()),
        })
    }

    /// Integration time step in seconds.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// The solution path this solver uses for from-ambient simulations.
    pub fn method(&self) -> TransientMethod {
        self.method
    }

    /// Number of floorplan blocks covered.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Simulates `duration` seconds starting from a uniform ambient die.
    ///
    /// With [`TransientMethod::Auto`] the whole interval is
    /// advanced in one application of the `k`-step operator. That is exact
    /// here (and only here): starting from ambient, the temperature-rise
    /// state is zero, the step matrix `A` and the per-step increment
    /// `b = (C/Δt + G)⁻¹ · p` are element-wise non-negative (the stepping
    /// matrix is an M-matrix and power maps are non-negative), so the
    /// implicit-Euler iterates rise monotonically and the per-block maximum
    /// over the interval equals the final value the operator produces.
    ///
    /// # Errors
    ///
    /// See [`TransientSolver::simulate`].
    pub fn simulate_from_ambient(
        &self,
        power: &PowerMap,
        duration: f64,
    ) -> Result<TransientResult> {
        if self.method.uses_fast_path() {
            return self.simulate_with_operator(power, duration);
        }
        let initial = vec![self.ambient; self.node_count];
        self.simulate(power, duration, &initial)
    }

    /// The fast path: validates inputs, then computes the final rise
    /// `S_k · b` through the cached `k`-step operator.
    fn simulate_with_operator(&self, power: &PowerMap, duration: f64) -> Result<TransientResult> {
        self.validate_inputs(power, duration)?;
        let steps = (duration / self.time_step).ceil().max(1.0) as usize;
        let mut p = vec![0.0; self.node_count];
        p[..self.block_count].copy_from_slice(power.as_slice());
        let b = self.factorisation.solve(&p)?;

        let step_matrix = self
            .step_matrix
            .as_ref()
            .expect("fast path implies a precomputed step matrix");
        let cached = {
            let powered = self.powered.lock().expect("operator cache lock");
            powered
                .get(&steps)
                .map(|op| op.apply_from_rest(&b))
                .transpose()?
        };
        let rise = match cached {
            Some(rise) => rise,
            None => {
                // Build the operator outside the lock so concurrent callers
                // (the scheduler's phase-1 threads) don't serialise on the
                // O(n³·log k) squaring; a racing duplicate is dropped by
                // or_insert and both race outcomes are deterministic.
                let op = AffineStepOperator::single(step_matrix)?.pow(steps)?;
                let rise = op.apply_from_rest(&b)?;
                self.powered
                    .lock()
                    .expect("operator cache lock")
                    .entry(steps)
                    .or_insert(op);
                rise
            }
        };

        Ok(TransientResult {
            max_block_temperatures: rise[..self.block_count]
                .iter()
                .map(|r| r + self.ambient)
                .collect(),
            final_temperatures: Temperatures::new(
                rise.iter().map(|r| r + self.ambient).collect(),
                self.block_count,
            ),
            steps,
            duration,
        })
    }

    fn validate_inputs(&self, power: &PowerMap, duration: f64) -> Result<()> {
        if power.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: power.block_count(),
            });
        }
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(ThermalError::InvalidDuration { value: duration });
        }
        Ok(())
    }

    /// Simulates a piecewise-constant [`PowerTrace`], optionally starting
    /// from the given absolute node temperatures instead of ambient.
    ///
    /// The trace is first canonicalised ([`PowerTrace::canonical`]); a
    /// canonical single phase from ambient is served by
    /// [`TransientSolver::simulate_from_ambient`], so constant-power traces
    /// are **bit-identical** to plain sessions. With
    /// [`TransientMethod::Auto`], every remaining phase is probed with one
    /// implicit-Euler step: if the iterate moves monotonically (all nodes
    /// rising, or all falling — preserved by induction because the step
    /// matrix is element-wise non-negative), the phase's block maxima sit at
    /// its endpoints and the whole phase advances through one cached
    /// `k`-step operator; otherwise the fast path falls back to per-step
    /// integration with per-step maximum tracking, because the from-ambient
    /// monotone-rise argument does not hold off-ambient. Reference methods
    /// integrate every phase step by step.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the trace's block count or
    ///   the initial vector's length does not match the model.
    /// * [`ThermalError::Solver`] if a linear solve fails.
    pub fn simulate_trace(
        &self,
        trace: &PowerTrace,
        initial_node_temperatures: Option<&[f64]>,
    ) -> Result<TransientResult> {
        if trace.block_count() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                found: trace.block_count(),
            });
        }
        if let Some(initial) = initial_node_temperatures {
            if initial.len() != self.node_count {
                return Err(ThermalError::PowerLengthMismatch {
                    expected: self.node_count,
                    found: initial.len(),
                });
            }
        }
        let canon = trace.canonical();
        if canon.phase_count() == 1 && initial_node_temperatures.is_none() {
            let (power, duration) = &canon.phases()[0];
            return self.simulate_from_ambient(power, *duration);
        }
        if self.method.uses_fast_path() {
            self.simulate_trace_with_operators(&canon, initial_node_temperatures)
        } else {
            self.simulate_trace_stepping(&canon, initial_node_temperatures)
        }
    }

    /// Reference trace integration: sequential implicit-Euler phases chained
    /// through the phase-boundary state, maxima merged across phases.
    fn simulate_trace_stepping(
        &self,
        trace: &PowerTrace,
        initial_node_temperatures: Option<&[f64]>,
    ) -> Result<TransientResult> {
        let mut state: Vec<f64> = match initial_node_temperatures {
            Some(t) => t.to_vec(),
            None => vec![self.ambient; self.node_count],
        };
        let mut max_block = vec![f64::NEG_INFINITY; self.block_count];
        let mut steps = 0;
        let mut duration = 0.0;
        let mut last = None;
        for (power, phase_duration) in trace.phases() {
            let r = self.simulate(power, *phase_duration, &state)?;
            steps += r.steps;
            duration += r.duration;
            for (m, &t) in max_block.iter_mut().zip(&r.max_block_temperatures) {
                if t > *m {
                    *m = t;
                }
            }
            state.copy_from_slice(r.final_temperatures.node_temperatures());
            last = Some(r.final_temperatures);
        }
        Ok(TransientResult {
            max_block_temperatures: max_block,
            final_temperatures: last.expect("traces are validated non-empty"),
            steps,
            duration,
        })
    }

    /// Fast trace integration: per-phase monotonicity probe, one cached
    /// `k`-step operator per monotone phase, per-step fallback otherwise.
    fn simulate_trace_with_operators(
        &self,
        trace: &PowerTrace,
        initial_node_temperatures: Option<&[f64]>,
    ) -> Result<TransientResult> {
        let step_matrix = self
            .step_matrix
            .as_ref()
            .expect("fast path implies a precomputed step matrix");
        // State is the temperature rise over ambient, as in `simulate`.
        let mut rise: Vec<f64> = match initial_node_temperatures {
            Some(t) => t.iter().map(|t| t - self.ambient).collect(),
            None => vec![0.0; self.node_count],
        };
        let mut max_rise: Vec<f64> = rise[..self.block_count].to_vec();
        let mut total_steps = 0;
        let mut p = vec![0.0; self.node_count];
        let mut next = vec![0.0; self.node_count];
        let mut out = vec![0.0; self.node_count];
        let mut scratch = vec![0.0; self.node_count];
        for (power, duration) in trace.phases() {
            let steps = (duration / self.time_step).ceil().max(1.0) as usize;
            total_steps += steps;
            p[..self.block_count].copy_from_slice(power.as_slice());
            let b = self.factorisation.solve(&p)?;

            // One-step probe `x₁ = A·x₀ + b` decides the phase direction.
            step_matrix.mul_vec_into(&rise, &mut next)?;
            for (n, &bi) in next.iter_mut().zip(&b) {
                *n += bi;
            }
            let rising = next.iter().zip(&rise).all(|(n, c)| n >= c);
            let falling = next.iter().zip(&rise).all(|(n, c)| n <= c);

            if rising || falling {
                // Monotone phase: the per-block extreme sits at an endpoint
                // (the start is already in `max_rise`, the end is recorded
                // below), so the whole phase advances in one operator
                // application.
                if steps == 1 {
                    std::mem::swap(&mut rise, &mut next);
                } else {
                    let applied = {
                        let powered = self.powered.lock().expect("operator cache lock");
                        if let Some(op) = powered.get(&steps) {
                            op.apply_into(&rise, &b, &mut out, &mut scratch)?;
                            true
                        } else {
                            false
                        }
                    };
                    if !applied {
                        // Built outside the lock, same as the session path.
                        let op = AffineStepOperator::single(step_matrix)?.pow(steps)?;
                        op.apply_into(&rise, &b, &mut out, &mut scratch)?;
                        self.powered
                            .lock()
                            .expect("operator cache lock")
                            .entry(steps)
                            .or_insert(op);
                    }
                    std::mem::swap(&mut rise, &mut out);
                }
                for i in 0..self.block_count {
                    if rise[i] > max_rise[i] {
                        max_rise[i] = rise[i];
                    }
                }
            } else {
                // Mixed directions (possible only off-ambient): no endpoint
                // argument holds, so track the maximum at every step. The
                // probe above already computed the first step.
                std::mem::swap(&mut rise, &mut next);
                for i in 0..self.block_count {
                    if rise[i] > max_rise[i] {
                        max_rise[i] = rise[i];
                    }
                }
                for _ in 1..steps {
                    step_matrix.mul_vec_into(&rise, &mut next)?;
                    for (n, &bi) in next.iter_mut().zip(&b) {
                        *n += bi;
                    }
                    std::mem::swap(&mut rise, &mut next);
                    for i in 0..self.block_count {
                        if rise[i] > max_rise[i] {
                            max_rise[i] = rise[i];
                        }
                    }
                }
            }
        }
        Ok(TransientResult {
            max_block_temperatures: max_rise.iter().map(|r| r + self.ambient).collect(),
            final_temperatures: Temperatures::new(
                rise.iter().map(|r| r + self.ambient).collect(),
                self.block_count,
            ),
            steps: total_steps,
            duration: trace.total_duration(),
        })
    }

    /// Simulates `duration` seconds of constant power starting from the given
    /// absolute node temperatures.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the power map or the initial
    ///   temperature vector has the wrong length.
    /// * [`ThermalError::InvalidDuration`] if `duration` is non-positive or
    ///   non-finite.
    /// * [`ThermalError::Solver`] if a step's linear solve fails.
    pub fn simulate(
        &self,
        power: &PowerMap,
        duration: f64,
        initial_node_temperatures: &[f64],
    ) -> Result<TransientResult> {
        self.validate_inputs(power, duration)?;
        if initial_node_temperatures.len() != self.node_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.node_count,
                found: initial_node_temperatures.len(),
            });
        }

        let steps = (duration / self.time_step).ceil().max(1.0) as usize;
        let mut p = vec![0.0; self.node_count];
        p[..self.block_count].copy_from_slice(power.as_slice());

        // State is the temperature rise over ambient. All buffers are
        // allocated once here; the step loop itself is allocation-free.
        let mut rise: Vec<f64> = initial_node_temperatures
            .iter()
            .map(|t| t - self.ambient)
            .collect();
        let mut max_rise: Vec<f64> = rise[..self.block_count].to_vec();

        let mut rhs = vec![0.0; self.node_count];
        let mut next = vec![0.0; self.node_count];
        let mut scratch = vec![0.0; self.node_count];
        for _ in 0..steps {
            for i in 0..self.node_count {
                rhs[i] = self.capacitance_over_dt[i] * rise[i] + p[i];
            }
            self.factorisation
                .solve_into(&rhs, &mut next, &mut scratch)?;
            std::mem::swap(&mut rise, &mut next);
            for i in 0..self.block_count {
                if rise[i] > max_rise[i] {
                    max_rise[i] = rise[i];
                }
            }
        }

        let final_abs: Vec<f64> = rise.iter().map(|r| r + self.ambient).collect();
        Ok(TransientResult {
            max_block_temperatures: max_rise.iter().map(|r| r + self.ambient).collect(),
            final_temperatures: Temperatures::new(final_abs, self.block_count),
            steps,
            duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackageConfig, SteadyStateSolver};
    use thermsched_floorplan::library;

    fn setup() -> (ThermalNetwork, thermsched_floorplan::Floorplan) {
        let fp = library::alpha21364();
        let net = ThermalNetwork::build(&fp, &PackageConfig::default()).unwrap();
        (net, fp)
    }

    #[test]
    fn rejects_bad_configuration_and_inputs() {
        let (net, fp) = setup();
        assert!(TransientSolver::new(
            &net,
            TransientConfig {
                time_step: 0.0,
                ..TransientConfig::default()
            }
        )
        .is_err());
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let p = PowerMap::zeros(fp.block_count());
        assert!(solver.simulate_from_ambient(&p, 0.0).is_err());
        assert!(solver.simulate_from_ambient(&p, f64::NAN).is_err());
        assert!(solver
            .simulate_from_ambient(&PowerMap::zeros(2), 1.0)
            .is_err());
        let bad_initial = vec![45.0; 3];
        assert!(solver.simulate(&p, 1.0, &bad_initial).is_err());
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let r = solver
            .simulate_from_ambient(&PowerMap::zeros(fp.block_count()), 0.1)
            .unwrap();
        for &t in r.final_temperatures.block_temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn temperature_rises_monotonically_toward_steady_state() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let steady = SteadyStateSolver::new(&net).unwrap();
        let idx = fp.index_of("IntExec").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 20.0).unwrap();

        let short = solver.simulate_from_ambient(&p, 0.05).unwrap();
        let long = solver.simulate_from_ambient(&p, 1.0).unwrap();
        let ss = steady.solve(&p).unwrap();

        let t_short = short.final_temperatures.block(idx);
        let t_long = long.final_temperatures.block(idx);
        let t_ss = ss.block(idx);
        assert!(t_short < t_long + 1e-9);
        // The transient never overshoots the steady state (first-order RC).
        assert!(t_long <= t_ss + 1e-6);
        assert!(long.max_temperature() <= t_ss + 1e-6);
    }

    #[test]
    fn die_reaches_quasi_steady_state_within_a_second() {
        // With the sink held cold by its large capacitance, the die-level
        // temperature differences settle within tens of milliseconds, so a
        // one-second session probes essentially the quasi-steady profile.
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let idx = fp.index_of("Bpred").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 15.0).unwrap();
        let half = solver.simulate_from_ambient(&p, 0.5).unwrap();
        let one = solver.simulate_from_ambient(&p, 1.0).unwrap();
        let diff = one.final_temperatures.block(idx) - half.final_temperatures.block(idx);
        assert!(diff.abs() < 1.0, "die should be near quasi-steady: {diff}");
    }

    #[test]
    fn continuing_a_simulation_matches_a_single_longer_run() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let idx = fp.index_of("FPMul").unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(idx, 10.0).unwrap();

        let first = solver.simulate_from_ambient(&p, 0.2).unwrap();
        let resumed = solver
            .simulate(&p, 0.2, first.final_temperatures.node_temperatures())
            .unwrap();
        let single = solver.simulate_from_ambient(&p, 0.4).unwrap();
        let a = resumed.final_temperatures.block(idx);
        let b = single.final_temperatures.block(idx);
        assert!(
            (a - b).abs() < 1e-6,
            "chained vs single run differ: {a} vs {b}"
        );
    }

    #[test]
    fn fast_path_matches_reference_on_sessions() {
        let (net, fp) = setup();
        let reference = TransientSolver::new(&net, TransientConfig::reference()).unwrap();
        let fast = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        assert_eq!(reference.method(), TransientMethod::ImplicitEuler);
        assert_eq!(fast.method(), TransientMethod::Auto);
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("IntExec").unwrap(), 20.0).unwrap();
        p.set(fp.index_of("Bpred").unwrap(), 8.0).unwrap();
        for duration in [0.001, 0.017, 0.25, 1.0] {
            let r = reference.simulate_from_ambient(&p, duration).unwrap();
            let f = fast.simulate_from_ambient(&p, duration).unwrap();
            assert_eq!(r.steps, f.steps);
            for (a, b) in r
                .max_block_temperatures
                .iter()
                .zip(&f.max_block_temperatures)
            {
                assert!((a - b).abs() < 1e-6, "duration {duration}: {a} vs {b}");
            }
            for (a, b) in r
                .final_temperatures
                .node_temperatures()
                .iter()
                .zip(f.final_temperatures.node_temperatures())
            {
                assert!((a - b).abs() < 1e-6);
            }
        }
        // A second run of the same duration hits the powered-operator cache
        // and must give bit-identical results.
        let once = fast.simulate_from_ambient(&p, 1.0).unwrap();
        let twice = fast.simulate_from_ambient(&p, 1.0).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn fast_path_validates_inputs_like_the_reference() {
        let (net, fp) = setup();
        let fast = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let p = PowerMap::zeros(fp.block_count());
        assert!(fast.simulate_from_ambient(&p, 0.0).is_err());
        assert!(fast.simulate_from_ambient(&p, f64::NAN).is_err());
        assert!(fast
            .simulate_from_ambient(&PowerMap::zeros(2), 1.0)
            .is_err());
    }

    #[test]
    fn fast_solver_still_steps_from_arbitrary_initial_state() {
        let (net, fp) = setup();
        let reference = TransientSolver::new(&net, TransientConfig::reference()).unwrap();
        let fast = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let mut p = PowerMap::zeros(fp.block_count());
        p.set(fp.index_of("FPMul").unwrap(), 10.0).unwrap();
        let warm = reference.simulate_from_ambient(&p, 0.2).unwrap();
        let a = reference
            .simulate(&p, 0.2, warm.final_temperatures.node_temperatures())
            .unwrap();
        let b = fast
            .simulate(&p, 0.2, warm.final_temperatures.node_temperatures())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_is_the_default_and_selects_the_fast_path() {
        assert_eq!(TransientMethod::default(), TransientMethod::Auto);
        assert!(TransientMethod::Auto.uses_fast_path());
        assert!(!TransientMethod::ImplicitEuler.uses_fast_path());
        assert!(!TransientMethod::Adi.uses_fast_path());
        assert_eq!(
            TransientConfig::reference().method,
            TransientMethod::ImplicitEuler
        );

        let (net, _) = setup();
        let auto = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        assert_eq!(auto.method(), TransientMethod::Auto);
    }

    #[test]
    fn constant_trace_is_bit_identical_to_a_session() {
        let (net, fp) = setup();
        for config in [TransientConfig::default(), TransientConfig::reference()] {
            let solver = TransientSolver::new(&net, config).unwrap();
            let mut p = PowerMap::zeros(fp.block_count());
            p.set(fp.index_of("IntExec").unwrap(), 14.0).unwrap();
            let session = solver.simulate_from_ambient(&p, 1.0).unwrap();
            let single = PowerTrace::constant(p.clone(), 1.0).unwrap();
            assert_eq!(solver.simulate_trace(&single, None).unwrap(), session);
            // k identical phases canonicalise to the same constant session.
            let split =
                PowerTrace::new(vec![(p.clone(), 0.25), (p.clone(), 0.25), (p, 0.5)]).unwrap();
            assert_eq!(solver.simulate_trace(&split, None).unwrap(), session);
        }
    }

    #[test]
    fn traced_fast_path_matches_stepped_reference() {
        let (net, fp) = setup();
        let reference = TransientSolver::new(&net, TransientConfig::reference()).unwrap();
        let fast = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let mut high = PowerMap::zeros(fp.block_count());
        high.set(fp.index_of("IntExec").unwrap(), 20.0).unwrap();
        let mut low = PowerMap::zeros(fp.block_count());
        low.set(fp.index_of("IntExec").unwrap(), 4.0).unwrap();
        let idle = PowerMap::zeros(fp.block_count());
        let trace = PowerTrace::new(vec![
            (high.clone(), 0.3),
            (idle, 0.2),
            (low, 0.25),
            (high, 0.25),
        ])
        .unwrap();
        let r = reference.simulate_trace(&trace, None).unwrap();
        let f = fast.simulate_trace(&trace, None).unwrap();
        assert_eq!(r.steps, f.steps);
        assert!((r.duration - f.duration).abs() < 1e-12);
        for (a, b) in r
            .max_block_temperatures
            .iter()
            .zip(&f.max_block_temperatures)
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        for (a, b) in r
            .final_temperatures
            .node_temperatures()
            .iter()
            .zip(f.final_temperatures.node_temperatures())
        {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_started_stages_match_one_concatenated_trace() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let mut high = PowerMap::zeros(fp.block_count());
        high.set(fp.index_of("Bpred").unwrap(), 16.0).unwrap();
        let low = high.scaled(0.25).unwrap();
        let stage1 = PowerTrace::constant(high.clone(), 0.4).unwrap();
        let stage2 = PowerTrace::constant(low.clone(), 0.3).unwrap();
        let first = solver.simulate_trace(&stage1, None).unwrap();
        let second = solver
            .simulate_trace(&stage2, Some(first.final_temperatures.node_temperatures()))
            .unwrap();
        let whole = solver
            .simulate_trace(
                &PowerTrace::new(vec![(high, 0.4), (low, 0.3)]).unwrap(),
                None,
            )
            .unwrap();
        for (a, b) in second
            .final_temperatures
            .node_temperatures()
            .iter()
            .zip(whole.final_temperatures.node_temperatures())
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn auto_fallback_tracks_per_step_maxima_off_ambient() {
        // From a state with one block far above ambient and no power, heat
        // diffuses: neighbours first *rise* as the hot block's heat arrives,
        // then decay toward ambient — the per-block maximum lies strictly
        // inside the interval. The from-ambient monotone-rise argument does
        // not apply, so Auto must engage per-step maximum tracking (this was
        // previously only documented, never asserted).
        let (net, fp) = setup();
        let reference = TransientSolver::new(&net, TransientConfig::reference()).unwrap();
        let fast = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let hot = fp.index_of("IntExec").unwrap();
        let node_count = reference.node_count;
        let mut initial = vec![45.0; node_count];
        initial[hot] = 145.0;
        let idle = PowerTrace::constant(PowerMap::zeros(fp.block_count()), 1.0).unwrap();
        let r = reference.simulate_trace(&idle, Some(&initial)).unwrap();
        let f = fast.simulate_trace(&idle, Some(&initial)).unwrap();
        // Some neighbour peaks mid-interval: its max exceeds both endpoints.
        let overshoot = (0..fp.block_count()).any(|i| {
            i != hot
                && r.max_block_temperatures[i] > initial[i] + 1e-3
                && r.max_block_temperatures[i] > r.final_temperatures.block(i) + 1e-3
        });
        assert!(overshoot, "expected a mid-interval neighbour maximum");
        for (a, b) in r
            .max_block_temperatures
            .iter()
            .zip(&f.max_block_temperatures)
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn simulate_trace_validates_inputs() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(&net, TransientConfig::default()).unwrap();
        let wrong = PowerTrace::constant(PowerMap::zeros(2), 1.0).unwrap();
        assert!(matches!(
            solver.simulate_trace(&wrong, None),
            Err(ThermalError::PowerLengthMismatch { .. })
        ));
        let ok = PowerTrace::constant(PowerMap::zeros(fp.block_count()), 1.0).unwrap();
        let short_initial = vec![45.0; 3];
        assert!(matches!(
            solver.simulate_trace(&ok, Some(&short_initial)),
            Err(ThermalError::PowerLengthMismatch { .. })
        ));
    }

    #[test]
    fn step_count_matches_duration() {
        let (net, fp) = setup();
        let solver = TransientSolver::new(
            &net,
            TransientConfig {
                time_step: 0.01,
                ..TransientConfig::default()
            },
        )
        .unwrap();
        let r = solver
            .simulate_from_ambient(&PowerMap::zeros(fp.block_count()), 0.1)
            .unwrap();
        assert_eq!(r.steps, 10);
        assert_eq!(r.duration, 0.1);
        assert_eq!(solver.time_step(), 0.01);
        assert_eq!(solver.block_count(), fp.block_count());
    }
}
