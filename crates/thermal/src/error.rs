//! Error type for thermal model construction and simulation.

use std::error::Error;
use std::fmt;

use thermsched_linalg::LinalgError;

/// Errors produced while building or simulating the compact thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A package or material parameter is non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A power map refers to a block id outside the floorplan.
    UnknownBlock {
        /// The offending block id.
        block: usize,
        /// Number of blocks in the model.
        count: usize,
    },
    /// The power vector has the wrong length for the model.
    PowerLengthMismatch {
        /// Expected number of blocks.
        expected: usize,
        /// Length of the supplied power vector.
        found: usize,
    },
    /// A power value is negative or non-finite.
    InvalidPower {
        /// The offending block id.
        block: usize,
        /// The offending power value in watts.
        value: f64,
    },
    /// A simulation duration or time step is non-positive or non-finite.
    InvalidDuration {
        /// The offending value in seconds.
        value: f64,
    },
    /// A power trace is structurally invalid, or a trace request is not
    /// supported by the backend it was sent to.
    InvalidTrace {
        /// What is wrong with the trace or the request.
        message: &'static str,
    },
    /// The underlying linear solve failed.
    Solver(LinalgError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidParameter { name, value } => {
                write!(f, "invalid thermal parameter {name} = {value}")
            }
            ThermalError::UnknownBlock { block, count } => {
                write!(
                    f,
                    "block id {block} out of range for model with {count} blocks"
                )
            }
            ThermalError::PowerLengthMismatch { expected, found } => write!(
                f,
                "power vector length {found} does not match block count {expected}"
            ),
            ThermalError::InvalidPower { block, value } => {
                write!(f, "invalid power {value} W for block {block}")
            }
            ThermalError::InvalidDuration { value } => {
                write!(f, "invalid duration or time step {value} s")
            }
            ThermalError::InvalidTrace { message } => {
                write!(f, "invalid power trace: {message}")
            }
            ThermalError::Solver(e) => write!(f, "linear solver failure: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ThermalError {
    fn from(e: LinalgError) -> Self {
        ThermalError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ThermalError::InvalidParameter {
            name: "die_thickness_m",
            value: -1.0,
        };
        assert!(e.to_string().contains("die_thickness_m"));

        let inner = LinalgError::Singular { pivot: 0 };
        let e: ThermalError = inner.into();
        assert!(e.to_string().contains("linear solver failure"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
