//! Piecewise-constant power traces: time-varying power for the transient
//! solvers.
//!
//! The paper's setting is offline — every test session dissipates constant
//! power from an ambient start — but the streaming service layered on top of
//! the reproduction wants DVFS ramps, periodic workloads and idle gaps. A
//! [`PowerTrace`] is the minimal representation that keeps the solvers exact:
//! an ordered sequence of `(PowerMap, duration)` phases, each integrated as a
//! constant-power interval, chained through the phase-boundary state.

use crate::{PowerMap, Result, ThermalError};

/// An ordered sequence of piecewise-constant power phases.
///
/// Every phase holds one [`PowerMap`] for a positive, finite duration; all
/// phases must cover the same number of blocks. A single-phase trace is
/// exactly a constant-power session — the solvers guarantee bit-identical
/// results for that case.
///
/// # Example
///
/// ```
/// use thermsched_thermal::{PowerMap, PowerTrace};
///
/// # fn main() -> Result<(), thermsched_thermal::ThermalError> {
/// let high = PowerMap::from_vec(vec![12.0, 0.0])?;
/// let idle = PowerMap::zeros(2);
/// let trace = PowerTrace::new(vec![(high, 0.5), (idle, 0.25)])?;
/// assert_eq!(trace.phase_count(), 2);
/// assert!((trace.total_duration() - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    phases: Vec<(PowerMap, f64)>,
}

impl PowerTrace {
    /// Builds a trace from `(power, duration)` phases.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidTrace`] if `phases` is empty.
    /// * [`ThermalError::InvalidDuration`] if any phase duration is
    ///   non-positive or non-finite.
    /// * [`ThermalError::PowerLengthMismatch`] if the phases disagree on the
    ///   block count.
    pub fn new(phases: Vec<(PowerMap, f64)>) -> Result<Self> {
        let Some(block_count) = phases.first().map(|(p, _)| p.block_count()) else {
            return Err(ThermalError::InvalidTrace {
                message: "a power trace needs at least one phase",
            });
        };
        for (power, duration) in &phases {
            if power.block_count() != block_count {
                return Err(ThermalError::PowerLengthMismatch {
                    expected: block_count,
                    found: power.block_count(),
                });
            }
            if !(*duration > 0.0 && duration.is_finite()) {
                return Err(ThermalError::InvalidDuration { value: *duration });
            }
        }
        Ok(PowerTrace { phases })
    }

    /// The single-phase trace equivalent to a constant-power session.
    ///
    /// # Errors
    ///
    /// See [`PowerTrace::new`].
    pub fn constant(power: PowerMap, duration: f64) -> Result<Self> {
        PowerTrace::new(vec![(power, duration)])
    }

    /// Borrows the `(power, duration)` phases in order.
    pub fn phases(&self) -> &[(PowerMap, f64)] {
        &self.phases
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Number of blocks every phase covers.
    pub fn block_count(&self) -> usize {
        self.phases[0].0.block_count()
    }

    /// Total duration over all phases in seconds.
    pub fn total_duration(&self) -> f64 {
        self.phases.iter().map(|(_, d)| d).sum()
    }

    /// The canonical form: consecutive phases whose power maps are
    /// bit-identical are merged into one phase with the summed duration.
    ///
    /// Solvers canonicalise before integrating, so a trace of `k` identical
    /// constant-power phases takes *exactly* the same code path — and yields
    /// bit-identical results — as one constant-power session of the total
    /// duration. Comparison is on exact bit patterns (not `==`) so that
    /// merging never changes the solve inputs.
    pub fn canonical(&self) -> PowerTrace {
        let mut merged: Vec<(PowerMap, f64)> = Vec::with_capacity(self.phases.len());
        for (power, duration) in &self.phases {
            match merged.last_mut() {
                Some((last, total)) if bit_identical(last, power) => *total += duration,
                _ => merged.push((power.clone(), *duration)),
            }
        }
        PowerTrace { phases: merged }
    }
}

/// Whether two power maps are equal as exact f64 bit patterns.
fn bit_identical(a: &PowerMap, b: &PowerMap) -> bool {
    a.block_count() == b.block_count()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_phases() {
        assert!(matches!(
            PowerTrace::new(vec![]),
            Err(ThermalError::InvalidTrace { .. })
        ));
        let p2 = PowerMap::zeros(2);
        let p3 = PowerMap::zeros(3);
        assert!(matches!(
            PowerTrace::new(vec![(p2.clone(), 1.0), (p3, 1.0)]),
            Err(ThermalError::PowerLengthMismatch { .. })
        ));
        assert!(matches!(
            PowerTrace::new(vec![(p2.clone(), 0.0)]),
            Err(ThermalError::InvalidDuration { .. })
        ));
        assert!(PowerTrace::new(vec![(p2, f64::NAN)]).is_err());
    }

    #[test]
    fn accessors_reflect_the_phases() {
        let high = PowerMap::from_vec(vec![10.0, 5.0]).unwrap();
        let low = PowerMap::from_vec(vec![2.0, 1.0]).unwrap();
        let trace = PowerTrace::new(vec![(high.clone(), 0.5), (low, 0.25)]).unwrap();
        assert_eq!(trace.phase_count(), 2);
        assert_eq!(trace.block_count(), 2);
        assert!((trace.total_duration() - 0.75).abs() < 1e-12);
        assert_eq!(trace.phases()[0].0, high);

        let single = PowerTrace::constant(high, 1.0).unwrap();
        assert_eq!(single.phase_count(), 1);
        assert_eq!(single.total_duration(), 1.0);
    }

    #[test]
    fn canonical_merges_identical_neighbours_only() {
        let a = PowerMap::from_vec(vec![4.0]).unwrap();
        let b = PowerMap::from_vec(vec![7.0]).unwrap();
        let trace = PowerTrace::new(vec![
            (a.clone(), 0.25),
            (a.clone(), 0.25),
            (b.clone(), 0.5),
            (a.clone(), 0.125),
        ])
        .unwrap();
        let canon = trace.canonical();
        assert_eq!(canon.phase_count(), 3);
        assert_eq!(canon.phases()[0].1, 0.5);
        assert_eq!(canon.phases()[1], (b, 0.5));
        assert_eq!(canon.phases()[2], (a, 0.125));
        assert_eq!(canon.total_duration(), trace.total_duration());
    }

    #[test]
    fn canonical_of_identical_phases_is_one_constant_phase() {
        let p = PowerMap::from_vec(vec![3.0, 0.0]).unwrap();
        let trace = PowerTrace::new(vec![(p.clone(), 0.25), (p.clone(), 0.25), (p, 0.25)]).unwrap();
        let canon = trace.canonical();
        assert_eq!(canon.phase_count(), 1);
        assert_eq!(canon.phases()[0].1, 0.75);
    }
}
