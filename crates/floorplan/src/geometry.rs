//! Axis-aligned rectangle primitive.

/// Absolute tolerance (in metres) below which coordinates are considered
/// equal. Floorplans are specified with millimetre-scale coordinates, so one
/// nanometre of slack comfortably absorbs floating-point noise without hiding
/// genuine gaps or overlaps.
pub const GEOMETRY_TOLERANCE: f64 = 1e-9;

/// An axis-aligned rectangle, defined by its lower-left corner, width and
/// height. All lengths are in metres.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::Rect;
///
/// let a = Rect::new(0.0, 0.0, 2.0, 1.0);
/// let b = Rect::new(2.0, 0.0, 1.0, 1.0);
/// assert_eq!(a.abutment_length(&b), 1.0);
/// assert_eq!(a.overlap_area(&b), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// X coordinate of the left edge (metres).
    pub x: f64,
    /// Y coordinate of the bottom edge (metres).
    pub y: f64,
    /// Width (metres).
    pub width: f64,
    /// Height (metres).
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// X coordinate of the right edge.
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Y coordinate of the top edge.
    pub fn top(&self) -> f64 {
        self.y + self.height
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Coordinates of the centre point `(x, y)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Euclidean distance between the centres of two rectangles.
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Length of the 1-D overlap of two intervals `[a0, a1]` and `[b0, b1]`.
    fn interval_overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
        (a1.min(b1) - a0.max(b0)).max(0.0)
    }

    /// Area of the intersection of two rectangles (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = Self::interval_overlap(self.x, self.right(), other.x, other.right());
        let h = Self::interval_overlap(self.y, self.top(), other.y, other.top());
        w * h
    }

    /// Length of the shared boundary between two *abutting* rectangles.
    ///
    /// Two rectangles abut when an edge of one coincides (within
    /// [`GEOMETRY_TOLERANCE`]) with an edge of the other and their extents
    /// overlap along that edge. Overlapping rectangles are not considered
    /// abutting and return `0.0`.
    pub fn abutment_length(&self, other: &Rect) -> f64 {
        // Vertical abutment (left/right edges touch): overlap in y.
        let y_overlap = Self::interval_overlap(self.y, self.top(), other.y, other.top());
        if y_overlap > GEOMETRY_TOLERANCE
            && ((self.right() - other.x).abs() < GEOMETRY_TOLERANCE
                || (other.right() - self.x).abs() < GEOMETRY_TOLERANCE)
        {
            return y_overlap;
        }
        // Horizontal abutment (top/bottom edges touch): overlap in x.
        let x_overlap = Self::interval_overlap(self.x, self.right(), other.x, other.right());
        if x_overlap > GEOMETRY_TOLERANCE
            && ((self.top() - other.y).abs() < GEOMETRY_TOLERANCE
                || (other.top() - self.y).abs() < GEOMETRY_TOLERANCE)
        {
            return x_overlap;
        }
        0.0
    }

    /// Returns `true` if the rectangle has positive, finite dimensions and a
    /// finite position.
    pub fn is_valid(&self) -> bool {
        self.width > 0.0
            && self.height > 0.0
            && self.width.is_finite()
            && self.height.is_finite()
            && self.x.is_finite()
            && self.y.is_finite()
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let top = self.top().max(other.top());
        Rect::new(x, y, right - x, top - y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.right(), 4.0);
        assert_eq!(r.top(), 6.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    fn overlap_area_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        // Touching rectangles do not overlap.
        let d = Rect::new(2.0, 0.0, 1.0, 2.0);
        assert_eq!(a.overlap_area(&d), 0.0);
    }

    #[test]
    fn abutment_vertical_and_horizontal() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let right = Rect::new(2.0, 1.0, 1.0, 3.0);
        assert_eq!(a.abutment_length(&right), 1.0);
        assert_eq!(right.abutment_length(&a), 1.0);

        let above = Rect::new(0.5, 2.0, 1.0, 1.0);
        assert_eq!(a.abutment_length(&above), 1.0);

        let corner_only = Rect::new(2.0, 2.0, 1.0, 1.0);
        assert_eq!(a.abutment_length(&corner_only), 0.0);

        let far = Rect::new(10.0, 10.0, 1.0, 1.0);
        assert_eq!(a.abutment_length(&far), 0.0);
    }

    #[test]
    fn overlapping_rectangles_are_not_abutting() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 0.0, 2.0, 2.0);
        assert_eq!(a.abutment_length(&b), 0.0);
        assert!(a.overlap_area(&b) > 0.0);
    }

    #[test]
    fn center_distance_is_symmetric() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(3.0, 4.0, 2.0, 2.0);
        assert_eq!(a.center_distance(&b), b.center_distance(&a));
        assert_eq!(a.center_distance(&b), 5.0);
    }

    #[test]
    fn validity_checks() {
        assert!(Rect::new(0.0, 0.0, 1.0, 1.0).is_valid());
        assert!(!Rect::new(0.0, 0.0, 0.0, 1.0).is_valid());
        assert!(!Rect::new(0.0, 0.0, -1.0, 1.0).is_valid());
        assert!(!Rect::new(f64::NAN, 0.0, 1.0, 1.0).is_valid());
        assert!(!Rect::new(0.0, 0.0, f64::INFINITY, 1.0).is_valid());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 3.0, 1.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 3.0, 4.0));
    }
}
