//! The [`Floorplan`] container.

use std::collections::HashMap;
use std::fmt;

use crate::{AdjacencyGraph, Block, FloorplanError, Rect, Result};

/// Index of a block within a [`Floorplan`]. Blocks keep their insertion order,
/// so a `BlockId` is stable for the lifetime of the floorplan.
pub type BlockId = usize;

/// A validated collection of non-overlapping blocks on a die.
///
/// Construct a floorplan through [`crate::FloorplanBuilder`], [`Floorplan::new`]
/// or the [`crate::parse_flp`] parser; all three run the same validation
/// (non-empty, unique names, positive dimensions, no overlaps).
///
/// # Example
///
/// ```
/// use thermsched_floorplan::{Block, Floorplan};
///
/// # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
/// let fp = Floorplan::new(vec![
///     Block::from_mm("a", 2.0, 2.0, 0.0, 0.0),
///     Block::from_mm("b", 2.0, 2.0, 2.0, 0.0),
/// ])?;
/// assert_eq!(fp.block_count(), 2);
/// assert_eq!(fp.index_of("b"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    blocks: Vec<Block>,
    name_index: HashMap<String, BlockId>,
    bounds: Rect,
}

impl Floorplan {
    /// Creates a floorplan from a list of blocks, validating it.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::EmptyFloorplan`] if `blocks` is empty.
    /// * [`FloorplanError::InvalidDimensions`] / [`FloorplanError::InvalidPosition`]
    ///   for malformed blocks.
    /// * [`FloorplanError::DuplicateName`] if two blocks share a name.
    /// * [`FloorplanError::OverlappingBlocks`] if any two blocks overlap by
    ///   more than the geometric tolerance.
    pub fn new(blocks: Vec<Block>) -> Result<Self> {
        if blocks.is_empty() {
            return Err(FloorplanError::EmptyFloorplan);
        }
        let mut name_index = HashMap::with_capacity(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            if !(b.width() > 0.0
                && b.height() > 0.0
                && b.width().is_finite()
                && b.height().is_finite())
            {
                return Err(FloorplanError::InvalidDimensions {
                    block: b.name().to_owned(),
                    width: b.width(),
                    height: b.height(),
                });
            }
            if !(b.rect().x.is_finite() && b.rect().y.is_finite()) {
                return Err(FloorplanError::InvalidPosition {
                    block: b.name().to_owned(),
                });
            }
            if name_index.insert(b.name().to_owned(), i).is_some() {
                return Err(FloorplanError::DuplicateName {
                    name: b.name().to_owned(),
                });
            }
        }
        // Overlap check. The area tolerance scales with the smaller block so
        // that sliver overlaps from floating-point noise are not rejected.
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let area = blocks[i].rect().overlap_area(blocks[j].rect());
                let min_area = blocks[i].area().min(blocks[j].area());
                if area > 1e-9 * min_area {
                    return Err(FloorplanError::OverlappingBlocks {
                        first: blocks[i].name().to_owned(),
                        second: blocks[j].name().to_owned(),
                        area,
                    });
                }
            }
        }
        let bounds = blocks
            .iter()
            .skip(1)
            .fold(*blocks[0].rect(), |acc, b| acc.union(b.rect()));
        Ok(Floorplan {
            blocks,
            name_index,
            bounds,
        })
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Borrows the blocks in insertion order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate()
    }

    /// Block with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::BlockIndexOutOfRange`] if `id` is out of range.
    pub fn block(&self, id: BlockId) -> Result<&Block> {
        self.blocks
            .get(id)
            .ok_or(FloorplanError::BlockIndexOutOfRange {
                index: id,
                count: self.blocks.len(),
            })
    }

    /// Block with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::UnknownBlock`] if no block has that name.
    pub fn block_by_name(&self, name: &str) -> Result<&Block> {
        self.index_of(name)
            .map(|i| &self.blocks[i])
            .ok_or_else(|| FloorplanError::UnknownBlock {
                name: name.to_owned(),
            })
    }

    /// Id of the block with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<BlockId> {
        self.name_index.get(name).copied()
    }

    /// Bounding box of all blocks (the die outline), in metres.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Total area covered by blocks, in square metres.
    pub fn total_block_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// Fraction of the bounding box covered by blocks, in `[0, 1]`.
    ///
    /// Library floorplans tile their die exactly, so this is `~1.0` for them;
    /// values well below 1 indicate dead space between blocks, which weakens
    /// the lateral heat paths assumed by the session thermal model.
    pub fn coverage(&self) -> f64 {
        let die = self.bounds.area();
        if die <= 0.0 {
            0.0
        } else {
            (self.total_block_area() / die).min(1.0)
        }
    }

    /// Computes the adjacency graph (shared edges and boundary exposure).
    pub fn adjacency(&self) -> AdjacencyGraph {
        AdjacencyGraph::from_floorplan(self)
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Floorplan: {} blocks, die {:.1} x {:.1} mm",
            self.blocks.len(),
            self.bounds.width * 1e3,
            self.bounds.height * 1e3
        )?;
        for b in &self.blocks {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blocks() -> Vec<Block> {
        vec![
            Block::from_mm("a", 2.0, 2.0, 0.0, 0.0),
            Block::from_mm("b", 2.0, 2.0, 2.0, 0.0),
        ]
    }

    #[test]
    fn builds_valid_floorplan() {
        let fp = Floorplan::new(two_blocks()).unwrap();
        assert_eq!(fp.block_count(), 2);
        assert_eq!(fp.index_of("a"), Some(0));
        assert_eq!(fp.block(1).unwrap().name(), "b");
        assert!(fp.block(2).is_err());
        assert!(fp.block_by_name("missing").is_err());
        assert_eq!(fp.block_by_name("b").unwrap().name(), "b");
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Floorplan::new(vec![]),
            Err(FloorplanError::EmptyFloorplan)
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let blocks = vec![
            Block::from_mm("x", 1.0, 1.0, 0.0, 0.0),
            Block::from_mm("x", 1.0, 1.0, 5.0, 5.0),
        ];
        assert!(matches!(
            Floorplan::new(blocks),
            Err(FloorplanError::DuplicateName { .. })
        ));
    }

    #[test]
    fn rejects_overlap() {
        let blocks = vec![
            Block::from_mm("a", 2.0, 2.0, 0.0, 0.0),
            Block::from_mm("b", 2.0, 2.0, 1.0, 0.0),
        ];
        assert!(matches!(
            Floorplan::new(blocks),
            Err(FloorplanError::OverlappingBlocks { .. })
        ));
    }

    #[test]
    fn rejects_bad_dimensions_and_positions() {
        assert!(matches!(
            Floorplan::new(vec![Block::from_mm("z", 0.0, 1.0, 0.0, 0.0)]),
            Err(FloorplanError::InvalidDimensions { .. })
        ));
        assert!(matches!(
            Floorplan::new(vec![Block::new("z", 1.0, 1.0, f64::NAN, 0.0)]),
            Err(FloorplanError::InvalidPosition { .. })
        ));
    }

    #[test]
    fn bounds_and_coverage() {
        let fp = Floorplan::new(two_blocks()).unwrap();
        let b = fp.bounds();
        assert!((b.width - 0.004).abs() < 1e-12);
        assert!((b.height - 0.002).abs() < 1e-12);
        assert!((fp.coverage() - 1.0).abs() < 1e-9);
        assert!((fp.total_block_area() - 8.0e-6).abs() < 1e-12);
    }

    #[test]
    fn touching_blocks_are_not_overlapping() {
        // Exact abutment must be accepted.
        let fp = Floorplan::new(two_blocks());
        assert!(fp.is_ok());
    }

    #[test]
    fn display_lists_blocks() {
        let fp = Floorplan::new(two_blocks()).unwrap();
        let s = format!("{fp}");
        assert!(s.contains("2 blocks"));
        assert!(s.contains("a ["));
    }

    #[test]
    fn iter_preserves_order() {
        let fp = Floorplan::new(two_blocks()).unwrap();
        let names: Vec<&str> = fp.iter().map(|(_, b)| b.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
