//! A named rectangular block (core) on the die.

use std::fmt;

use crate::Rect;

/// A named rectangular block of the floorplan — a core, cache array or other
/// layout unit that can be tested and heats up as a whole.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::Block;
///
/// let b = Block::from_mm("Icache", 5.0, 3.0, 3.0, 6.0);
/// assert_eq!(b.name(), "Icache");
/// assert!((b.area() - 15.0e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    rect: Rect,
}

impl Block {
    /// Creates a block from metre units: `width`/`height` are the block size,
    /// `x`/`y` locate the lower-left corner.
    pub fn new(name: impl Into<String>, width: f64, height: f64, x: f64, y: f64) -> Self {
        Block {
            name: name.into(),
            rect: Rect::new(x, y, width, height),
        }
    }

    /// Creates a block from millimetre units (the natural unit for
    /// floorplans); stored internally in metres.
    pub fn from_mm(
        name: impl Into<String>,
        width_mm: f64,
        height_mm: f64,
        x_mm: f64,
        y_mm: f64,
    ) -> Self {
        Block::new(
            name,
            width_mm * 1e-3,
            height_mm * 1e-3,
            x_mm * 1e-3,
            y_mm * 1e-3,
        )
    }

    /// Creates a block directly from a [`Rect`] (metres).
    pub fn from_rect(name: impl Into<String>, rect: Rect) -> Self {
        Block {
            name: name.into(),
            rect,
        }
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Geometry of the block (metres).
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.rect.width
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.rect.height
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.rect.area()
    }

    /// Area in square millimetres (convenience for reports).
    pub fn area_mm2(&self) -> f64 {
        self.area() * 1e6
    }

    /// Centre point `(x, y)` in metres.
    pub fn center(&self) -> (f64, f64) {
        self.rect.center()
    }

    /// Returns `true` if the block has positive, finite dimensions and a
    /// finite position.
    pub fn is_valid(&self) -> bool {
        !self.name.is_empty() && self.rect.is_valid()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:.2} x {:.2} mm at ({:.2}, {:.2}) mm]",
            self.name,
            self.rect.width * 1e3,
            self.rect.height * 1e3,
            self.rect.x * 1e3,
            self.rect.y * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_in_metres_and_millimetres_agree() {
        let a = Block::new("a", 0.004, 0.002, 0.001, 0.003);
        let b = Block::from_mm("a", 4.0, 2.0, 1.0, 3.0);
        assert!((a.width() - b.width()).abs() < 1e-15);
        assert!((a.height() - b.height()).abs() < 1e-15);
        assert!((a.rect().x - b.rect().x).abs() < 1e-15);
        assert!((a.rect().y - b.rect().y).abs() < 1e-15);
    }

    #[test]
    fn accessors() {
        let b = Block::from_mm("core0", 2.0, 3.0, 1.0, 1.0);
        assert_eq!(b.name(), "core0");
        assert!((b.area_mm2() - 6.0).abs() < 1e-9);
        let (cx, cy) = b.center();
        assert!((cx - 0.002).abs() < 1e-12);
        assert!((cy - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(Block::from_mm("ok", 1.0, 1.0, 0.0, 0.0).is_valid());
        assert!(!Block::from_mm("", 1.0, 1.0, 0.0, 0.0).is_valid());
        assert!(!Block::from_mm("bad", 0.0, 1.0, 0.0, 0.0).is_valid());
    }

    #[test]
    fn display_uses_millimetres() {
        let b = Block::from_mm("cpu", 4.0, 2.0, 0.0, 0.0);
        let s = format!("{b}");
        assert!(s.contains("cpu"));
        assert!(s.contains("4.00 x 2.00 mm"));
    }

    #[test]
    fn from_rect_wraps_geometry() {
        let r = Rect::new(0.0, 0.0, 0.001, 0.001);
        let b = Block::from_rect("x", r);
        assert_eq!(*b.rect(), r);
    }
}
