//! Floorplan geometry for the `thermsched` workspace.
//!
//! A [`Floorplan`] is a collection of rectangular [`Block`]s placed on a die.
//! This crate provides:
//!
//! * geometric primitives ([`Rect`]) with the overlap/abutment predicates the
//!   thermal model needs,
//! * adjacency extraction ([`AdjacencyGraph`]): which blocks share an edge,
//!   how long the shared edge is, and how much of each block's perimeter is
//!   exposed on each side of the die boundary,
//! * a parser and writer for the HotSpot-style `.flp` text format
//!   ([`parse_flp`], [`to_flp`]),
//! * a [`FloorplanBuilder`] for programmatic construction, and
//! * a library of ready-made floorplans ([`library`]) including the
//!   Alpha-21364-like 15-block floorplan used by the DATE 2005 experiments and
//!   the hypothetical 7-core system of the paper's Figure 1.
//!
//! Lengths are SI metres throughout; helpers taking millimetres are provided
//! because floorplans are naturally specified in mm.
//!
//! # Example
//!
//! ```
//! use thermsched_floorplan::{Block, FloorplanBuilder};
//!
//! # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
//! let fp = FloorplanBuilder::new()
//!     .add_block(Block::from_mm("cpu", 4.0, 4.0, 0.0, 0.0))
//!     .add_block(Block::from_mm("cache", 4.0, 4.0, 4.0, 0.0))
//!     .build()?;
//! let adj = fp.adjacency();
//! assert!(adj.shared_edge_length(0, 1) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod block;
mod builder;
mod error;
mod floorplan;
mod geometry;
pub mod library;
mod parser;
mod wire;

pub use adjacency::{AdjacencyGraph, BoundaryExposure, SharedEdge, Side};
pub use block::Block;
pub use builder::FloorplanBuilder;
pub use error::FloorplanError;
pub use floorplan::{BlockId, Floorplan};
pub use geometry::{Rect, GEOMETRY_TOLERANCE};
pub use parser::{parse_flp, to_flp};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = FloorplanError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    #[test]
    fn library_floorplans_are_valid() {
        assert_eq!(crate::library::alpha21364().block_count(), 15);
        assert_eq!(crate::library::figure1_system().block_count(), 7);
    }
}
