//! Programmatic floorplan construction.

use crate::{Block, Floorplan, Result};

/// Builder for [`Floorplan`] values.
///
/// The builder collects blocks and validates them all at once in
/// [`FloorplanBuilder::build`]; this gives better error messages than
/// validating incrementally, because overlap errors report both offending
/// blocks by name.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::{Block, FloorplanBuilder};
///
/// # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
/// let fp = FloorplanBuilder::new()
///     .add_block(Block::from_mm("cpu", 4.0, 4.0, 0.0, 0.0))
///     .add_block_mm("l2", 4.0, 4.0, 4.0, 0.0)
///     .build()?;
/// assert_eq!(fp.block_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FloorplanBuilder {
    blocks: Vec<Block>,
}

impl FloorplanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-constructed block.
    #[must_use]
    pub fn add_block(mut self, block: Block) -> Self {
        self.blocks.push(block);
        self
    }

    /// Adds a block specified in millimetres.
    #[must_use]
    pub fn add_block_mm(
        self,
        name: impl Into<String>,
        width_mm: f64,
        height_mm: f64,
        x_mm: f64,
        y_mm: f64,
    ) -> Self {
        self.add_block(Block::from_mm(name, width_mm, height_mm, x_mm, y_mm))
    }

    /// Adds every block from an iterator.
    #[must_use]
    pub fn add_blocks<I: IntoIterator<Item = Block>>(mut self, blocks: I) -> Self {
        self.blocks.extend(blocks);
        self
    }

    /// Number of blocks added so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if no blocks have been added.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Validates the collected blocks and builds the floorplan.
    ///
    /// # Errors
    ///
    /// Propagates every validation error of [`Floorplan::new`].
    pub fn build(self) -> Result<Floorplan> {
        Floorplan::new(self.blocks)
    }
}

impl Extend<Block> for FloorplanBuilder {
    fn extend<T: IntoIterator<Item = Block>>(&mut self, iter: T) {
        self.blocks.extend(iter);
    }
}

impl FromIterator<Block> for FloorplanBuilder {
    fn from_iter<T: IntoIterator<Item = Block>>(iter: T) -> Self {
        FloorplanBuilder {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FloorplanError;

    #[test]
    fn builds_from_mixed_methods() {
        let fp = FloorplanBuilder::new()
            .add_block(Block::from_mm("a", 1.0, 1.0, 0.0, 0.0))
            .add_block_mm("b", 1.0, 1.0, 1.0, 0.0)
            .add_blocks(vec![Block::from_mm("c", 2.0, 1.0, 0.0, 1.0)])
            .build()
            .unwrap();
        assert_eq!(fp.block_count(), 3);
    }

    #[test]
    fn empty_builder_fails_to_build() {
        let b = FloorplanBuilder::new();
        assert!(b.is_empty());
        assert!(matches!(b.build(), Err(FloorplanError::EmptyFloorplan)));
    }

    #[test]
    fn len_tracks_additions() {
        let b = FloorplanBuilder::new().add_block_mm("a", 1.0, 1.0, 0.0, 0.0);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut b: FloorplanBuilder = vec![Block::from_mm("a", 1.0, 1.0, 0.0, 0.0)]
            .into_iter()
            .collect();
        b.extend(vec![Block::from_mm("b", 1.0, 1.0, 1.0, 0.0)]);
        assert_eq!(b.len(), 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn validation_errors_propagate() {
        let result = FloorplanBuilder::new()
            .add_block_mm("a", 2.0, 2.0, 0.0, 0.0)
            .add_block_mm("b", 2.0, 2.0, 1.0, 1.0)
            .build();
        assert!(matches!(
            result,
            Err(FloorplanError::OverlappingBlocks { .. })
        ));
    }
}
