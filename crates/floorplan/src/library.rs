//! Ready-made floorplans used by the paper's experiments and by tests.
//!
//! * [`alpha21364`] — a 15-block floorplan with the structural flavour of the
//!   Compaq Alpha 21364 (ev6 core plus surrounding L2) used by the DATE 2005
//!   experiments. The exact block coordinates of the HotSpot release are not
//!   reproduced; what matters for the paper's results is the *spread of block
//!   areas* (large cool cache arrays next to small hot datapath blocks), which
//!   this floorplan preserves. See DESIGN.md for the substitution note.
//! * [`figure1_system`] — the hypothetical 7-core SoC of the paper's Figure 1,
//!   where every core dissipates the same test power but core areas differ by
//!   4×, so power densities differ by 4×.
//! * [`uniform_grid`] — synthetic n×m grids for scaling studies and property
//!   tests.

use crate::{Block, Floorplan};

/// Minimum and maximum of a value set, or `None` when it is empty.
///
/// The library's spread checks (block areas, power densities) used to fold
/// with `f64::INFINITY` / `0.0` seeds, which silently produce an
/// infinite-ratio "spread" for an empty slice; this helper makes the empty
/// case unrepresentable instead of sentinel-valued.
pub fn value_spread(values: impl IntoIterator<Item = f64>) -> Option<(f64, f64)> {
    values.into_iter().fold(None, |acc, v| match acc {
        None => Some((v, v)),
        Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
    })
}

/// The 15-block Alpha-21364-like floorplan used by the paper's experimental
/// evaluation (Section 4).
///
/// The die is 16 mm × 16 mm and is exactly tiled: three large L2 cache banks
/// wrap the bottom, left and right edges, and the centre/top of the die holds
/// twelve small architectural blocks (caches, integer and floating-point
/// datapath, branch predictor, TLB, load/store queue). Block areas span
/// roughly 4 mm² to 96 mm², giving the 1–2 orders of magnitude of power
/// density variation that drives the paper's observations.
///
/// # Example
///
/// ```
/// let fp = thermsched_floorplan::library::alpha21364();
/// assert_eq!(fp.block_count(), 15);
/// assert!(fp.coverage() > 0.999);
/// ```
pub fn alpha21364() -> Floorplan {
    // All coordinates in millimetres; die is 16 x 16 mm.
    let blocks = vec![
        // Large cache banks around the periphery.
        Block::from_mm("L2_bottom", 16.0, 6.0, 0.0, 0.0),
        Block::from_mm("L2_left", 3.0, 10.0, 0.0, 6.0),
        Block::from_mm("L2_right", 3.0, 10.0, 13.0, 6.0),
        // First row above the bottom L2: level-1 caches.
        Block::from_mm("Icache", 5.0, 3.0, 3.0, 6.0),
        Block::from_mm("Dcache", 5.0, 3.0, 8.0, 6.0),
        // Second row: load/store queue, integer execution, integer registers.
        Block::from_mm("LdStQ", 3.0, 2.5, 3.0, 9.0),
        Block::from_mm("IntExec", 4.0, 2.5, 6.0, 9.0),
        Block::from_mm("IntReg", 3.0, 2.5, 10.0, 9.0),
        // Third row: integer map/queue, branch predictor, data TLB.
        Block::from_mm("IntMap", 3.0, 2.0, 3.0, 11.5),
        Block::from_mm("IntQ", 3.0, 2.0, 6.0, 11.5),
        Block::from_mm("Bpred", 2.0, 2.0, 9.0, 11.5),
        Block::from_mm("DTB", 2.0, 2.0, 11.0, 11.5),
        // Fourth row: floating-point units.
        Block::from_mm("FPAdd", 4.0, 2.5, 3.0, 13.5),
        Block::from_mm("FPMul", 3.0, 2.5, 7.0, 13.5),
        Block::from_mm("FPReg", 3.0, 2.5, 10.0, 13.5),
    ];
    Floorplan::new(blocks).expect("alpha21364 library floorplan is valid by construction")
}

/// The hypothetical 7-core SoC of the paper's Figure 1.
///
/// The die is 20 mm × 20 mm and is exactly tiled. Core `C1` is a tall block
/// along the west edge; cores `C5`–`C7` are large 80 mm² blocks wrapping the
/// south, east and north periphery (well coupled to the die boundary and to
/// the large passive `C1`); cores `C2`–`C3` are small 20 mm² blocks buried in
/// the middle of the die with `C4` tucked into the north-east corner. With
/// equal test power on every core, the power density of `C2`–`C4` is 4× that
/// of `C5`–`C7`, which is exactly the situation the paper uses to show that a
/// chip-level power constraint cannot distinguish a safe session from an
/// overheating one: testing the interior small cores together concentrates
/// heat, while testing the peripheral large cores together does not.
///
/// # Example
///
/// ```
/// let fp = thermsched_floorplan::library::figure1_system();
/// let c2 = fp.block_by_name("C2").unwrap();
/// let c5 = fp.block_by_name("C5").unwrap();
/// assert!((c5.area() / c2.area() - 4.0).abs() < 1e-9);
/// ```
pub fn figure1_system() -> Floorplan {
    let blocks = vec![
        Block::from_mm("C1", 5.0, 20.0, 0.0, 0.0),
        Block::from_mm("C2", 5.0, 4.0, 5.0, 8.0),
        Block::from_mm("C3", 5.0, 4.0, 10.0, 8.0),
        Block::from_mm("C4", 5.0, 4.0, 15.0, 16.0),
        Block::from_mm("C5", 5.0, 16.0, 15.0, 0.0),
        Block::from_mm("C6", 10.0, 8.0, 5.0, 12.0),
        Block::from_mm("C7", 10.0, 8.0, 5.0, 0.0),
    ];
    Floorplan::new(blocks).expect("figure1 library floorplan is valid by construction")
}

/// A synthetic `nx × ny` grid of identical square blocks, each
/// `block_mm` × `block_mm` millimetres, named `b<x>_<y>`.
///
/// Useful for scaling benchmarks and property-based tests where a regular,
/// easily-reasoned-about adjacency structure is wanted.
///
/// # Panics
///
/// Panics if `nx` or `ny` is zero or `block_mm` is not strictly positive.
///
/// # Example
///
/// ```
/// let fp = thermsched_floorplan::library::uniform_grid(4, 3, 2.0);
/// assert_eq!(fp.block_count(), 12);
/// ```
pub fn uniform_grid(nx: usize, ny: usize, block_mm: f64) -> Floorplan {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    assert!(
        block_mm > 0.0 && block_mm.is_finite(),
        "block size must be positive"
    );
    let mut blocks = Vec::with_capacity(nx * ny);
    for ix in 0..nx {
        for iy in 0..ny {
            blocks.push(Block::from_mm(
                format!("b{ix}_{iy}"),
                block_mm,
                block_mm,
                ix as f64 * block_mm,
                iy as f64 * block_mm,
            ));
        }
    }
    Floorplan::new(blocks).expect("uniform grid floorplan is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha21364_is_a_valid_fully_tiled_15_block_die() {
        let fp = alpha21364();
        assert_eq!(fp.block_count(), 15);
        let b = fp.bounds();
        assert!((b.width - 16e-3).abs() < 1e-9);
        assert!((b.height - 16e-3).abs() < 1e-9);
        // Exact tiling: block areas sum to the die area.
        assert!((fp.coverage() - 1.0).abs() < 1e-9);
        // Every block has a lateral escape path.
        assert!(fp.adjacency().all_blocks_have_lateral_paths());
    }

    #[test]
    fn alpha21364_has_wide_area_spread() {
        let fp = alpha21364();
        let areas = fp.blocks().iter().map(|b| b.area_mm2());
        let (min, max) = value_spread(areas).expect("floorplan has blocks");
        // Paper relies on a large power-density spread; area spread of >10x.
        assert!(max / min > 10.0, "area spread too small: {min} .. {max}");
    }

    #[test]
    fn value_spread_of_an_empty_set_is_none_not_an_infinite_sentinel() {
        // Regression: the old INFINITY/0.0 fold seeds turned an empty slice
        // into an infinite spread that vacuously passed ratio checks.
        assert_eq!(value_spread([]), None);
        assert_eq!(value_spread([2.5]), Some((2.5, 2.5)));
        assert_eq!(value_spread([3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
    }

    #[test]
    fn alpha21364_block_names_are_the_expected_architectural_units() {
        let fp = alpha21364();
        for name in [
            "L2_bottom",
            "L2_left",
            "L2_right",
            "Icache",
            "Dcache",
            "LdStQ",
            "IntExec",
            "IntReg",
            "IntMap",
            "IntQ",
            "Bpred",
            "DTB",
            "FPAdd",
            "FPMul",
            "FPReg",
        ] {
            assert!(fp.index_of(name).is_some(), "missing block {name}");
        }
    }

    #[test]
    fn figure1_matches_paper_power_density_ratio() {
        let fp = figure1_system();
        assert_eq!(fp.block_count(), 7);
        assert!((fp.coverage() - 1.0).abs() < 1e-6);
        let small = fp.block_by_name("C2").unwrap().area();
        let large = fp.block_by_name("C5").unwrap().area();
        assert!((large / small - 4.0).abs() < 1e-6);
        // C2..C4 identical, C5..C7 identical.
        for n in ["C3", "C4"] {
            assert!((fp.block_by_name(n).unwrap().area() - small).abs() < 1e-12);
        }
        for n in ["C6", "C7"] {
            assert!((fp.block_by_name(n).unwrap().area() - large).abs() < 1e-9);
        }
    }

    #[test]
    fn figure1_small_cores_are_interior_and_clustered() {
        // C2 and C3 abut each other in the middle of the die (no boundary
        // exposure at all), so testing them together concentrates heat; the
        // large cores all touch the die boundary.
        let fp = figure1_system();
        let adj = fp.adjacency();
        let c2 = fp.index_of("C2").unwrap();
        let c3 = fp.index_of("C3").unwrap();
        assert!(adj.shared_edge_length(c2, c3) > 0.0);
        assert_eq!(adj.boundary_exposure(c2).total(), 0.0);
        assert_eq!(adj.boundary_exposure(c3).total(), 0.0);
        for name in ["C5", "C6", "C7"] {
            let id = fp.index_of(name).unwrap();
            assert!(adj.boundary_exposure(id).total() > 0.0);
        }
    }

    #[test]
    fn uniform_grid_shapes() {
        let fp = uniform_grid(3, 2, 1.5);
        assert_eq!(fp.block_count(), 6);
        assert!((fp.bounds().width - 4.5e-3).abs() < 1e-9);
        assert!((fp.bounds().height - 3.0e-3).abs() < 1e-9);
        assert!((fp.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn uniform_grid_rejects_zero_dimension() {
        let _ = uniform_grid(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn uniform_grid_rejects_zero_block() {
        let _ = uniform_grid(2, 2, 0.0);
    }
}
