//! Error type for floorplan construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, validating or parsing floorplans.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A block has a non-positive or non-finite width/height.
    InvalidDimensions {
        /// Name of the offending block.
        block: String,
        /// Width that was supplied (metres).
        width: f64,
        /// Height that was supplied (metres).
        height: f64,
    },
    /// A block has a non-finite position.
    InvalidPosition {
        /// Name of the offending block.
        block: String,
    },
    /// Two blocks overlap by more than the geometric tolerance.
    OverlappingBlocks {
        /// Name of the first block.
        first: String,
        /// Name of the second block.
        second: String,
        /// Overlap area in square metres.
        area: f64,
    },
    /// Two blocks share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The floorplan contains no blocks.
    EmptyFloorplan,
    /// A block name was looked up but does not exist.
    UnknownBlock {
        /// The name that was looked up.
        name: String,
    },
    /// A block index was out of range.
    BlockIndexOutOfRange {
        /// The index that was supplied.
        index: usize,
        /// Number of blocks in the floorplan.
        count: usize,
    },
    /// A line of an `.flp` file could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::InvalidDimensions {
                block,
                width,
                height,
            } => write!(
                f,
                "block '{block}' has invalid dimensions {width} x {height} m"
            ),
            FloorplanError::InvalidPosition { block } => {
                write!(f, "block '{block}' has a non-finite position")
            }
            FloorplanError::OverlappingBlocks {
                first,
                second,
                area,
            } => write!(
                f,
                "blocks '{first}' and '{second}' overlap by {area:.3e} m^2"
            ),
            FloorplanError::DuplicateName { name } => {
                write!(f, "duplicate block name '{name}'")
            }
            FloorplanError::EmptyFloorplan => write!(f, "floorplan contains no blocks"),
            FloorplanError::UnknownBlock { name } => write!(f, "unknown block '{name}'"),
            FloorplanError::BlockIndexOutOfRange { index, count } => write!(
                f,
                "block index {index} out of range for floorplan with {count} blocks"
            ),
            FloorplanError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FloorplanError::DuplicateName { name: "cpu".into() };
        assert_eq!(e.to_string(), "duplicate block name 'cpu'");
        let e = FloorplanError::ParseError {
            line: 3,
            message: "expected 5 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FloorplanError>();
    }
}
