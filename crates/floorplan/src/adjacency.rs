//! Adjacency extraction: shared edges between blocks and exposure of blocks
//! on the die boundary.
//!
//! The test-session thermal model of the DATE 2005 paper needs, for every
//! core, the set of *lateral heat-escape paths*: edges shared with other
//! blocks and edges lying on the die boundary (the paper's `R_{2,N}`,
//! `R_{4,W}`, `R_{5,S}` resistances in Figures 3–4). This module computes the
//! underlying geometry once so that both the compact thermal simulator and
//! the scheduler's session model can derive resistances from it.

use crate::{BlockId, Floorplan, GEOMETRY_TOLERANCE};

/// One side of the die boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Top of the die (maximum y).
    North,
    /// Bottom of the die (minimum y).
    South,
    /// Right of the die (maximum x).
    East,
    /// Left of the die (minimum x).
    West,
}

impl Side {
    /// All four sides, in a fixed order.
    pub const ALL: [Side; 4] = [Side::North, Side::South, Side::East, Side::West];
}

/// A shared edge between two blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedEdge {
    /// First block (always the smaller id).
    pub a: BlockId,
    /// Second block (always the larger id).
    pub b: BlockId,
    /// Length of the shared edge in metres.
    pub length: f64,
    /// Distance between the two block centres in metres.
    pub center_distance: f64,
}

/// Exposure of a single block on the die boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoundaryExposure {
    /// Length of the block's edge lying on the north die boundary (metres).
    pub north: f64,
    /// Length on the south boundary (metres).
    pub south: f64,
    /// Length on the east boundary (metres).
    pub east: f64,
    /// Length on the west boundary (metres).
    pub west: f64,
}

impl BoundaryExposure {
    /// Total boundary length over all four sides (metres).
    pub fn total(&self) -> f64 {
        self.north + self.south + self.east + self.west
    }

    /// Exposure on one side.
    pub fn on_side(&self, side: Side) -> f64 {
        match side {
            Side::North => self.north,
            Side::South => self.south,
            Side::East => self.east,
            Side::West => self.west,
        }
    }
}

/// Adjacency information for a whole floorplan: all shared edges plus the
/// per-block boundary exposure.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::{Block, Floorplan};
///
/// # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
/// let fp = Floorplan::new(vec![
///     Block::from_mm("a", 2.0, 2.0, 0.0, 0.0),
///     Block::from_mm("b", 2.0, 2.0, 2.0, 0.0),
/// ])?;
/// let adj = fp.adjacency();
/// assert_eq!(adj.neighbors(0), vec![1]);
/// assert!(adj.boundary_exposure(0).west > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyGraph {
    block_count: usize,
    edges: Vec<SharedEdge>,
    boundary: Vec<BoundaryExposure>,
}

impl AdjacencyGraph {
    /// Computes the adjacency graph of a floorplan.
    pub fn from_floorplan(fp: &Floorplan) -> Self {
        let n = fp.block_count();
        let bounds = fp.bounds();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let ri = fp.blocks()[i].rect();
                let rj = fp.blocks()[j].rect();
                let length = ri.abutment_length(rj);
                if length > GEOMETRY_TOLERANCE {
                    edges.push(SharedEdge {
                        a: i,
                        b: j,
                        length,
                        center_distance: ri.center_distance(rj),
                    });
                }
            }
        }
        let mut boundary = Vec::with_capacity(n);
        for b in fp.blocks() {
            let r = b.rect();
            let mut e = BoundaryExposure::default();
            if (r.top() - bounds.top()).abs() < GEOMETRY_TOLERANCE {
                e.north = r.width;
            }
            if (r.y - bounds.y).abs() < GEOMETRY_TOLERANCE {
                e.south = r.width;
            }
            if (r.right() - bounds.right()).abs() < GEOMETRY_TOLERANCE {
                e.east = r.height;
            }
            if (r.x - bounds.x).abs() < GEOMETRY_TOLERANCE {
                e.west = r.height;
            }
            boundary.push(e);
        }
        AdjacencyGraph {
            block_count: n,
            edges,
            boundary,
        }
    }

    /// Number of blocks the graph was built over.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// All shared edges.
    pub fn edges(&self) -> &[SharedEdge] {
        &self.edges
    }

    /// Ids of the blocks adjacent to `id`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: BlockId) -> Vec<BlockId> {
        assert!(id < self.block_count, "block id out of range");
        let mut out: Vec<BlockId> = self
            .edges
            .iter()
            .filter_map(|e| {
                if e.a == id {
                    Some(e.b)
                } else if e.b == id {
                    Some(e.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Length of the edge shared by blocks `a` and `b` (zero if not adjacent).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn shared_edge_length(&self, a: BlockId, b: BlockId) -> f64 {
        assert!(
            a < self.block_count && b < self.block_count,
            "block id out of range"
        );
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.edges
            .iter()
            .find(|e| e.a == lo && e.b == hi)
            .map(|e| e.length)
            .unwrap_or(0.0)
    }

    /// The shared edge record between `a` and `b`, if they abut.
    pub fn edge_between(&self, a: BlockId, b: BlockId) -> Option<&SharedEdge> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.edges.iter().find(|e| e.a == lo && e.b == hi)
    }

    /// Boundary exposure of block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn boundary_exposure(&self, id: BlockId) -> BoundaryExposure {
        assert!(id < self.block_count, "block id out of range");
        self.boundary[id]
    }

    /// Returns `true` if every block has at least one lateral heat path
    /// (a neighbour or some boundary exposure). Isolated blocks would have an
    /// infinite equivalent lateral resistance in the session model.
    pub fn all_blocks_have_lateral_paths(&self) -> bool {
        (0..self.block_count)
            .all(|i| !self.neighbors(i).is_empty() || self.boundary[i].total() > GEOMETRY_TOLERANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Floorplan};

    /// 2 x 2 grid of 1 mm blocks.
    fn grid2x2() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("b00", 1.0, 1.0, 0.0, 0.0),
            Block::from_mm("b10", 1.0, 1.0, 1.0, 0.0),
            Block::from_mm("b01", 1.0, 1.0, 0.0, 1.0),
            Block::from_mm("b11", 1.0, 1.0, 1.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn grid_adjacency_edges() {
        let adj = grid2x2().adjacency();
        // 4 internal edges in a 2x2 grid (no diagonals).
        assert_eq!(adj.edges().len(), 4);
        assert_eq!(adj.neighbors(0), vec![1, 2]);
        assert_eq!(adj.neighbors(3), vec![1, 2]);
        assert!((adj.shared_edge_length(0, 1) - 1e-3).abs() < 1e-12);
        assert_eq!(adj.shared_edge_length(0, 3), 0.0);
        assert!(adj.edge_between(0, 3).is_none());
        assert!(adj.edge_between(1, 0).is_some());
    }

    #[test]
    fn boundary_exposure_on_grid() {
        let adj = grid2x2().adjacency();
        let b00 = adj.boundary_exposure(0);
        assert!((b00.south - 1e-3).abs() < 1e-12);
        assert!((b00.west - 1e-3).abs() < 1e-12);
        assert_eq!(b00.north, 0.0);
        assert_eq!(b00.east, 0.0);
        assert!((b00.total() - 2e-3).abs() < 1e-12);
        let b11 = adj.boundary_exposure(3);
        assert!((b11.on_side(Side::North) - 1e-3).abs() < 1e-12);
        assert!((b11.on_side(Side::East) - 1e-3).abs() < 1e-12);
        assert_eq!(b11.on_side(Side::South), 0.0);
    }

    #[test]
    fn every_block_has_a_lateral_path_in_grid() {
        assert!(grid2x2().adjacency().all_blocks_have_lateral_paths());
    }

    #[test]
    fn diagonal_blocks_are_not_adjacent() {
        let fp = Floorplan::new(vec![
            Block::from_mm("a", 1.0, 1.0, 0.0, 0.0),
            Block::from_mm("b", 1.0, 1.0, 1.0, 1.0),
        ])
        .unwrap();
        let adj = fp.adjacency();
        assert!(adj.edges().is_empty());
        assert!(adj.neighbors(0).is_empty());
        // Both are still on the boundary, so they have lateral paths.
        assert!(adj.all_blocks_have_lateral_paths());
    }

    #[test]
    fn center_distance_recorded_on_edges() {
        let adj = grid2x2().adjacency();
        let e = adj.edge_between(0, 1).unwrap();
        assert!((e.center_distance - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn single_block_floorplan_has_full_boundary() {
        let fp = Floorplan::new(vec![Block::from_mm("solo", 3.0, 2.0, 0.0, 0.0)]).unwrap();
        let adj = fp.adjacency();
        let e = adj.boundary_exposure(0);
        assert!((e.north - 3e-3).abs() < 1e-12);
        assert!((e.south - 3e-3).abs() < 1e-12);
        assert!((e.east - 2e-3).abs() < 1e-12);
        assert!((e.west - 2e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "block id out of range")]
    fn neighbor_query_out_of_range_panics() {
        let adj = grid2x2().adjacency();
        let _ = adj.neighbors(10);
    }

    #[test]
    fn side_all_lists_four_sides() {
        assert_eq!(Side::ALL.len(), 4);
    }
}
