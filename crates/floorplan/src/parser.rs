//! Reading and writing the HotSpot-style `.flp` text format.
//!
//! Each non-comment line describes one block:
//!
//! ```text
//! <name> <width_m> <height_m> <left_x_m> <bottom_y_m>
//! ```
//!
//! Fields are separated by whitespace (tabs in the original HotSpot files).
//! Lines starting with `#` and blank lines are ignored, matching the format
//! of the floorplans shipped with the HotSpot thermal simulator that the
//! paper's experiments are based on.

use crate::{Block, Floorplan, FloorplanError, Result};

/// Parses a floorplan from `.flp` text.
///
/// # Errors
///
/// * [`FloorplanError::ParseError`] if a line does not have exactly five
///   whitespace-separated fields or a numeric field fails to parse.
/// * Any validation error of [`Floorplan::new`] (duplicate names, overlaps,
///   bad dimensions, empty floorplan).
///
/// # Example
///
/// ```
/// use thermsched_floorplan::parse_flp;
///
/// # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
/// let text = "cpu\t0.002\t0.002\t0.000\t0.000\nl2\t0.002\t0.002\t0.002\t0.000\n";
/// let fp = parse_flp(text)?;
/// assert_eq!(fp.block_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_flp(text: &str) -> Result<Floorplan> {
    let mut blocks = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(FloorplanError::ParseError {
                line: lineno + 1,
                message: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let name = fields[0].to_owned();
        let mut nums = [0.0f64; 4];
        for (k, field) in fields[1..].iter().enumerate() {
            nums[k] = field
                .parse::<f64>()
                .map_err(|_| FloorplanError::ParseError {
                    line: lineno + 1,
                    message: format!("cannot parse '{field}' as a number"),
                })?;
        }
        let [width, height, x, y] = nums;
        blocks.push(Block::new(name, width, height, x, y));
    }
    Floorplan::new(blocks)
}

/// Serialises a floorplan to `.flp` text (tab-separated, metres), suitable
/// for feeding to external HotSpot-compatible tools.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::{parse_flp, to_flp, Block, Floorplan};
///
/// # fn main() -> Result<(), thermsched_floorplan::FloorplanError> {
/// let fp = Floorplan::new(vec![Block::from_mm("cpu", 2.0, 2.0, 0.0, 0.0)])?;
/// let text = to_flp(&fp);
/// let round_trip = parse_flp(&text)?;
/// assert_eq!(round_trip.block_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn to_flp(fp: &Floorplan) -> String {
    let mut out = String::new();
    out.push_str("# floorplan written by thermsched-floorplan\n");
    out.push_str("# name\twidth_m\theight_m\tleft_x_m\tbottom_y_m\n");
    for b in fp.blocks() {
        out.push_str(&format!(
            "{}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\n",
            b.name(),
            b.width(),
            b.height(),
            b.rect().x,
            b.rect().y
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn parses_well_formed_text() {
        let text = "a\t0.001\t0.001\t0\t0\nb 0.001 0.001 0.001 0\n";
        let fp = parse_flp(text).unwrap();
        assert_eq!(fp.block_count(), 2);
        assert_eq!(fp.index_of("b"), Some(1));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n  \na\t0.001\t0.001\t0\t0\n# trailing comment\n";
        let fp = parse_flp(text).unwrap();
        assert_eq!(fp.block_count(), 1);
    }

    #[test]
    fn reports_wrong_field_count_with_line_number() {
        let text = "a\t0.001\t0.001\t0\n";
        match parse_flp(text) {
            Err(FloorplanError::ParseError { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("5 fields"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_bad_numbers() {
        let text = "a\t0.001\tnot_a_number\t0\t0\n";
        assert!(matches!(
            parse_flp(text),
            Err(FloorplanError::ParseError { .. })
        ));
    }

    #[test]
    fn empty_text_is_an_empty_floorplan_error() {
        assert!(matches!(
            parse_flp("# nothing here\n"),
            Err(FloorplanError::EmptyFloorplan)
        ));
    }

    #[test]
    fn round_trips_library_floorplan() {
        let fp = library::alpha21364();
        let text = to_flp(&fp);
        let back = parse_flp(&text).unwrap();
        assert_eq!(back.block_count(), fp.block_count());
        for (a, b) in fp.blocks().iter().zip(back.blocks()) {
            assert_eq!(a.name(), b.name());
            assert!((a.width() - b.width()).abs() < 1e-9);
            assert!((a.height() - b.height()).abs() < 1e-9);
            assert!((a.rect().x - b.rect().x).abs() < 1e-9);
            assert!((a.rect().y - b.rect().y).abs() < 1e-9);
        }
    }

    #[test]
    fn validation_still_applies_after_parsing() {
        // Overlapping blocks must be rejected even if the file parses.
        let text = "a\t0.002\t0.002\t0\t0\nb\t0.002\t0.002\t0.001\t0\n";
        assert!(matches!(
            parse_flp(text),
            Err(FloorplanError::OverlappingBlocks { .. })
        ));
    }
}
