//! [`Wire`] codecs for the floorplan types.
//!
//! A [`Floorplan`] serialises as its block list only; the name index and
//! bounding box are derived state that [`Floorplan::new`] rebuilds (and
//! re-validates) on decode, so malformed input — overlapping blocks,
//! duplicate names, an empty list — is rejected with a typed error instead
//! of producing an inconsistent value.

use thermsched_wire::{obj, JsonValue, Result, Wire, WireError};

use crate::{Block, Floorplan, Rect};

impl Wire for Rect {
    const WIRE_TYPE: &'static str = "rect";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("x", self.x)
            .field("y", self.y)
            .field("width", self.width)
            .field("height", self.height)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        Ok(Rect::new(
            value.field_f64("rect", "x")?,
            value.field_f64("rect", "y")?,
            value.field_f64("rect", "width")?,
            value.field_f64("rect", "height")?,
        ))
    }
}

impl Wire for Block {
    const WIRE_TYPE: &'static str = "block";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("name", self.name())
            .field("rect", self.rect().to_wire())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let name = value.field_str("block", "name")?;
        let rect = Rect::from_wire(value.field("block", "rect")?)?;
        Ok(Block::from_rect(name, rect))
    }
}

impl Wire for Floorplan {
    const WIRE_TYPE: &'static str = "floorplan";

    fn to_wire(&self) -> JsonValue {
        let blocks: Vec<JsonValue> = self.blocks().iter().map(Wire::to_wire).collect();
        obj().field("blocks", blocks).build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let blocks = value
            .field_array("floorplan", "blocks")?
            .iter()
            .map(Block::from_wire)
            .collect::<Result<Vec<_>>>()?;
        Floorplan::new(blocks).map_err(|e| WireError::Invalid {
            type_name: "floorplan",
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floorplan_roundtrips_and_revalidates() {
        let fp = crate::library::figure1_system();
        let json = fp.to_json().unwrap();
        assert_eq!(Floorplan::from_json(&json).unwrap(), fp);
        let binary = fp.to_binary().unwrap();
        assert_eq!(Floorplan::from_binary(&binary).unwrap(), fp);
    }

    #[test]
    fn invalid_floorplans_are_rejected_on_decode() {
        // Empty block list.
        let err = Floorplan::from_json("{\"blocks\": []}").unwrap_err();
        assert!(matches!(
            err,
            WireError::Invalid {
                type_name: "floorplan",
                ..
            }
        ));
        // Overlapping blocks survive the structural decode but fail domain
        // validation.
        let overlapping = obj()
            .field(
                "blocks",
                vec![
                    Block::from_mm("a", 2.0, 2.0, 0.0, 0.0).to_wire(),
                    Block::from_mm("b", 2.0, 2.0, 1.0, 0.0).to_wire(),
                ],
            )
            .build();
        let err = Floorplan::from_wire(&overlapping).unwrap_err();
        assert!(matches!(err, WireError::Invalid { .. }));
    }
}
