//! Compact binary encoding of [`JsonValue`] — the payload format of the
//! process transport.
//!
//! Each value is one tag byte followed by a fixed- or length-prefixed body:
//!
//! | tag    | value                                              |
//! |--------|----------------------------------------------------|
//! | `0x00` | null                                               |
//! | `0x01` | false                                              |
//! | `0x02` | true                                               |
//! | `0x03` | u64, 8 bytes little-endian                         |
//! | `0x04` | i64, 8 bytes little-endian                         |
//! | `0x05` | f64 bit pattern, 8 bytes little-endian             |
//! | `0x06` | string: u32 LE byte length + UTF-8 bytes           |
//! | `0x07` | array: u32 LE count + values                       |
//! | `0x08` | object: u32 LE count + (string key, value) pairs   |
//!
//! Floats travel as raw bit patterns, so the binary path is trivially
//! bit-exact. Decoding is strict: unknown tags, truncated bodies and
//! non-finite floats are typed errors, never panics.

use crate::json::{JsonValue, Number};
use crate::{Result, WireError};

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STRING: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Encodes a value into the compact binary form.
///
/// # Errors
///
/// [`WireError::NonFinite`] if any float is NaN or infinite, and
/// [`WireError::Invalid`] if a string or collection exceeds `u32` length.
pub fn encode_value(value: &JsonValue) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    encode_into(value, &mut out)?;
    Ok(out)
}

fn encode_len(len: usize, what: &'static str, out: &mut Vec<u8>) -> Result<()> {
    let len = u32::try_from(len).map_err(|_| WireError::Invalid {
        type_name: "binary value",
        message: format!("{what} of {len} elements exceeds the u32 length prefix"),
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    Ok(())
}

fn encode_str(s: &str, out: &mut Vec<u8>) -> Result<()> {
    encode_len(s.len(), "string", out)?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_into(value: &JsonValue, out: &mut Vec<u8>) -> Result<()> {
    match value {
        JsonValue::Null => out.push(TAG_NULL),
        JsonValue::Bool(false) => out.push(TAG_FALSE),
        JsonValue::Bool(true) => out.push(TAG_TRUE),
        JsonValue::Number(Number::Unsigned(u)) => {
            out.push(TAG_U64);
            out.extend_from_slice(&u.to_le_bytes());
        }
        JsonValue::Number(Number::Signed(s)) => {
            out.push(TAG_I64);
            out.extend_from_slice(&s.to_le_bytes());
        }
        JsonValue::Number(Number::Float(f)) => {
            if !f.is_finite() {
                return Err(WireError::NonFinite {
                    type_name: "binary value",
                });
            }
            out.push(TAG_F64);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        JsonValue::String(s) => {
            out.push(TAG_STRING);
            encode_str(s, out)?;
        }
        JsonValue::Array(items) => {
            out.push(TAG_ARRAY);
            encode_len(items.len(), "array", out)?;
            for item in items {
                encode_into(item, out)?;
            }
        }
        JsonValue::Object(entries) => {
            out.push(TAG_OBJECT);
            encode_len(entries.len(), "object", out)?;
            for (key, value) in entries {
                encode_str(key, out)?;
                encode_into(value, out)?;
            }
        }
    }
    Ok(())
}

/// Decodes one binary value, consuming the whole input.
///
/// # Errors
///
/// [`WireError::Truncated`], [`WireError::BadTag`], [`WireError::Invalid`]
/// (trailing bytes, invalid UTF-8) or [`WireError::NonFinite`].
pub fn decode_value(bytes: &[u8]) -> Result<JsonValue> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.value()?;
    if reader.pos != bytes.len() {
        return Err(WireError::Invalid {
            type_name: "binary value",
            message: format!(
                "{} trailing bytes after the value",
                bytes.len() - reader.pos
            ),
        });
    }
    Ok(value)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32_len(&mut self, context: &'static str) -> Result<usize> {
        let raw = self.take(4, context)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize)
    }

    fn eight(&mut self, context: &'static str) -> Result<[u8; 8]> {
        Ok(self.take(8, context)?.try_into().expect("8 bytes"))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32_len("string length")?;
        let raw = self.take(len, "string bytes")?;
        String::from_utf8(raw.to_vec()).map_err(|e| WireError::Invalid {
            type_name: "binary value",
            message: format!("string is not valid UTF-8: {e}"),
        })
    }

    fn value(&mut self) -> Result<JsonValue> {
        let tag = self.take(1, "value tag")?[0];
        Ok(match tag {
            TAG_NULL => JsonValue::Null,
            TAG_FALSE => JsonValue::Bool(false),
            TAG_TRUE => JsonValue::Bool(true),
            TAG_U64 => JsonValue::Number(Number::Unsigned(u64::from_le_bytes(
                self.eight("u64 value")?,
            ))),
            TAG_I64 => {
                let s = i64::from_le_bytes(self.eight("i64 value")?);
                // Normalise like the JSON parser: non-negative integers
                // always live in the unsigned lane.
                JsonValue::Number(Number::from_i64(s))
            }
            TAG_F64 => {
                let f = f64::from_bits(u64::from_le_bytes(self.eight("f64 value")?));
                if !f.is_finite() {
                    return Err(WireError::NonFinite {
                        type_name: "binary value",
                    });
                }
                JsonValue::Number(Number::Float(f))
            }
            TAG_STRING => JsonValue::String(self.string()?),
            TAG_ARRAY => {
                let count = self.u32_len("array length")?;
                let mut items = Vec::new();
                for _ in 0..count {
                    items.push(self.value()?);
                }
                JsonValue::Array(items)
            }
            TAG_OBJECT => {
                let count = self.u32_len("object length")?;
                let mut entries = Vec::new();
                for _ in 0..count {
                    let key = self.string()?;
                    let value = self.value()?;
                    entries.push((key, value));
                }
                JsonValue::Object(entries)
            }
            tag => return Err(WireError::BadTag { tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn roundtrip(value: &JsonValue) {
        let bytes = encode_value(value).unwrap();
        assert_eq!(&decode_value(&bytes).unwrap(), value);
    }

    #[test]
    fn every_shape_roundtrips() {
        roundtrip(&JsonValue::Null);
        roundtrip(&JsonValue::Bool(true));
        roundtrip(&JsonValue::Bool(false));
        roundtrip(&JsonValue::from(u64::MAX));
        roundtrip(&JsonValue::from(i64::MIN));
        roundtrip(&JsonValue::from(-0.0));
        roundtrip(&JsonValue::from(f64::MAX));
        roundtrip(&JsonValue::from("strings 🎯 with unicode"));
        roundtrip(&JsonValue::Array(vec![]));
        roundtrip(&JsonValue::Object(vec![]));
        roundtrip(
            &obj()
                .field("nested", vec![JsonValue::from(1.25), JsonValue::Null])
                .field("flag", false)
                .build(),
        );
    }

    #[test]
    fn floats_travel_as_bit_patterns() {
        for bits in [
            0x0000_0000_0000_0001u64,
            0x8000_0000_0000_0000,
            0x3ff0_0000_0000_0001,
        ] {
            let value = JsonValue::from(f64::from_bits(bits));
            let bytes = encode_value(&value).unwrap();
            let back = decode_value(&bytes).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn non_finite_refuses_both_directions() {
        assert!(matches!(
            encode_value(&JsonValue::from(f64::NAN)),
            Err(WireError::NonFinite { .. })
        ));
        let mut bytes = vec![TAG_F64];
        bytes.extend_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        assert!(matches!(
            decode_value(&bytes),
            Err(WireError::NonFinite { .. })
        ));
    }

    #[test]
    fn malformed_bytes_are_typed_errors() {
        assert!(matches!(
            decode_value(&[]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode_value(&[0xff]),
            Err(WireError::BadTag { tag: 0xff })
        ));
        // Truncated u64 body.
        assert!(matches!(
            decode_value(&[TAG_U64, 1, 2, 3]),
            Err(WireError::Truncated { .. })
        ));
        // String length runs past the input.
        assert!(matches!(
            decode_value(&[TAG_STRING, 0xff, 0xff, 0xff, 0xff]),
            Err(WireError::Truncated { .. })
        ));
        // Invalid UTF-8 in a string body.
        assert!(matches!(
            decode_value(&[TAG_STRING, 1, 0, 0, 0, 0xff]),
            Err(WireError::Invalid { .. })
        ));
        // Array count larger than the remaining bytes.
        assert!(matches!(
            decode_value(&[TAG_ARRAY, 2, 0, 0, 0, TAG_NULL]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage after a complete value.
        assert!(matches!(
            decode_value(&[TAG_NULL, TAG_NULL]),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn signed_lane_normalises_on_decode() {
        let mut bytes = vec![TAG_I64];
        bytes.extend_from_slice(&7i64.to_le_bytes());
        assert_eq!(decode_value(&bytes).unwrap(), JsonValue::from(7u64));
    }
}
