//! Typed errors of the wire format.

use std::fmt;

/// Everything that can go wrong while encoding or decoding wire data.
///
/// Malformed input is always reported through one of these variants —
/// never through a panic — so callers can surface the exact defect
/// (position, field, expected type) to whoever produced the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The JSON text violates the grammar. `line` and `column` are 1-based
    /// and point at the offending character.
    Parse {
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A decoded object is missing a required field.
    MissingField {
        /// Wire type being decoded.
        type_name: &'static str,
        /// Name of the missing field.
        field: &'static str,
    },
    /// A value has the wrong JSON type for its slot.
    WrongType {
        /// What the decoder needed (`"object"`, `"number"`, ...).
        expected: &'static str,
        /// What the value actually was.
        found: &'static str,
    },
    /// An enum tag names no known variant of the target type.
    UnknownVariant {
        /// Wire type being decoded.
        type_name: &'static str,
        /// The unrecognised tag.
        variant: String,
    },
    /// The value decoded fine structurally but failed the target type's
    /// domain validation (e.g. an empty floorplan, a negative test power).
    Invalid {
        /// Wire type being decoded.
        type_name: &'static str,
        /// The domain error, rendered.
        message: String,
    },
    /// A floating-point field is NaN or infinite — the wire format only
    /// carries finite numbers.
    NonFinite {
        /// Wire type being encoded or decoded.
        type_name: &'static str,
    },
    /// Binary input ended mid-value or mid-frame.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A binary frame does not start with the format magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The header names a format version this decoder does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// A binary value carries an unknown type tag byte.
    BadTag {
        /// The unrecognised tag byte.
        tag: u8,
    },
    /// A frame declares a payload longer than the transport allows,
    /// which almost always means garbage or a desynchronised stream.
    FrameTooLarge {
        /// Declared payload length.
        declared: u64,
        /// Maximum the transport accepts.
        limit: u64,
    },
    /// A document envelope carries an unexpected `type` tag.
    WrongDocumentType {
        /// The tag the caller asked for.
        expected: &'static str,
        /// The tag the document carries.
        found: String,
    },
    /// Reading or writing the underlying stream failed (pipes, files).
    Io {
        /// The I/O error, rendered (kept as text so the error stays
        /// `Clone + PartialEq`).
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse {
                line,
                column,
                message,
            } => write!(
                f,
                "JSON parse error at line {line}, column {column}: {message}"
            ),
            WireError::MissingField { type_name, field } => {
                write!(f, "{type_name}: missing field `{field}`")
            }
            WireError::WrongType { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            WireError::UnknownVariant { type_name, variant } => {
                write!(f, "{type_name}: unknown variant `{variant}`")
            }
            WireError::Invalid { type_name, message } => {
                write!(f, "{type_name}: invalid value: {message}")
            }
            WireError::NonFinite { type_name } => {
                write!(
                    f,
                    "{type_name}: non-finite number (the wire format carries finite f64 only)"
                )
            }
            WireError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected \"TSWF\")")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks {supported})"
                )
            }
            WireError::BadTag { tag } => write!(f, "unknown binary value tag 0x{tag:02x}"),
            WireError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "frame payload of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            WireError::WrongDocumentType { expected, found } => {
                write!(f, "expected a `{expected}` document, found `{found}`")
            }
            WireError::Io { message } => write!(f, "wire I/O error: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(WireError, &str)> = vec![
            (
                WireError::Parse {
                    line: 2,
                    column: 7,
                    message: "expected `:`".to_owned(),
                },
                "line 2, column 7",
            ),
            (
                WireError::MissingField {
                    type_name: "corpus",
                    field: "jobs",
                },
                "missing field `jobs`",
            ),
            (
                WireError::WrongType {
                    expected: "number",
                    found: "string",
                },
                "expected number",
            ),
            (
                WireError::UnknownVariant {
                    type_name: "backend",
                    variant: "warp-drive".to_owned(),
                },
                "unknown variant `warp-drive`",
            ),
            (
                WireError::Invalid {
                    type_name: "floorplan",
                    message: "empty".to_owned(),
                },
                "invalid value",
            ),
            (WireError::NonFinite { type_name: "rect" }, "non-finite"),
            (WireError::Truncated { context: "string" }, "truncated"),
            (WireError::BadMagic { found: [0; 4] }, "bad frame magic"),
            (
                WireError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "unsupported wire version 9",
            ),
            (WireError::BadTag { tag: 0xfe }, "0xfe"),
            (
                WireError::FrameTooLarge {
                    declared: 1 << 40,
                    limit: 1 << 28,
                },
                "exceeds",
            ),
            (
                WireError::WrongDocumentType {
                    expected: "corpus",
                    found: "report".to_owned(),
                },
                "expected a `corpus` document",
            ),
            (
                WireError::Io {
                    message: "broken pipe".to_owned(),
                },
                "broken pipe",
            ),
        ];
        for (error, needle) in cases {
            let text = error.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_errors_convert() {
        let e: WireError =
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed").into();
        assert!(matches!(e, WireError::Io { .. }));
        assert!(e.to_string().contains("pipe closed"));
    }
}
