//! The self-describing value model, a strict JSON parser and a canonical
//! writer.
//!
//! Numbers are kept in three lanes so nothing is ever lossy:
//!
//! * non-negative integers as `u64` (seeds use the full range, which `f64`
//!   cannot represent),
//! * negative integers as `i64`,
//! * everything else as finite `f64`.
//!
//! Finite `f64` values round-trip *exactly* through the text form: Rust's
//! `Display` for `f64` prints the shortest decimal that parses back to the
//! same bit pattern, and `str::parse::<f64>` is correctly rounded. The
//! writer appends `.0` to float values whose shortest form looks like an
//! integer, so the float/integer distinction survives a round trip too.
//! NaN and infinities are rejected at render time — the wire format carries
//! finite numbers only.

use std::fmt::Write as _;

use crate::{Result, WireError};

/// A JSON number, kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer token (no fraction, no exponent).
    Unsigned(u64),
    /// A negative integer token. Invariant: the value is `< 0` (non-negative
    /// integers normalise to [`Number::Unsigned`]).
    Signed(i64),
    /// Any number written with a fraction or exponent. Finite by contract;
    /// non-finite values are caught when rendering or encoding.
    Float(f64),
}

impl Number {
    /// Builds the canonical lane for an `i64`: negatives stay signed,
    /// everything else normalises to the unsigned lane (so equal tokens
    /// always produce equal values).
    pub fn from_i64(value: i64) -> Self {
        match u64::try_from(value) {
            Ok(u) => Number::Unsigned(u),
            Err(_) => Number::Signed(value),
        }
    }

    /// The value as `f64` (lossy above 2^53 for the integer lanes — use
    /// [`JsonValue::as_u64`] for exact integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Unsigned(u) => u as f64,
            Number::Signed(s) => s as f64,
            Number::Float(f) => f,
        }
    }
}

/// One JSON value. Objects preserve insertion order, which is what makes
/// the rendered form canonical (and golden files byte-stable).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`Number`] for the exactness contract).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered list of `(key, value)` pairs. Keys are unique (the parser
    /// rejects duplicates; the builder is trusted).
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(Number::Float(v))
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(Number::Unsigned(v))
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(Number::Unsigned(u64::from(v)))
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(Number::Unsigned(v as u64))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(Number::from_i64(v))
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => JsonValue::Null,
        }
    }
}

/// Incremental builder for object values, preserving field order.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, JsonValue)>,
}

impl ObjectBuilder {
    /// Appends a field.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((name.to_owned(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

/// Starts an [`ObjectBuilder`].
pub fn obj() -> ObjectBuilder {
    ObjectBuilder::default()
}

impl JsonValue {
    /// The JSON type of this value, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// The value as a bool.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for any other JSON type.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(wrong_type("bool", other)),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for any other JSON type.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(wrong_type("string", other)),
        }
    }

    /// The value as an `f64`. Integer tokens are accepted (hand-written
    /// input writes `1` where the canonical writer emits `1.0`), converted
    /// with `as` — exact up to 2^53.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-numbers.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            JsonValue::Number(n) => Ok(n.as_f64()),
            other => Err(wrong_type("number", other)),
        }
    }

    /// The value as a `u64`. Only integer tokens qualify — a float in an
    /// integer slot is a type error, not a rounding opportunity.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for floats, negatives and non-numbers.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            JsonValue::Number(Number::Unsigned(u)) => Ok(*u),
            other => Err(wrong_type("unsigned integer", other)),
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for floats, out-of-range magnitudes and
    /// non-numbers.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            JsonValue::Number(Number::Signed(s)) => Ok(*s),
            JsonValue::Number(Number::Unsigned(u)) => {
                i64::try_from(*u).map_err(|_| wrong_type("signed integer", self))
            }
            other => Err(wrong_type("signed integer", other)),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] as for [`JsonValue::as_u64`].
    pub fn as_usize(&self) -> Result<usize> {
        let u = self.as_u64()?;
        usize::try_from(u).map_err(|_| wrong_type("usize", self))
    }

    /// The value as a `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] as for [`JsonValue::as_u64`].
    pub fn as_u32(&self) -> Result<u32> {
        let u = self.as_u64()?;
        u32::try_from(u).map_err(|_| wrong_type("u32", self))
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for any other JSON type.
    pub fn as_array(&self) -> Result<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(wrong_type("array", other)),
        }
    }

    /// The value as object entries, in insertion order.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for any other JSON type.
    pub fn entries(&self) -> Result<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Ok(entries),
            other => Err(wrong_type("object", other)),
        }
    }

    /// Looks a field up by name (objects only; `None` on other types).
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// A required field of an object.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] if `self` is not an object,
    /// [`WireError::MissingField`] if the field is absent.
    pub fn field(&self, type_name: &'static str, name: &'static str) -> Result<&JsonValue> {
        self.entries()?;
        self.get(name).ok_or(WireError::MissingField {
            type_name,
            field: name,
        })
    }

    /// A required `f64` field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_f64(&self, type_name: &'static str, name: &'static str) -> Result<f64> {
        self.field(type_name, name)?.as_f64()
    }

    /// A required `u64` field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_u64(&self, type_name: &'static str, name: &'static str) -> Result<u64> {
        self.field(type_name, name)?.as_u64()
    }

    /// A required `usize` field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_usize(&self, type_name: &'static str, name: &'static str) -> Result<usize> {
        self.field(type_name, name)?.as_usize()
    }

    /// A required `u32` field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_u32(&self, type_name: &'static str, name: &'static str) -> Result<u32> {
        self.field(type_name, name)?.as_u32()
    }

    /// A required bool field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_bool(&self, type_name: &'static str, name: &'static str) -> Result<bool> {
        self.field(type_name, name)?.as_bool()
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_str(&self, type_name: &'static str, name: &'static str) -> Result<&str> {
        self.field(type_name, name)?.as_str()
    }

    /// A required array field.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::field`] plus [`WireError::WrongType`].
    pub fn field_array(&self, type_name: &'static str, name: &'static str) -> Result<&[JsonValue]> {
        self.field(type_name, name)?.as_array()
    }

    /// Parses strict JSON text into a value. The whole input must be one
    /// JSON value (plus whitespace); duplicate object keys are rejected.
    ///
    /// # Errors
    ///
    /// [`WireError::Parse`] with a 1-based line/column position.
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Renders the value as canonical pretty JSON (2-space indent, fields
    /// in insertion order, trailing newline) — the golden-file form.
    ///
    /// # Errors
    ///
    /// [`WireError::NonFinite`] if any float is NaN or infinite.
    pub fn render_pretty(&self) -> Result<String> {
        let mut out = String::new();
        self.write_value(&mut out, Some(0))?;
        out.push('\n');
        Ok(out)
    }

    /// Renders the value on one line, no spaces — the log-line form.
    ///
    /// # Errors
    ///
    /// [`WireError::NonFinite`] if any float is NaN or infinite.
    pub fn render_compact(&self) -> Result<String> {
        let mut out = String::new();
        self.write_value(&mut out, None)?;
        Ok(out)
    }

    fn write_value(&self, out: &mut String, indent: Option<usize>) -> Result<()> {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(out, *n)?,
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    open_line(out, indent);
                    item.write_value(out, indent.map(|n| n + 1))?;
                }
                close_line(out, indent);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    open_line(out, indent);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_value(out, indent.map(|n| n + 1))?;
                }
                close_line(out, indent);
                out.push('}');
            }
        }
        Ok(())
    }
}

fn wrong_type(expected: &'static str, found: &JsonValue) -> WireError {
    WireError::WrongType {
        expected,
        found: found.type_name(),
    }
}

fn open_line(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..=level {
            out.push_str("  ");
        }
    }
}

fn close_line(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

fn write_number(out: &mut String, number: Number) -> Result<()> {
    match number {
        Number::Unsigned(u) => {
            let _ = write!(out, "{u}");
        }
        Number::Signed(s) => {
            let _ = write!(out, "{s}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(WireError::NonFinite {
                    type_name: "json number",
                });
            }
            // Rust's Display prints the shortest decimal that parses back
            // to the same bits. Keep the float lane recognisable: a value
            // whose shortest form has no fraction gets an explicit `.0`.
            let start = out.len();
            let _ = write!(out, "{f}");
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> WireError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let line_start = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        WireError::Parse {
            line,
            column: self.pos - line_start + 1,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", char::from(other)))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &'static str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string key"));
            }
            let key = self.string()?;
            if entries.iter().any(|(existing, _)| *existing == key) {
                self.pos = key_pos;
                return Err(self.error(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote or escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing on these boundaries is valid
            // UTF-8 (quote/backslash/control bytes never occur inside a
            // multi-byte sequence).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("plain byte runs of a str are valid UTF-8"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let Some(b) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let first = self.hex4()?;
                if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.error("expected a low surrogate escape"))?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            other => {
                self.pos -= 1;
                return Err(self.error(format!("invalid escape `\\{}`", char::from(other))));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if integral {
            // Integer token: land in the exact lane when it fits, fall back
            // to f64 for absurd magnitudes.
            if token.starts_with('-') {
                if let Ok(s) = token.parse::<i64>() {
                    return Ok(JsonValue::Number(Number::from_i64(s)));
                }
            } else if let Ok(u) = token.parse::<u64>() {
                return Ok(JsonValue::Number(Number::Unsigned(u)));
            }
        }
        let f: f64 = token.parse().map_err(|_| self.error("malformed number"))?;
        if !f.is_finite() {
            return Err(self.error("number does not fit a finite f64"));
        }
        Ok(JsonValue::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &JsonValue) {
        let pretty = value.render_pretty().unwrap();
        assert_eq!(&JsonValue::parse(&pretty).unwrap(), value, "{pretty}");
        let compact = value.render_compact().unwrap();
        assert_eq!(&JsonValue::parse(&compact).unwrap(), value, "{compact}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&JsonValue::Null);
        roundtrip(&JsonValue::Bool(true));
        roundtrip(&JsonValue::Bool(false));
        roundtrip(&JsonValue::from(0u64));
        roundtrip(&JsonValue::from(u64::MAX));
        roundtrip(&JsonValue::from(-1i64));
        roundtrip(&JsonValue::from(i64::MIN));
        roundtrip(&JsonValue::from(0.1));
        roundtrip(&JsonValue::from(-0.0));
        roundtrip(&JsonValue::from(1.0));
        roundtrip(&JsonValue::from(1e300));
        roundtrip(&JsonValue::from(5e-324)); // smallest subnormal
        roundtrip(&JsonValue::from(f64::MAX));
        roundtrip(&JsonValue::from("plain"));
        roundtrip(&JsonValue::from(
            "esc \"\\ \n\r\t \u{8}\u{c} \u{1} ünïcødé 🎯",
        ));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let value = obj()
            .field("name", "demo")
            .field("count", 3usize)
            .field("enabled", true)
            .field("nothing", JsonValue::Null)
            .field(
                "items",
                vec![
                    JsonValue::from(1.5),
                    JsonValue::from("two"),
                    JsonValue::Array(vec![]),
                    JsonValue::Object(vec![]),
                ],
            )
            .field("nested", obj().field("deep", -7i64).build())
            .build();
        roundtrip(&value);
    }

    #[test]
    fn float_lane_survives_integral_values() {
        // 1.0 must render as "1.0", not "1", so it parses back into the
        // float lane.
        let rendered = JsonValue::from(1.0).render_compact().unwrap();
        assert_eq!(rendered, "1.0");
        let reparsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(reparsed, JsonValue::Number(Number::Float(1.0)));
        // Huge integral floats render without exponents in Rust; the `.0`
        // keeps the lane.
        let rendered = JsonValue::from(1e19).render_compact().unwrap();
        assert!(rendered.ends_with(".0"), "{rendered}");
        assert_eq!(
            JsonValue::parse(&rendered).unwrap(),
            JsonValue::Number(Number::Float(1e19))
        );
    }

    #[test]
    fn exact_bit_patterns_survive_text() {
        // A sweep of awkward bit patterns: parse(render(x)) must give the
        // identical bits back.
        for bits in [
            0x0000_0000_0000_0001u64, // smallest subnormal
            0x000f_ffff_ffff_ffff,    // largest subnormal
            0x0010_0000_0000_0000,    // smallest normal
            0x3ff0_0000_0000_0001,    // 1.0 + ulp
            0x7fef_ffff_ffff_ffff,    // f64::MAX
            0x8000_0000_0000_0000,    // -0.0
            0xbfd5_5555_5555_5555,    // -1/3
        ] {
            let x = f64::from_bits(bits);
            let rendered = JsonValue::from(x).render_compact().unwrap();
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), bits, "{rendered}");
        }
    }

    #[test]
    fn non_finite_floats_refuse_to_render() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = JsonValue::from(bad).render_pretty().unwrap_err();
            assert!(matches!(err, WireError::NonFinite { .. }), "{bad}");
        }
    }

    #[test]
    fn pretty_rendering_is_canonical() {
        let value = obj()
            .field("b", 1u64)
            .field("a", vec![JsonValue::from(true)])
            .build();
        assert_eq!(
            value.render_pretty().unwrap(),
            "{\n  \"b\": 1,\n  \"a\": [\n    true\n  ]\n}\n"
        );
        assert_eq!(value.render_compact().unwrap(), "{\"b\":1,\"a\":[true]}");
    }

    #[test]
    fn parser_reports_positions() {
        let err = JsonValue::parse("{\n  \"a\": nul\n}").unwrap_err();
        match err {
            WireError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 8);
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{a: 1}",
            "tru",
            "nulL",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",        // unpaired high surrogate
            "\"\\udc00\"",        // unpaired low surrogate
            "\"\\ud800\\u0041\"", // high surrogate + non-surrogate
            "01",
            "1.",
            ".5",
            "-",
            "1e",
            "1e999",
            "+1",
            "1 2",
            "[1] []",
            "{\"a\":1,\"a\":2}",
            "\u{1}",
        ] {
            match JsonValue::parse(bad) {
                Err(WireError::Parse { .. }) => {}
                other => panic!("{bad:?} should be a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_keys_name_the_key() {
        let err = JsonValue::parse("{\"x\": 1, \"x\": 2}").unwrap_err();
        assert!(err.to_string().contains("duplicate object key `x`"));
    }

    #[test]
    fn integer_lanes_are_exact_and_normalised() {
        assert_eq!(
            JsonValue::parse("18446744073709551615")
                .unwrap()
                .as_u64()
                .unwrap(),
            u64::MAX
        );
        assert_eq!(
            JsonValue::parse("-9223372036854775808")
                .unwrap()
                .as_i64()
                .unwrap(),
            i64::MIN
        );
        // Non-negative i64 normalises to the unsigned lane.
        assert_eq!(JsonValue::from(5i64), JsonValue::from(5u64));
        // Oversized integer tokens fall back to the float lane instead of
        // erroring: they are valid JSON.
        let big = JsonValue::parse("18446744073709551616").unwrap();
        assert!(matches!(big, JsonValue::Number(Number::Float(_))));
    }

    #[test]
    fn accessors_enforce_types() {
        let value = obj().field("n", 1.5).field("u", 7u64).build();
        assert!(value.field_f64("t", "n").is_ok());
        // Integer tokens are accepted as f64 (hand-written JSON)...
        assert_eq!(value.field_f64("t", "u").unwrap(), 7.0);
        // ...but floats never pass as integers.
        assert!(matches!(
            value.field_u64("t", "n"),
            Err(WireError::WrongType { .. })
        ));
        assert!(matches!(
            value.field("t", "missing"),
            Err(WireError::MissingField {
                field: "missing",
                ..
            })
        ));
        assert!(matches!(
            JsonValue::Null.field("t", "n"),
            Err(WireError::WrongType { .. })
        ));
        assert!(matches!(
            JsonValue::from(-1i64).as_u64(),
            Err(WireError::WrongType { .. })
        ));
        assert_eq!(JsonValue::from(7u64).as_i64().unwrap(), 7);
        assert!(JsonValue::from(u64::MAX).as_i64().is_err());
        assert_eq!(JsonValue::from(Some(2.5)).as_f64().unwrap(), 2.5);
        assert_eq!(JsonValue::from(None::<f64>), JsonValue::Null);
        assert_eq!(value.get("u").unwrap().as_u64().unwrap(), 7);
        assert!(value.get("zzz").is_none());
        assert_eq!(value.entries().unwrap().len(), 2);
    }
}
