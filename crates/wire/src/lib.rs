//! Dependency-free self-describing wire format for the thermsched
//! workspace.
//!
//! Two encodings of one value model ([`JsonValue`]):
//!
//! * **strict JSON text** — human-readable, canonical (stable field order,
//!   2-space indent), used for reports, corpora on disk and golden files;
//! * **compact framed binary** — length-prefixed frames of tagged values,
//!   used on the coordinator↔worker pipes.
//!
//! Domain crates implement the [`Wire`] trait for their public types; this
//! crate deliberately knows nothing about them (it is a leaf with zero
//! dependencies), which is what lets `floorplan`, `soc`, `thermal`, `core`
//! and `service` all depend on it without cycles.
//!
//! Finite `f64` values round-trip bit-exactly through *both* encodings:
//! the JSON writer prints shortest-round-trip decimals (see [`json`]) and
//! the binary encoding ships raw bit patterns. NaN and infinities are
//! rejected with [`WireError::NonFinite`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
pub mod json;

pub mod frame;

pub use binary::{decode_value, encode_value};
pub use error::WireError;
pub use json::{obj, JsonValue, Number, ObjectBuilder};

/// Shorthand for results carrying a [`WireError`].
pub type Result<T> = std::result::Result<T, WireError>;

/// Name written into every document envelope.
pub const FORMAT_NAME: &str = "thermsched-wire";

/// Version written into every document envelope.
pub const FORMAT_VERSION: u64 = 1;

/// A type that can cross the wire.
///
/// Implementors provide the [`JsonValue`] mapping; the trait derives both
/// text and binary codecs from it. `to_wire` is infallible by design —
/// every reachable value of a domain type is encodable (non-finite floats
/// are caught when rendering) — while `from_wire` is where all the strict
/// validation lives.
pub trait Wire: Sized {
    /// Tag naming this type inside document envelopes.
    const WIRE_TYPE: &'static str;

    /// Encodes `self` into the value model.
    fn to_wire(&self) -> JsonValue;

    /// Decodes a value of this type, validating structure and domain rules.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing the defect in `value`.
    fn from_wire(value: &JsonValue) -> Result<Self>;

    /// Renders `self` as canonical pretty JSON (no envelope).
    ///
    /// # Errors
    ///
    /// [`WireError::NonFinite`] if a float field is NaN or infinite.
    fn to_json(&self) -> Result<String> {
        self.to_wire().render_pretty()
    }

    /// Parses JSON text produced by [`Wire::to_json`] (or written by hand).
    ///
    /// # Errors
    ///
    /// [`WireError::Parse`] for grammar defects, any other [`WireError`]
    /// for structural or domain defects.
    fn from_json(text: &str) -> Result<Self> {
        Self::from_wire(&JsonValue::parse(text)?)
    }

    /// Encodes `self` into the compact binary form (no frame header).
    ///
    /// # Errors
    ///
    /// [`WireError::NonFinite`] if a float field is NaN or infinite.
    fn to_binary(&self) -> Result<Vec<u8>> {
        encode_value(&self.to_wire())
    }

    /// Decodes binary bytes produced by [`Wire::to_binary`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing the defect in `bytes`.
    fn from_binary(bytes: &[u8]) -> Result<Self> {
        Self::from_wire(&decode_value(bytes)?)
    }
}

/// Wraps a value in the self-describing document envelope:
///
/// ```json
/// {"format": "thermsched-wire", "version": 1, "type": "...", "body": ...}
/// ```
pub fn to_document<T: Wire>(value: &T) -> JsonValue {
    obj()
        .field("format", FORMAT_NAME)
        .field("version", FORMAT_VERSION)
        .field("type", T::WIRE_TYPE)
        .field("body", value.to_wire())
        .build()
}

/// Unwraps a document envelope, checking format, version and type tag,
/// then decodes the body.
///
/// # Errors
///
/// [`WireError::UnknownVariant`] for a foreign `format`,
/// [`WireError::UnsupportedVersion`], [`WireError::WrongDocumentType`] if
/// the `type` tag is not `T::WIRE_TYPE`, plus any body decode error.
pub fn from_document<T: Wire>(document: &JsonValue) -> Result<T> {
    let format = document.field_str("document", "format")?;
    if format != FORMAT_NAME {
        return Err(WireError::UnknownVariant {
            type_name: "document format",
            variant: format.to_owned(),
        });
    }
    let version = document.field_u64("document", "version")?;
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let found = document.field_str("document", "type")?;
    if found != T::WIRE_TYPE {
        return Err(WireError::WrongDocumentType {
            expected: T::WIRE_TYPE,
            found: found.to_owned(),
        });
    }
    T::from_wire(document.field("document", "body")?)
}

/// Reads the `type` tag of a document without decoding the body — how the
/// CLI dispatches on whatever file it was handed.
///
/// # Errors
///
/// [`WireError`] if the envelope fields are missing or malformed.
pub fn document_type(document: &JsonValue) -> Result<&str> {
    let format = document.field_str("document", "format")?;
    if format != FORMAT_NAME {
        return Err(WireError::UnknownVariant {
            type_name: "document format",
            variant: format.to_owned(),
        });
    }
    document.field_str("document", "type")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        name: String,
        gain: f64,
    }

    impl Wire for Sample {
        const WIRE_TYPE: &'static str = "sample";

        fn to_wire(&self) -> JsonValue {
            obj()
                .field("name", self.name.as_str())
                .field("gain", self.gain)
                .build()
        }

        fn from_wire(value: &JsonValue) -> Result<Self> {
            Ok(Sample {
                name: value.field_str("sample", "name")?.to_owned(),
                gain: value.field_f64("sample", "gain")?,
            })
        }
    }

    #[test]
    fn trait_roundtrips_both_encodings() {
        let sample = Sample {
            name: "probe".to_owned(),
            gain: 0.1 + 0.2, // a value with an ugly shortest decimal
        };
        let json = sample.to_json().unwrap();
        assert_eq!(Sample::from_json(&json).unwrap(), sample);
        let binary = sample.to_binary().unwrap();
        assert_eq!(Sample::from_binary(&binary).unwrap(), sample);
    }

    #[test]
    fn documents_are_self_describing() {
        let sample = Sample {
            name: "doc".to_owned(),
            gain: 2.5,
        };
        let doc = to_document(&sample);
        assert_eq!(document_type(&doc).unwrap(), "sample");
        assert_eq!(from_document::<Sample>(&doc).unwrap(), sample);
        let text = doc.render_pretty().unwrap();
        assert!(text.starts_with("{\n  \"format\": \"thermsched-wire\",\n  \"version\": 1,"));
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(from_document::<Sample>(&reparsed).unwrap(), sample);
    }

    #[test]
    fn envelope_defects_are_typed() {
        let sample = Sample {
            name: "x".to_owned(),
            gain: 1.0,
        };
        let mut doc = to_document(&sample);

        // Wrong type tag.
        #[derive(Debug, PartialEq)]
        struct Other;
        impl Wire for Other {
            const WIRE_TYPE: &'static str = "other";
            fn to_wire(&self) -> JsonValue {
                JsonValue::Object(vec![])
            }
            fn from_wire(_: &JsonValue) -> Result<Self> {
                Ok(Other)
            }
        }
        assert!(matches!(
            from_document::<Other>(&doc),
            Err(WireError::WrongDocumentType {
                expected: "other",
                ..
            })
        ));

        // Unsupported version.
        if let JsonValue::Object(entries) = &mut doc {
            for (key, value) in entries.iter_mut() {
                if key == "version" {
                    *value = JsonValue::from(99u64);
                }
            }
        }
        assert!(matches!(
            from_document::<Sample>(&doc),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));

        // Foreign format name.
        let foreign = obj()
            .field("format", "acme-wire")
            .field("version", 1u64)
            .field("type", "sample")
            .field("body", JsonValue::Object(vec![]))
            .build();
        assert!(matches!(
            from_document::<Sample>(&foreign),
            Err(WireError::UnknownVariant { .. })
        ));
        assert!(document_type(&foreign).is_err());

        // Not an envelope at all.
        assert!(matches!(
            from_document::<Sample>(&JsonValue::Null),
            Err(WireError::WrongType { .. })
        ));
    }
}
