//! Length-prefixed framing for the process transport.
//!
//! A frame is a 10-byte header followed by the payload:
//!
//! ```text
//! +------+------+---------+------+----------------+---------+
//! | 'T'  | 'S'  | 'W' 'F' | ver  | kind | len u32 | payload |
//! +------+------+---------+------+------+---------+---------+
//!   magic (4 bytes)         u8     u8     LE        len bytes
//! ```
//!
//! `kind` is an application-level discriminator (the multi-process protocol
//! uses it for HELLO/JOB/RESULT/...); the framing layer carries it opaquely.
//! [`read_frame`] distinguishes a clean shutdown (EOF exactly at a frame
//! boundary → `Ok(None)`) from a truncated stream (EOF inside a frame →
//! [`WireError::Truncated`]), which is what lets the coordinator tell a
//! finished worker from a crashed one.

use std::io::{Read, Write};

use crate::{Result, WireError};

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TSWF";

/// Framing-layer version written into every header.
pub const FRAME_VERSION: u8 = 1;

/// Largest payload [`read_frame`] accepts (256 MiB). Anything larger means
/// a desynchronised or hostile stream, not a real message.
pub const MAX_FRAME_PAYLOAD: u64 = 256 << 20;

/// One decoded frame: the application `kind` byte and the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-level frame discriminator.
    pub kind: u8,
    /// The payload bytes, typically a binary-encoded value.
    pub payload: Vec<u8>,
}

/// Writes one frame (header + payload) and flushes the writer, so a frame
/// is always visible to the peer as soon as the call returns.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the payload exceeds
/// [`MAX_FRAME_PAYLOAD`], or [`WireError::Io`] from the writer.
pub fn write_frame(writer: &mut impl Write, kind: u8, payload: &[u8]) -> Result<()> {
    let len = payload.len() as u64;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: len,
            limit: MAX_FRAME_PAYLOAD,
        });
    }
    let mut header = [0u8; 10];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = FRAME_VERSION;
    header[5] = kind;
    header[6..].copy_from_slice(&(len as u32).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// [`WireError::Truncated`] on EOF inside a frame, [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`], [`WireError::FrameTooLarge`] or
/// [`WireError::Io`].
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Frame>> {
    let mut header = [0u8; 10];
    match read_exact_or_eof(reader, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => {
            return Err(WireError::Truncated {
                context: "frame header",
            })
        }
        ReadOutcome::Full => {}
    }
    let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if header[4] != FRAME_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: u64::from(header[4]),
            supported: u64::from(FRAME_VERSION),
        });
    }
    let kind = header[5];
    let len = u32::from_le_bytes(header[6..].try_into().expect("4 bytes")) as u64;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: len,
            limit: MAX_FRAME_PAYLOAD,
        });
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(reader, &mut payload)? {
        ReadOutcome::Full => Ok(Some(Frame { kind, payload })),
        _ if len == 0 => Ok(Some(Frame { kind, payload })),
        _ => Err(WireError::Truncated {
            context: "frame payload",
        }),
    }
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after at least one byte but before the buffer filled.
    Partial,
}

fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 2, b"first").unwrap();
        write_frame(&mut buf, 5, b"").unwrap();
        write_frame(&mut buf, 7, &[0xff; 300]).unwrap();
        let mut cursor = Cursor::new(buf);
        let a = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((a.kind, a.payload.as_slice()), (2, b"first".as_slice()));
        let b = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((b.kind, b.payload.len()), (5, 0));
        let c = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((c.kind, c.payload.len()), (7, 300));
        // Clean EOF at the boundary.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn eof_inside_a_frame_is_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"payload").unwrap();
        // Cut inside the header.
        let mut cursor = Cursor::new(buf[..6].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Truncated {
                context: "frame header"
            })
        ));
        // Cut inside the payload.
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, 1, b"payload").unwrap();
        let cut = buf2.len() - 3;
        let mut cursor = Cursor::new(buf2[..cut].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Truncated {
                context: "frame payload"
            })
        ));
    }

    #[test]
    fn bad_headers_are_typed_errors() {
        let mut garbage = Cursor::new(b"NOPE\x01\x02\x00\x00\x00\x00".to_vec());
        assert!(matches!(
            read_frame(&mut garbage),
            Err(WireError::BadMagic { found }) if &found == b"NOPE"
        ));
        let mut wrong_version = Cursor::new(b"TSWF\x09\x02\x00\x00\x00\x00".to_vec());
        assert!(matches!(
            read_frame(&mut wrong_version),
            Err(WireError::UnsupportedVersion {
                found: 9,
                supported: 1
            })
        ));
        // Declared length beyond the guard.
        let mut header = Vec::new();
        header.extend_from_slice(b"TSWF\x01\x02");
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut oversized = Cursor::new(header);
        assert!(matches!(
            read_frame(&mut oversized),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_payloads_refuse_to_write() {
        // Use a writer that drops the bytes; the guard fires before any
        // allocation of the payload is needed.
        struct Sink;
        impl std::io::Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // A payload over the limit cannot be constructed cheaply here, so
        // exercise the guard through the length check with a zero-copy
        // slice: impossible lengths require a real allocation, so instead
        // assert the boundary math directly.
        assert!(write_frame(&mut Sink, 0, &[]).is_ok());
        assert!(MAX_FRAME_PAYLOAD <= u64::from(u32::MAX));
    }
}
