//! Banded Cholesky factorisation and the implicit-Euler step operator built
//! on top of it.
//!
//! The grid thermal model assembles its conductance matrix over a regular
//! `nx × ny` mesh; numbered row-major, every cell couples only to itself and
//! its four mesh neighbours, so the matrix is symmetric positive definite
//! with half-bandwidth `nx`. A dense factorisation of such a system wastes
//! `O(n³)` work and `O(n²)` memory on structural zeros, while an iterative
//! solve (the steady-state path) pays tens of matrix passes *per right-hand
//! side* — ruinous for transient integration, which solves against the same
//! matrix once per time step. [`BandedCholesky`] factorises the band once in
//! `O(n · b²)` and then solves each right-hand side in `O(n · b)` without
//! allocating, and [`ImplicitStepOperator`] packages the factorisation of
//! the implicit-Euler stepping matrix `C/Δt + G` together with the `C/Δt`
//! diagonal so a whole transient simulation is a sequence of
//! [`ImplicitStepOperator::step_into`] calls — the sparse-system counterpart
//! of what [`crate::AffineStepOperator`] does for the dense RC path.

use crate::{CsrMatrix, LinalgError, Result};

/// Cholesky factorisation `A = L · Lᵀ` of a symmetric positive-definite
/// banded matrix, stored by diagonals.
///
/// The half-bandwidth is detected from the sparsity pattern of the input
/// [`CsrMatrix`]; entries outside the band do not exist by construction.
/// Factor once, then call [`BandedCholesky::solve_into`] per right-hand
/// side — the access pattern of transient integration, which solves against
/// one fixed stepping matrix thousands of times per simulated second.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{BandedCholesky, CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// // Tridiagonal SPD system.
/// let a = CsrMatrix::from_triplets(
///     3,
///     3,
///     &[
///         Triplet::new(0, 0, 2.0),
///         Triplet::new(0, 1, -1.0),
///         Triplet::new(1, 0, -1.0),
///         Triplet::new(1, 1, 2.0),
///         Triplet::new(1, 2, -1.0),
///         Triplet::new(2, 1, -1.0),
///         Triplet::new(2, 2, 2.0),
///     ],
/// )?;
/// let chol = BandedCholesky::new(&a)?;
/// let x = chol.solve(&[1.0, 0.0, 1.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedCholesky {
    /// Dimension of the factorised matrix.
    dim: usize,
    /// Half-bandwidth `b`: `A[i][j] = 0` whenever `|i - j| > b`.
    bandwidth: usize,
    /// Row-major band storage of `L`: `bands[i * (b + 1) + (b - (i - j))]`
    /// holds `L[i][j]` for `i - b <= j <= i` (leading rows are left-padded
    /// with zeros).
    bands: Vec<f64>,
}

impl BandedCholesky {
    /// Factorises a symmetric positive-definite matrix given in CSR form.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if the matrix is not square.
    /// * [`LinalgError::Empty`] if it has zero rows.
    /// * [`LinalgError::NonFinite`] if it contains NaN or infinite entries.
    /// * [`LinalgError::NotPositiveDefinite`] if it is asymmetric beyond
    ///   `1e-9` or a non-positive pivot is encountered.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty {
                context: "BandedCholesky::new",
            });
        }
        if !a.is_symmetric(1e-9) {
            return Err(LinalgError::NotPositiveDefinite { index: 0 });
        }

        let mut bandwidth = 0usize;
        for i in 0..n {
            for (j, value) in a.row_entries(i) {
                if !value.is_finite() {
                    return Err(LinalgError::NonFinite {
                        context: "BandedCholesky::new",
                    });
                }
                bandwidth = bandwidth.max(i.abs_diff(j));
            }
        }

        // Copy the lower triangle into band storage, then factorise in place.
        let width = bandwidth + 1;
        let mut bands = vec![0.0; n * width];
        for i in 0..n {
            for (j, value) in a.row_entries(i) {
                if j <= i {
                    bands[i * width + (bandwidth - (i - j))] = value;
                }
            }
        }

        for i in 0..n {
            let lo = i.saturating_sub(bandwidth);
            for j in lo..=i {
                // sum = A[i][j] - Σ_k L[i][k] · L[j][k], k in the band overlap.
                let mut sum = bands[i * width + (bandwidth - (i - j))];
                let k_lo = lo.max(j.saturating_sub(bandwidth));
                for k in k_lo..j {
                    sum -= bands[i * width + (bandwidth - (i - k))]
                        * bands[j * width + (bandwidth - (j - k))];
                }
                if j == i {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    bands[i * width + bandwidth] = sum.sqrt();
                } else {
                    bands[i * width + (bandwidth - (i - j))] = sum / bands[j * width + bandwidth];
                }
            }
        }

        Ok(BandedCholesky {
            dim: n,
            bandwidth,
            bands,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Detected half-bandwidth of the factorised matrix.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Solves `A · x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim];
        self.solve_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A · x = b` into a caller-provided buffer without allocating:
    /// forward substitution with `L` writes into `out`, then backward
    /// substitution with `Lᵀ` finishes in place. `rhs` and `out` may not
    /// alias but no scratch buffer is needed. Cost is `O(n · b)` per call —
    /// the hot-loop variant used by [`ImplicitStepOperator::step_into`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `rhs` or `out` has a
    /// length other than `self.dim()`.
    pub fn solve_into(&self, rhs: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.dim;
        for (len, context) in [
            (rhs.len(), "BandedCholesky::solve_into rhs"),
            (out.len(), "BandedCholesky::solve_into out"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        let b = self.bandwidth;
        let width = b + 1;
        // Forward: L · y = rhs.
        for i in 0..n {
            let mut sum = rhs[i];
            let lo = i.saturating_sub(b);
            let row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            for (l, &y) in row.iter().zip(&out[lo..i]) {
                sum -= l * y;
            }
            out[i] = sum / self.bands[i * width + b];
        }
        // Backward: Lᵀ · x = y. Column i of Lᵀ is row i of L.
        for i in (0..n).rev() {
            let mut sum = out[i];
            let hi = (i + b).min(n - 1);
            for (offset, &x) in out[(i + 1)..=hi].iter().enumerate() {
                let j = i + 1 + offset;
                sum -= self.bands[j * width + (b - (j - i))] * x;
            }
            out[i] = sum / self.bands[i * width + b];
        }
        Ok(())
    }
}

/// The factorised implicit-Euler step operator of a thermal (or any
/// diffusion-like) network with conductance `G` and diagonal capacitance
/// `C`: one step of `C · dx/dt = p − G · x` discretised implicitly is
/// `(C/Δt + G) · x_{k+1} = C/Δt · x_k + p`.
///
/// The stepping matrix is factorised once at construction
/// ([`BandedCholesky`], `O(n · b²)`); each [`ImplicitStepOperator::step_into`]
/// then costs one `O(n · b)` banded solve with zero allocation. This is the
/// sparse-grid counterpart of the dense [`crate::AffineStepOperator`] fast
/// path: the expensive, shape-dependent work happens exactly once per
/// (matrix, Δt) pair and is shareable across every simulation over the same
/// grid shape.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{CsrMatrix, ImplicitStepOperator, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// // One node leaking to ground: C dx/dt = p - g x, steady state p/g = 2.
/// let g = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.5)])?;
/// let op = ImplicitStepOperator::new(&g, &[1.0], 0.1)?;
/// let mut x = vec![0.0];
/// let mut next = vec![0.0];
/// let mut scratch = vec![0.0];
/// for _ in 0..400 {
///     op.step_into(&x, &[1.0], &mut next, &mut scratch)?;
///     std::mem::swap(&mut x, &mut next);
/// }
/// assert!((x[0] - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImplicitStepOperator {
    factorisation: BandedCholesky,
    capacitance_over_dt: Vec<f64>,
    time_step: f64,
}

impl ImplicitStepOperator {
    /// Builds and factorises the stepping matrix `C/Δt + G`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `capacitance.len()` differs
    ///   from the dimension of `conductance`.
    /// * [`LinalgError::NonFinite`] if the time step or a capacitance is
    ///   non-positive or non-finite.
    /// * Factorisation errors from [`BandedCholesky::new`].
    pub fn new(conductance: &CsrMatrix, capacitance: &[f64], time_step: f64) -> Result<Self> {
        if capacitance.len() != conductance.rows() {
            return Err(LinalgError::DimensionMismatch {
                expected: conductance.rows(),
                found: capacitance.len(),
                context: "ImplicitStepOperator::new capacitance",
            });
        }
        if !(time_step > 0.0 && time_step.is_finite()) {
            return Err(LinalgError::NonFinite {
                context: "ImplicitStepOperator::new time_step",
            });
        }
        if capacitance.iter().any(|c| !(*c > 0.0 && c.is_finite())) {
            return Err(LinalgError::NonFinite {
                context: "ImplicitStepOperator::new capacitance",
            });
        }
        let capacitance_over_dt: Vec<f64> = capacitance.iter().map(|c| c / time_step).collect();
        // Stamp C/Δt onto the diagonal of G and refactorise in band form.
        let n = conductance.rows();
        let mut triplets = Vec::with_capacity(conductance.nnz() + n);
        for (i, &c_over_dt) in capacitance_over_dt.iter().enumerate() {
            for (j, value) in conductance.row_entries(i) {
                triplets.push(crate::Triplet::new(i, j, value));
            }
            triplets.push(crate::Triplet::new(i, i, c_over_dt));
        }
        let lhs = CsrMatrix::from_triplets(n, n, &triplets)?;
        Ok(ImplicitStepOperator {
            factorisation: BandedCholesky::new(&lhs)?,
            capacitance_over_dt,
            time_step,
        })
    }

    /// Dimension of the state vector.
    pub fn dim(&self) -> usize {
        self.factorisation.dim()
    }

    /// The integration time step in seconds the operator was built for.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// Borrows the factorised stepping matrix.
    pub fn factorisation(&self) -> &BandedCholesky {
        &self.factorisation
    }

    /// Advances one implicit-Euler step: solves
    /// `(C/Δt + G) · next = C/Δt · state + power` into `next`, using
    /// `scratch` for the right-hand side. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any slice has a length
    /// other than `self.dim()`.
    pub fn step_into(
        &self,
        state: &[f64],
        power: &[f64],
        next: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        for (len, context) in [
            (state.len(), "ImplicitStepOperator::step_into state"),
            (power.len(), "ImplicitStepOperator::step_into power"),
            (scratch.len(), "ImplicitStepOperator::step_into scratch"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        for (s, ((&c, &x), &p)) in scratch
            .iter_mut()
            .zip(self.capacitance_over_dt.iter().zip(state).zip(power))
        {
            *s = c * x + p;
        }
        self.factorisation.solve_into(scratch, next)
    }

    /// Advances `steps` implicit-Euler steps from rest (zero state) under
    /// constant `power`, reusing the caller's buffers; `state` holds the
    /// final state on return. Allocation-free after the caller sizes the
    /// three buffers to [`ImplicitStepOperator::dim`].
    ///
    /// # Errors
    ///
    /// See [`ImplicitStepOperator::step_into`].
    pub fn advance_from_rest_into(
        &self,
        power: &[f64],
        steps: usize,
        state: &mut Vec<f64>,
        next: &mut Vec<f64>,
        scratch: &mut [f64],
    ) -> Result<()> {
        state.iter_mut().for_each(|s| *s = 0.0);
        for _ in 0..steps {
            self.step_into(state, power, next, scratch)?;
            std::mem::swap(state, next);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConjugateGradient, Triplet};

    /// 2D 5-point Laplacian-like SPD grid matrix with a leak to ground.
    fn grid_matrix(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut t = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                let c = iy * nx + ix;
                t.push(Triplet::new(c, c, 0.35));
                if ix + 1 < nx {
                    let e = c + 1;
                    t.push(Triplet::new(c, c, 1.0));
                    t.push(Triplet::new(e, e, 1.0));
                    t.push(Triplet::new(c, e, -1.0));
                    t.push(Triplet::new(e, c, -1.0));
                }
                if iy + 1 < ny {
                    let no = c + nx;
                    t.push(Triplet::new(c, c, 0.8));
                    t.push(Triplet::new(no, no, 0.8));
                    t.push(Triplet::new(c, no, -0.8));
                    t.push(Triplet::new(no, c, -0.8));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn bandwidth_is_detected_from_the_pattern() {
        let a = grid_matrix(5, 4);
        let chol = BandedCholesky::new(&a).unwrap();
        assert_eq!(chol.dim(), 20);
        assert_eq!(chol.bandwidth(), 5);
    }

    #[test]
    fn banded_solve_matches_conjugate_gradient() {
        let a = grid_matrix(6, 5);
        let chol = BandedCholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() + 1.5).collect();
        let direct = chol.solve(&b).unwrap();
        let iterative = ConjugateGradient::new()
            .with_tolerance(1e-12)
            .solve(&a, &b)
            .unwrap();
        for (x, y) in direct.iter().zip(&iterative.x) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        // Residual check against the matrix itself.
        let r = a.mul_vec(&direct).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_matrices_factorise_too() {
        // Fully dense SPD matrix: bandwidth n-1 degenerates to plain Cholesky.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 4.0),
                Triplet::new(0, 1, 1.0),
                Triplet::new(0, 2, 0.5),
                Triplet::new(1, 0, 1.0),
                Triplet::new(1, 1, 3.0),
                Triplet::new(1, 2, 0.25),
                Triplet::new(2, 0, 0.5),
                Triplet::new(2, 1, 0.25),
                Triplet::new(2, 2, 2.0),
            ],
        )
        .unwrap();
        let chol = BandedCholesky::new(&a).unwrap();
        assert_eq!(chol.bandwidth(), 2);
        let x = chol.solve(&[1.0, 2.0, 3.0]).unwrap();
        let r = a.mul_vec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 2.0).abs() < 1e-12);
        assert!((r[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_matrices() {
        let rect = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&empty),
            Err(LinalgError::Empty { .. })
        ));
        let asym = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&asym),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let nan = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, f64::NAN)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
        // Indefinite: zero diagonal.
        let indef = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.0)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_into_rejects_wrong_lengths() {
        let a = grid_matrix(2, 2);
        let chol = BandedCholesky::new(&a).unwrap();
        let mut out = vec![0.0; 4];
        assert!(chol.solve_into(&[1.0; 3], &mut out).is_err());
        let mut short = vec![0.0; 3];
        assert!(chol.solve_into(&[1.0; 4], &mut short).is_err());
    }

    #[test]
    fn step_operator_matches_the_closed_form_on_one_node() {
        // C dx/dt = p - g x with implicit Euler: x_{k+1} = (C/dt x_k + p) / (C/dt + g).
        let g = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 2.0)]).unwrap();
        let op = ImplicitStepOperator::new(&g, &[4.0], 0.5).unwrap();
        assert_eq!(op.dim(), 1);
        assert_eq!(op.time_step(), 0.5);
        let mut x = 0.0;
        let mut state = vec![0.0];
        let mut next = vec![0.0];
        let mut scratch = vec![0.0];
        for _ in 0..10 {
            op.step_into(&state, &[3.0], &mut next, &mut scratch)
                .unwrap();
            std::mem::swap(&mut state, &mut next);
            x = (8.0 * x + 3.0) / 10.0;
            assert!((state[0] - x).abs() < 1e-12);
        }
    }

    #[test]
    fn advancing_from_rest_converges_to_the_steady_state() {
        let a = grid_matrix(4, 4);
        let op = ImplicitStepOperator::new(&a, &[0.2; 16], 0.05).unwrap();
        let power: Vec<f64> = (0..16).map(|i| 0.5 + (i % 3) as f64).collect();
        let mut state = vec![0.0; 16];
        let mut next = vec![0.0; 16];
        let mut scratch = vec![0.0; 16];
        op.advance_from_rest_into(&power, 4000, &mut state, &mut next, &mut scratch)
            .unwrap();
        let steady = BandedCholesky::new(&a).unwrap().solve(&power).unwrap();
        for (x, s) in state.iter().zip(&steady) {
            assert!((x - s).abs() < 1e-6, "{x} vs {s}");
        }
    }

    #[test]
    fn steps_from_rest_rise_monotonically_under_constant_power() {
        let a = grid_matrix(3, 3);
        let op = ImplicitStepOperator::new(&a, &[0.1; 9], 0.02).unwrap();
        let power = vec![1.0; 9];
        let mut state = vec![0.0; 9];
        let mut next = vec![0.0; 9];
        let mut scratch = vec![0.0; 9];
        for _ in 0..50 {
            op.step_into(&state, &power, &mut next, &mut scratch)
                .unwrap();
            for (n, s) in next.iter().zip(&state) {
                assert!(n + 1e-12 >= *s, "iterates must not decrease");
            }
            std::mem::swap(&mut state, &mut next);
        }
    }

    #[test]
    fn step_operator_rejects_malformed_inputs() {
        let a = grid_matrix(2, 2);
        assert!(ImplicitStepOperator::new(&a, &[1.0; 3], 0.1).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0; 4], 0.0).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0; 4], f64::NAN).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0, 1.0, -1.0, 1.0], 0.1).is_err());
        let op = ImplicitStepOperator::new(&a, &[1.0; 4], 0.1).unwrap();
        let mut next = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        assert!(op
            .step_into(&[0.0; 3], &[0.0; 4], &mut next, &mut scratch)
            .is_err());
        assert!(op
            .step_into(&[0.0; 4], &[0.0; 3], &mut next, &mut scratch)
            .is_err());
    }
}
