//! Banded Cholesky factorisation and the implicit-Euler step operator built
//! on top of it.
//!
//! The grid thermal model assembles its conductance matrix over a regular
//! `nx × ny` mesh; numbered row-major, every cell couples only to itself and
//! its four mesh neighbours, so the matrix is symmetric positive definite
//! with half-bandwidth `nx`. A dense factorisation of such a system wastes
//! `O(n³)` work and `O(n²)` memory on structural zeros, while an iterative
//! solve (the steady-state path) pays tens of matrix passes *per right-hand
//! side* — ruinous for transient integration, which solves against the same
//! matrix once per time step. [`BandedCholesky`] factorises the band once in
//! `O(n · b²)` and then solves each right-hand side in `O(n · b)` without
//! allocating, and [`ImplicitStepOperator`] packages the factorisation of
//! the implicit-Euler stepping matrix `C/Δt + G` together with the `C/Δt`
//! diagonal so a whole transient simulation is a sequence of
//! [`ImplicitStepOperator::step_into`] calls — the sparse-system counterpart
//! of what [`crate::AffineStepOperator`] does for the dense RC path.

use crate::{CsrMatrix, LinalgError, Result};

/// Cholesky factorisation `A = L · Lᵀ` of a symmetric positive-definite
/// banded matrix, stored by diagonals.
///
/// The half-bandwidth is detected from the sparsity pattern of the input
/// [`CsrMatrix`]; entries outside the band do not exist by construction.
/// Factor once, then call [`BandedCholesky::solve_into`] per right-hand
/// side — the access pattern of transient integration, which solves against
/// one fixed stepping matrix thousands of times per simulated second.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{BandedCholesky, CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// // Tridiagonal SPD system.
/// let a = CsrMatrix::from_triplets(
///     3,
///     3,
///     &[
///         Triplet::new(0, 0, 2.0),
///         Triplet::new(0, 1, -1.0),
///         Triplet::new(1, 0, -1.0),
///         Triplet::new(1, 1, 2.0),
///         Triplet::new(1, 2, -1.0),
///         Triplet::new(2, 1, -1.0),
///         Triplet::new(2, 2, 2.0),
///     ],
/// )?;
/// let chol = BandedCholesky::new(&a)?;
/// let x = chol.solve(&[1.0, 0.0, 1.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedCholesky {
    /// Dimension of the factorised matrix.
    dim: usize,
    /// Half-bandwidth `b`: `A[i][j] = 0` whenever `|i - j| > b`.
    bandwidth: usize,
    /// Row-major band storage of `L`: `bands[i * (b + 1) + (b - (i - j))]`
    /// holds `L[i][j]` for `i - b <= j <= i` (leading rows are left-padded
    /// with zeros).
    bands: Vec<f64>,
}

impl BandedCholesky {
    /// Factorises a symmetric positive-definite matrix given in CSR form.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if the matrix is not square.
    /// * [`LinalgError::Empty`] if it has zero rows.
    /// * [`LinalgError::NonFinite`] if it contains NaN or infinite entries.
    /// * [`LinalgError::NotPositiveDefinite`] if it is asymmetric beyond
    ///   `1e-9` or a non-positive pivot is encountered.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty {
                context: "BandedCholesky::new",
            });
        }
        if !a.is_symmetric(1e-9) {
            return Err(LinalgError::NotPositiveDefinite { index: 0 });
        }

        let mut bandwidth = 0usize;
        for i in 0..n {
            for (j, value) in a.row_entries(i) {
                if !value.is_finite() {
                    return Err(LinalgError::NonFinite {
                        context: "BandedCholesky::new",
                    });
                }
                bandwidth = bandwidth.max(i.abs_diff(j));
            }
        }

        // Copy the lower triangle into band storage, then factorise in place.
        let width = bandwidth + 1;
        let mut bands = vec![0.0; n * width];
        for i in 0..n {
            for (j, value) in a.row_entries(i) {
                if j <= i {
                    bands[i * width + (bandwidth - (i - j))] = value;
                }
            }
        }

        for i in 0..n {
            let lo = i.saturating_sub(bandwidth);
            for j in lo..=i {
                // sum = A[i][j] - Σ_k L[i][k] · L[j][k], k in the band overlap.
                let mut sum = bands[i * width + (bandwidth - (i - j))];
                let k_lo = lo.max(j.saturating_sub(bandwidth));
                for k in k_lo..j {
                    sum -= bands[i * width + (bandwidth - (i - k))]
                        * bands[j * width + (bandwidth - (j - k))];
                }
                if j == i {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    bands[i * width + bandwidth] = sum.sqrt();
                } else {
                    bands[i * width + (bandwidth - (i - j))] = sum / bands[j * width + bandwidth];
                }
            }
        }

        Ok(BandedCholesky {
            dim: n,
            bandwidth,
            bands,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Detected half-bandwidth of the factorised matrix.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Solves `A · x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim];
        self.solve_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A · x = b` into a caller-provided buffer without allocating:
    /// forward substitution with `L` writes into `out`, then backward
    /// substitution with `Lᵀ` finishes in place. `rhs` and `out` may not
    /// alias but no scratch buffer is needed. Cost is `O(n · b)` per call —
    /// the hot-loop variant used by [`ImplicitStepOperator::step_into`].
    ///
    /// Both substitution sweeps traverse the factor's band rows
    /// *contiguously*: the backward sweep is written in column-oriented
    /// (saxpy) form, so `Lᵀ` is applied through the same cache-friendly row
    /// slices as `L` instead of striding down a column of band storage. The
    /// per-element accumulation order is exactly the per-column order of
    /// [`BandedCholesky::solve_mat_into`], which is what makes the multi-RHS
    /// path bit-identical to repeated single solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `rhs` or `out` has a
    /// length other than `self.dim()`.
    pub fn solve_into(&self, rhs: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.dim;
        for (len, context) in [
            (rhs.len(), "BandedCholesky::solve_into rhs"),
            (out.len(), "BandedCholesky::solve_into out"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        let b = self.bandwidth;
        let width = b + 1;
        // Forward: L · y = rhs. One dot product of the band row against the
        // already-solved prefix per row, accumulated in ascending-j order.
        for i in 0..n {
            let mut sum = rhs[i];
            let lo = i.saturating_sub(b);
            let row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            for (l, &y) in row.iter().zip(&out[lo..i]) {
                sum -= l * y;
            }
            out[i] = sum / self.bands[i * width + b];
        }
        // Backward: Lᵀ · x = y in column-oriented form — once x[i] is known,
        // its contribution `L[i][j] · x[i]` is swept out of every pending
        // y[j] through the contiguous band row i (an axpy), instead of each
        // x[i] gathering its own strided column of Lᵀ.
        for i in (0..n).rev() {
            let xi = out[i] / self.bands[i * width + b];
            out[i] = xi;
            let lo = i.saturating_sub(b);
            let row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            for (l, y) in row.iter().zip(&mut out[lo..i]) {
                *y -= l * xi;
            }
        }
        Ok(())
    }

    /// Solves `A · X = B` for a column-blocked right-hand-side matrix: `rhs`
    /// and `out` hold `dim × columns` values in row-major layout
    /// (`rhs[i * columns + c]` is row `i` of column `c`), so the `columns`
    /// systems advance through one pass over the factor instead of
    /// re-traversing the band per right-hand side.
    ///
    /// The inner kernel is register-blocked four lanes wide: each block of
    /// four columns runs the whole forward/backward substitution with its
    /// partial sums held in four independent register accumulators, so one
    /// pass over the factor advances four systems and the per-row working
    /// set never round-trips through memory (the naive lane-axpy form
    /// re-reads and re-writes every lane for every band coefficient, which
    /// measures no faster than repeated single solves). Lanes of a row are
    /// independent, so the blocking cannot change any lane's result: per
    /// column the accumulation order is identical to
    /// [`BandedCholesky::solve_into`], making this **bit-identical** to
    /// `columns` single solves — the property suite enforces it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `columns` is zero or
    /// either slice has a length other than `self.dim() * columns`.
    pub fn solve_mat_into(&self, rhs: &[f64], out: &mut [f64], columns: usize) -> Result<()> {
        let n = self.dim;
        if columns == 0 {
            return Err(LinalgError::DimensionMismatch {
                expected: 1,
                found: 0,
                context: "BandedCholesky::solve_mat_into columns",
            });
        }
        for (len, context) in [
            (rhs.len(), "BandedCholesky::solve_mat_into rhs"),
            (out.len(), "BandedCholesky::solve_mat_into out"),
        ] {
            if len != n * columns {
                return Err(LinalgError::DimensionMismatch {
                    expected: n * columns,
                    found: len,
                    context,
                });
            }
        }
        let mut c0 = 0;
        while c0 + 4 <= columns {
            self.solve_lanes4(rhs, out, columns, c0);
            c0 += 4;
        }
        for c in c0..columns {
            self.solve_lane(rhs, out, columns, c);
        }
        Ok(())
    }

    /// Solves lanes `c0..c0 + 4` of the row-major `dim × k` system with the
    /// four partial sums in register accumulators. Per lane the operation
    /// order matches [`BandedCholesky::solve_into`] exactly.
    fn solve_lanes4(&self, rhs: &[f64], out: &mut [f64], k: usize, c0: usize) {
        let n = self.dim;
        let b = self.bandwidth;
        let width = b + 1;
        // Forward: L · Y = B. The four accumulators are independent
        // dependency chains fed by one contiguous band-row stream.
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let band_row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            let r = i * k + c0;
            let mut acc = [rhs[r], rhs[r + 1], rhs[r + 2], rhs[r + 3]];
            for (l, j) in band_row.iter().zip(lo..i) {
                let y = &out[j * k + c0..j * k + c0 + 4];
                acc[0] -= l * y[0];
                acc[1] -= l * y[1];
                acc[2] -= l * y[2];
                acc[3] -= l * y[3];
            }
            let diag = self.bands[i * width + b];
            let row = &mut out[r..r + 4];
            row[0] = acc[0] / diag;
            row[1] = acc[1] / diag;
            row[2] = acc[2] / diag;
            row[3] = acc[3] / diag;
        }
        // Backward: Lᵀ · X = Y in the same column-oriented sweep as
        // `solve_into` — once a row's four x values are known (and kept in
        // registers), their contributions sweep out of every pending row.
        for i in (0..n).rev() {
            let lo = i.saturating_sub(b);
            let band_row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            let diag = self.bands[i * width + b];
            let r = i * k + c0;
            let x = [
                out[r] / diag,
                out[r + 1] / diag,
                out[r + 2] / diag,
                out[r + 3] / diag,
            ];
            out[r..r + 4].copy_from_slice(&x);
            for (l, j) in band_row.iter().zip(lo..i) {
                let y = &mut out[j * k + c0..j * k + c0 + 4];
                y[0] -= l * x[0];
                y[1] -= l * x[1];
                y[2] -= l * x[2];
                y[3] -= l * x[3];
            }
        }
    }

    /// Solves the single strided lane `c` of the row-major `dim × k` system
    /// — the remainder path of [`BandedCholesky::solve_mat_into`], with the
    /// operation order of [`BandedCholesky::solve_into`].
    fn solve_lane(&self, rhs: &[f64], out: &mut [f64], k: usize, c: usize) {
        let n = self.dim;
        let b = self.bandwidth;
        let width = b + 1;
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let band_row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            let mut sum = rhs[i * k + c];
            for (l, j) in band_row.iter().zip(lo..i) {
                sum -= l * out[j * k + c];
            }
            out[i * k + c] = sum / self.bands[i * width + b];
        }
        for i in (0..n).rev() {
            let lo = i.saturating_sub(b);
            let band_row = &self.bands[i * width + (b - (i - lo))..i * width + b];
            let xi = out[i * k + c] / self.bands[i * width + b];
            out[i * k + c] = xi;
            for (l, j) in band_row.iter().zip(lo..i) {
                out[j * k + c] -= l * xi;
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`BandedCholesky::solve_mat_into`].
    ///
    /// # Errors
    ///
    /// See [`BandedCholesky::solve_mat_into`].
    pub fn solve_mat(&self, rhs: &[f64], columns: usize) -> Result<Vec<f64>> {
        let mut out = vec![0.0; rhs.len()];
        self.solve_mat_into(rhs, &mut out, columns)?;
        Ok(out)
    }
}

/// `dst[c] -= coef * src[c]` over all lanes, manually unrolled four wide.
///
/// The pinned toolchain is stable (no `std::simd`), so the 4-lane blocks are
/// spelled out by hand; each lane is an independent dependency chain, which
/// is what lets the optimiser keep four fused multiply-subtracts in flight.
/// Per lane the operation is a single `-=`, so unrolling cannot change any
/// lane's result.
#[inline]
pub(crate) fn axpy_neg(coef: f64, src: &[f64], dst: &mut [f64]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (d4, s4) in (&mut d).zip(&mut s) {
        d4[0] -= coef * s4[0];
        d4[1] -= coef * s4[1];
        d4[2] -= coef * s4[2];
        d4[3] -= coef * s4[3];
    }
    for (dr, sr) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dr -= coef * *sr;
    }
}

/// The factorised implicit-Euler step operator of a thermal (or any
/// diffusion-like) network with conductance `G` and diagonal capacitance
/// `C`: one step of `C · dx/dt = p − G · x` discretised implicitly is
/// `(C/Δt + G) · x_{k+1} = C/Δt · x_k + p`.
///
/// The stepping matrix is factorised once at construction
/// ([`BandedCholesky`], `O(n · b²)`); each [`ImplicitStepOperator::step_into`]
/// then costs one `O(n · b)` banded solve with zero allocation. This is the
/// sparse-grid counterpart of the dense [`crate::AffineStepOperator`] fast
/// path: the expensive, shape-dependent work happens exactly once per
/// (matrix, Δt) pair and is shareable across every simulation over the same
/// grid shape.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{CsrMatrix, ImplicitStepOperator, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// // One node leaking to ground: C dx/dt = p - g x, steady state p/g = 2.
/// let g = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.5)])?;
/// let op = ImplicitStepOperator::new(&g, &[1.0], 0.1)?;
/// let mut x = vec![0.0];
/// let mut next = vec![0.0];
/// let mut scratch = vec![0.0];
/// for _ in 0..400 {
///     op.step_into(&x, &[1.0], &mut next, &mut scratch)?;
///     std::mem::swap(&mut x, &mut next);
/// }
/// assert!((x[0] - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImplicitStepOperator {
    factorisation: BandedCholesky,
    capacitance_over_dt: Vec<f64>,
    time_step: f64,
}

impl ImplicitStepOperator {
    /// Builds and factorises the stepping matrix `C/Δt + G`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `capacitance.len()` differs
    ///   from the dimension of `conductance`.
    /// * [`LinalgError::NonFinite`] if the time step or a capacitance is
    ///   non-positive or non-finite.
    /// * Factorisation errors from [`BandedCholesky::new`].
    pub fn new(conductance: &CsrMatrix, capacitance: &[f64], time_step: f64) -> Result<Self> {
        if capacitance.len() != conductance.rows() {
            return Err(LinalgError::DimensionMismatch {
                expected: conductance.rows(),
                found: capacitance.len(),
                context: "ImplicitStepOperator::new capacitance",
            });
        }
        if !(time_step > 0.0 && time_step.is_finite()) {
            return Err(LinalgError::NonFinite {
                context: "ImplicitStepOperator::new time_step",
            });
        }
        if capacitance.iter().any(|c| !(*c > 0.0 && c.is_finite())) {
            return Err(LinalgError::NonFinite {
                context: "ImplicitStepOperator::new capacitance",
            });
        }
        let capacitance_over_dt: Vec<f64> = capacitance.iter().map(|c| c / time_step).collect();
        // Stamp C/Δt onto the diagonal of G and refactorise in band form.
        let n = conductance.rows();
        let mut triplets = Vec::with_capacity(conductance.nnz() + n);
        for (i, &c_over_dt) in capacitance_over_dt.iter().enumerate() {
            for (j, value) in conductance.row_entries(i) {
                triplets.push(crate::Triplet::new(i, j, value));
            }
            triplets.push(crate::Triplet::new(i, i, c_over_dt));
        }
        let lhs = CsrMatrix::from_triplets(n, n, &triplets)?;
        Ok(ImplicitStepOperator {
            factorisation: BandedCholesky::new(&lhs)?,
            capacitance_over_dt,
            time_step,
        })
    }

    /// Dimension of the state vector.
    pub fn dim(&self) -> usize {
        self.factorisation.dim()
    }

    /// The integration time step in seconds the operator was built for.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// Borrows the factorised stepping matrix.
    pub fn factorisation(&self) -> &BandedCholesky {
        &self.factorisation
    }

    /// Advances one implicit-Euler step: solves
    /// `(C/Δt + G) · next = C/Δt · state + power` into `next`, using
    /// `scratch` for the right-hand side. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any slice has a length
    /// other than `self.dim()`.
    pub fn step_into(
        &self,
        state: &[f64],
        power: &[f64],
        next: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        for (len, context) in [
            (state.len(), "ImplicitStepOperator::step_into state"),
            (power.len(), "ImplicitStepOperator::step_into power"),
            (scratch.len(), "ImplicitStepOperator::step_into scratch"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        for (s, ((&c, &x), &p)) in scratch
            .iter_mut()
            .zip(self.capacitance_over_dt.iter().zip(state).zip(power))
        {
            *s = c * x + p;
        }
        self.factorisation.solve_into(scratch, next)
    }

    /// Advances `steps` implicit-Euler steps from rest (zero state) under
    /// constant `power`, reusing the caller's buffers; `state` holds the
    /// final state on return. Allocation-free after the caller sizes the
    /// three buffers to [`ImplicitStepOperator::dim`].
    ///
    /// # Errors
    ///
    /// See [`ImplicitStepOperator::step_into`].
    pub fn advance_from_rest_into(
        &self,
        power: &[f64],
        steps: usize,
        state: &mut Vec<f64>,
        next: &mut Vec<f64>,
        scratch: &mut [f64],
    ) -> Result<()> {
        state.iter_mut().for_each(|s| *s = 0.0);
        for _ in 0..steps {
            self.step_into(state, power, next, scratch)?;
            std::mem::swap(state, next);
        }
        Ok(())
    }

    /// Multi-RHS variant of [`ImplicitStepOperator::step_into`]: advances
    /// `columns` independent states one implicit-Euler step in a single
    /// matrix-matrix pass. All four buffers are `dim × columns` row-major
    /// matrices (`state[i * columns + c]` is node `i` of lane `c`). Because
    /// the stamped right-hand side is elementwise per lane and
    /// [`BandedCholesky::solve_mat_into`] is bit-identical per column to the
    /// single solve, the result of lane `c` equals a standalone `step_into`
    /// on that lane, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `columns` is zero or any
    /// slice has a length other than `self.dim() * columns`.
    pub fn step_mat_into(
        &self,
        state: &[f64],
        power: &[f64],
        next: &mut [f64],
        scratch: &mut [f64],
        columns: usize,
    ) -> Result<()> {
        let n = self.dim();
        if columns == 0 {
            return Err(LinalgError::DimensionMismatch {
                expected: 1,
                found: 0,
                context: "ImplicitStepOperator::step_mat_into columns",
            });
        }
        for (len, context) in [
            (state.len(), "ImplicitStepOperator::step_mat_into state"),
            (power.len(), "ImplicitStepOperator::step_mat_into power"),
            (scratch.len(), "ImplicitStepOperator::step_mat_into scratch"),
            (next.len(), "ImplicitStepOperator::step_mat_into next"),
        ] {
            if len != n * columns {
                return Err(LinalgError::DimensionMismatch {
                    expected: n * columns,
                    found: len,
                    context,
                });
            }
        }
        for (i, &c) in self.capacitance_over_dt.iter().enumerate() {
            let row = i * columns..(i + 1) * columns;
            for ((s, &x), &p) in scratch[row.clone()]
                .iter_mut()
                .zip(&state[row.clone()])
                .zip(&power[row])
            {
                *s = c * x + p;
            }
        }
        self.factorisation.solve_mat_into(scratch, next, columns)
    }

    /// Multi-RHS variant of [`ImplicitStepOperator::advance_from_rest_into`]:
    /// drives `columns` lanes from rest under their own constant per-lane
    /// `power` columns for `steps` steps. `state` holds the final `dim ×
    /// columns` matrix on return; per lane the trajectory is bit-identical
    /// to a standalone [`ImplicitStepOperator::advance_from_rest_into`].
    ///
    /// # Errors
    ///
    /// See [`ImplicitStepOperator::step_mat_into`].
    pub fn advance_many_from_rest_into(
        &self,
        power: &[f64],
        steps: usize,
        state: &mut Vec<f64>,
        next: &mut Vec<f64>,
        scratch: &mut [f64],
        columns: usize,
    ) -> Result<()> {
        state.iter_mut().for_each(|s| *s = 0.0);
        for _ in 0..steps {
            self.step_mat_into(state, power, next, scratch, columns)?;
            std::mem::swap(state, next);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConjugateGradient, Triplet};

    /// 2D 5-point Laplacian-like SPD grid matrix with a leak to ground.
    fn grid_matrix(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut t = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                let c = iy * nx + ix;
                t.push(Triplet::new(c, c, 0.35));
                if ix + 1 < nx {
                    let e = c + 1;
                    t.push(Triplet::new(c, c, 1.0));
                    t.push(Triplet::new(e, e, 1.0));
                    t.push(Triplet::new(c, e, -1.0));
                    t.push(Triplet::new(e, c, -1.0));
                }
                if iy + 1 < ny {
                    let no = c + nx;
                    t.push(Triplet::new(c, c, 0.8));
                    t.push(Triplet::new(no, no, 0.8));
                    t.push(Triplet::new(c, no, -0.8));
                    t.push(Triplet::new(no, c, -0.8));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn bandwidth_is_detected_from_the_pattern() {
        let a = grid_matrix(5, 4);
        let chol = BandedCholesky::new(&a).unwrap();
        assert_eq!(chol.dim(), 20);
        assert_eq!(chol.bandwidth(), 5);
    }

    #[test]
    fn banded_solve_matches_conjugate_gradient() {
        let a = grid_matrix(6, 5);
        let chol = BandedCholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() + 1.5).collect();
        let direct = chol.solve(&b).unwrap();
        let iterative = ConjugateGradient::new()
            .with_tolerance(1e-12)
            .solve(&a, &b)
            .unwrap();
        for (x, y) in direct.iter().zip(&iterative.x) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        // Residual check against the matrix itself.
        let r = a.mul_vec(&direct).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_matrices_factorise_too() {
        // Fully dense SPD matrix: bandwidth n-1 degenerates to plain Cholesky.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 4.0),
                Triplet::new(0, 1, 1.0),
                Triplet::new(0, 2, 0.5),
                Triplet::new(1, 0, 1.0),
                Triplet::new(1, 1, 3.0),
                Triplet::new(1, 2, 0.25),
                Triplet::new(2, 0, 0.5),
                Triplet::new(2, 1, 0.25),
                Triplet::new(2, 2, 2.0),
            ],
        )
        .unwrap();
        let chol = BandedCholesky::new(&a).unwrap();
        assert_eq!(chol.bandwidth(), 2);
        let x = chol.solve(&[1.0, 2.0, 3.0]).unwrap();
        let r = a.mul_vec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 2.0).abs() < 1e-12);
        assert!((r[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_matrices() {
        let rect = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&empty),
            Err(LinalgError::Empty { .. })
        ));
        let asym = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&asym),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let nan = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, f64::NAN)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
        // Indefinite: zero diagonal.
        let indef = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.0)]).unwrap();
        assert!(matches!(
            BandedCholesky::new(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_into_rejects_wrong_lengths() {
        let a = grid_matrix(2, 2);
        let chol = BandedCholesky::new(&a).unwrap();
        let mut out = vec![0.0; 4];
        assert!(chol.solve_into(&[1.0; 3], &mut out).is_err());
        let mut short = vec![0.0; 3];
        assert!(chol.solve_into(&[1.0; 4], &mut short).is_err());
    }

    #[test]
    fn step_operator_matches_the_closed_form_on_one_node() {
        // C dx/dt = p - g x with implicit Euler: x_{k+1} = (C/dt x_k + p) / (C/dt + g).
        let g = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 2.0)]).unwrap();
        let op = ImplicitStepOperator::new(&g, &[4.0], 0.5).unwrap();
        assert_eq!(op.dim(), 1);
        assert_eq!(op.time_step(), 0.5);
        let mut x = 0.0;
        let mut state = vec![0.0];
        let mut next = vec![0.0];
        let mut scratch = vec![0.0];
        for _ in 0..10 {
            op.step_into(&state, &[3.0], &mut next, &mut scratch)
                .unwrap();
            std::mem::swap(&mut state, &mut next);
            x = (8.0 * x + 3.0) / 10.0;
            assert!((state[0] - x).abs() < 1e-12);
        }
    }

    #[test]
    fn advancing_from_rest_converges_to_the_steady_state() {
        let a = grid_matrix(4, 4);
        let op = ImplicitStepOperator::new(&a, &[0.2; 16], 0.05).unwrap();
        let power: Vec<f64> = (0..16).map(|i| 0.5 + (i % 3) as f64).collect();
        let mut state = vec![0.0; 16];
        let mut next = vec![0.0; 16];
        let mut scratch = vec![0.0; 16];
        op.advance_from_rest_into(&power, 4000, &mut state, &mut next, &mut scratch)
            .unwrap();
        let steady = BandedCholesky::new(&a).unwrap().solve(&power).unwrap();
        for (x, s) in state.iter().zip(&steady) {
            assert!((x - s).abs() < 1e-6, "{x} vs {s}");
        }
    }

    #[test]
    fn steps_from_rest_rise_monotonically_under_constant_power() {
        let a = grid_matrix(3, 3);
        let op = ImplicitStepOperator::new(&a, &[0.1; 9], 0.02).unwrap();
        let power = vec![1.0; 9];
        let mut state = vec![0.0; 9];
        let mut next = vec![0.0; 9];
        let mut scratch = vec![0.0; 9];
        for _ in 0..50 {
            op.step_into(&state, &power, &mut next, &mut scratch)
                .unwrap();
            for (n, s) in next.iter().zip(&state) {
                assert!(n + 1e-12 >= *s, "iterates must not decrease");
            }
            std::mem::swap(&mut state, &mut next);
        }
    }

    #[test]
    fn multi_rhs_solve_is_bit_identical_to_repeated_single_solves() {
        let a = grid_matrix(6, 5);
        let chol = BandedCholesky::new(&a).unwrap();
        let n = chol.dim();
        // Column counts straddling the 4-lane unroll boundary, including the
        // degenerate single-column case.
        for k in [1usize, 3, 4, 5, 8, 11] {
            let rhs: Vec<f64> = (0..n * k)
                .map(|i| (i as f64 * 0.31).sin() * 4.0 + 0.5)
                .collect();
            let mat = chol.solve_mat(&rhs, k).unwrap();
            let mut single_rhs = vec![0.0; n];
            let mut single_out = vec![0.0; n];
            for c in 0..k {
                for i in 0..n {
                    single_rhs[i] = rhs[i * k + c];
                }
                chol.solve_into(&single_rhs, &mut single_out).unwrap();
                for i in 0..n {
                    assert_eq!(
                        mat[i * k + c],
                        single_out[i],
                        "lane {c} row {i} diverged from the single solve"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_rhs_steps_are_bit_identical_to_per_lane_stepping() {
        let a = grid_matrix(4, 4);
        let op = ImplicitStepOperator::new(&a, &[0.2; 16], 0.05).unwrap();
        let n = op.dim();
        let k = 6;
        let powers: Vec<f64> = (0..n * k).map(|i| 0.3 + (i % 7) as f64 * 0.4).collect();
        let steps = 40;

        let mut state = vec![0.0; n * k];
        let mut next = vec![0.0; n * k];
        let mut scratch = vec![0.0; n * k];
        op.advance_many_from_rest_into(&powers, steps, &mut state, &mut next, &mut scratch, k)
            .unwrap();

        let mut lane_power = vec![0.0; n];
        let mut lane_state = vec![0.0; n];
        let mut lane_next = vec![0.0; n];
        let mut lane_scratch = vec![0.0; n];
        for c in 0..k {
            for i in 0..n {
                lane_power[i] = powers[i * k + c];
            }
            op.advance_from_rest_into(
                &lane_power,
                steps,
                &mut lane_state,
                &mut lane_next,
                &mut lane_scratch,
            )
            .unwrap();
            for i in 0..n {
                assert_eq!(state[i * k + c], lane_state[i], "lane {c} node {i}");
            }
        }
    }

    #[test]
    fn multi_rhs_entry_points_reject_malformed_shapes() {
        let a = grid_matrix(3, 3);
        let chol = BandedCholesky::new(&a).unwrap();
        let mut out = vec![0.0; 18];
        assert!(chol.solve_mat_into(&[0.0; 18], &mut out, 0).is_err());
        assert!(chol.solve_mat_into(&[0.0; 17], &mut out, 2).is_err());
        assert!(chol.solve_mat_into(&[0.0; 18], &mut out[..17], 2).is_err());
        let op = ImplicitStepOperator::new(&a, &[1.0; 9], 0.1).unwrap();
        let mut next = vec![0.0; 18];
        let mut scratch = vec![0.0; 18];
        assert!(op
            .step_mat_into(&[0.0; 18], &[0.0; 18], &mut next, &mut scratch, 0)
            .is_err());
        assert!(op
            .step_mat_into(&[0.0; 9], &[0.0; 18], &mut next, &mut scratch, 2)
            .is_err());
    }

    #[test]
    fn step_operator_rejects_malformed_inputs() {
        let a = grid_matrix(2, 2);
        assert!(ImplicitStepOperator::new(&a, &[1.0; 3], 0.1).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0; 4], 0.0).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0; 4], f64::NAN).is_err());
        assert!(ImplicitStepOperator::new(&a, &[1.0, 1.0, -1.0, 1.0], 0.1).is_err());
        let op = ImplicitStepOperator::new(&a, &[1.0; 4], 0.1).unwrap();
        let mut next = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        assert!(op
            .step_into(&[0.0; 3], &[0.0; 4], &mut next, &mut scratch)
            .is_err());
        assert!(op
            .step_into(&[0.0; 4], &[0.0; 3], &mut next, &mut scratch)
            .is_err());
    }
}
