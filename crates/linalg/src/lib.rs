//! Small, dependency-free linear-algebra kernels for the `thermsched` workspace.
//!
//! The compact thermal model used by `thermsched-thermal` reduces to solving
//! linear systems `G · T = P` where `G` is a symmetric, strictly diagonally
//! dominant thermal-conductance matrix (steady state), and to repeatedly
//! solving slightly perturbed systems during transient integration. The
//! matrices involved are small (tens to a few hundred nodes), so simple dense
//! factorisations and classic iterative methods are more than adequate; this
//! crate provides them without pulling a large external dependency into the
//! workspace.
//!
//! # Contents
//!
//! * [`DenseMatrix`] — row-major dense matrix with the usual arithmetic.
//! * [`LuDecomposition`] — LU factorisation with partial pivoting.
//! * [`CholeskyDecomposition`] — Cholesky factorisation for SPD systems.
//! * [`AffineStepOperator`] — the `k`-step operator of an affine recurrence,
//!   built by repeated squaring (the transient solver's fast path).
//! * [`CsrMatrix`] — compressed-sparse-row matrix for larger grids.
//! * [`BandedCholesky`] — direct factorisation of SPD banded systems (the
//!   grid models), with `O(n · b)` allocation-free repeated solves.
//! * [`ImplicitStepOperator`] — the factorised implicit-Euler stepping
//!   matrix `C/Δt + G` of a sparse network (the grid transient path).
//! * [`AdiStepOperator`] — Peaceman–Rachford alternating-direction stepping
//!   that exploits the grid's Kronecker structure: `O(n)` per step instead
//!   of `O(n · b)`, for high-resolution dies.
//! * [`ConjugateGradient`] and [`GaussSeidel`] — iterative solvers.
//!
//! The factorisations additionally expose allocation-free `solve_into`
//! variants for hot loops that solve against the same matrix thousands of
//! times per simulated second, and `solve_mat_into` multi-RHS variants that
//! advance many column-blocked right-hand sides through one pass over the
//! factor (bit-identical per column to the single-RHS solve).
//!
//! # Example
//!
//! ```
//! use thermsched_linalg::{DenseMatrix, LuDecomposition};
//!
//! # fn main() -> Result<(), thermsched_linalg::LinalgError> {
//! let a = DenseMatrix::from_rows(&[
//!     vec![4.0, 1.0],
//!     vec![1.0, 3.0],
//! ])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((a.mul_vec(&x)?[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adi;
mod banded;
mod cg;
mod cholesky;
mod dense;
mod error;
mod gauss_seidel;
mod lu;
mod sparse;
mod step_operator;
mod vector;

pub use adi::AdiStepOperator;
pub use banded::{BandedCholesky, ImplicitStepOperator};
pub use cg::{ConjugateGradient, IterativeSolution};
pub use cholesky::CholeskyDecomposition;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use gauss_seidel::GaussSeidel;
pub use lu::LuDecomposition;
pub use sparse::{CsrMatrix, Triplet};
pub use step_operator::AffineStepOperator;
pub use vector::{axpy, dot, norm2, norm_inf, scale, sub};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = LinalgError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }
}
