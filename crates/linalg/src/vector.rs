//! Free functions on `&[f64]` vectors.
//!
//! These helpers are deliberately plain-slice based so that callers can use
//! them on `Vec<f64>` buffers they already own without any wrapper type.

use crate::{LinalgError, Result};

/// Dot product of two vectors.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the vectors have different
/// lengths.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let d = thermsched_linalg::dot(&[1.0, 2.0], &[3.0, 4.0])?;
/// assert_eq!(d, 11.0);
/// # Ok(())
/// # }
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: a.len(),
            found: b.len(),
            context: "dot product",
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Euclidean (L2) norm of a vector.
///
/// # Example
///
/// ```
/// assert_eq!(thermsched_linalg::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum-magnitude (infinity) norm of a vector. Returns `0.0` for an empty
/// slice.
///
/// # Example
///
/// ```
/// assert_eq!(thermsched_linalg::norm_inf(&[1.0, -7.0, 3.0]), 7.0);
/// ```
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// In-place `y += alpha * x`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the vectors have different
/// lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: y.len(),
            found: x.len(),
            context: "axpy",
        });
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Returns `a - b` as a new vector.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the vectors have different
/// lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: a.len(),
            found: b.len(),
            context: "vector subtraction",
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// In-place multiplication of every element by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
    }

    #[test]
    fn dot_product_empty_is_zero() {
        assert_eq!(dot(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn dot_product_rejects_mismatched_lengths() {
        let err = dot(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-1.0, 0.5]), 1.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn axpy_rejects_mismatch() {
        let mut y = vec![1.0];
        assert!(axpy(1.0, &[1.0, 2.0], &mut y).is_err());
    }

    #[test]
    fn sub_and_scale() {
        let d = sub(&[3.0, 2.0], &[1.0, 5.0]).unwrap();
        assert_eq!(d, vec![2.0, -3.0]);
        let mut v = vec![1.0, -2.0];
        scale(-2.0, &mut v);
        assert_eq!(v, vec![-2.0, 4.0]);
    }
}
