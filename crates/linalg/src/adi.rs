//! Alternating-direction-implicit (ADI) stepping for grid-structured RC
//! networks.
//!
//! The grid thermal model's conductance matrix has Kronecker structure:
//!
//! ```text
//! G = g_v · I  +  I_ny ⊗ Tx  +  Ty ⊗ I_nx
//! ```
//!
//! where `Tx = g_x · L_nx` and `Ty = g_y · L_ny` are scaled 1D Laplacians
//! along the die's x and y directions and `g_v` is the uniform vertical leak
//! to the package. A banded Cholesky factorisation of `C/Δt + G` costs
//! `O(n · b²)` to build and `O(n · b)` per step with `b = nx`; both grow
//! quickly with resolution. The Peaceman–Rachford ADI splitting instead
//! solves only *tridiagonal* systems — `O(n)` setup and `O(n)` per step —
//! which is what pushes feasible die resolution from 24×24 toward 128×128+.
//!
//! # The splitting
//!
//! With `Hx = I ⊗ Tx + (g_v/2)·I`, `Hy = Ty ⊗ I + (g_v/2)·I` (so
//! `Hx + Hy = G`, both SPD, and they commute because they act on different
//! Kronecker factors), one full step of size `Δt` is the classic pair of
//! half-steps, `r = 2c/Δt`:
//!
//! ```text
//! (r·I + Hx) u*      = (r·I − Hy) uⁿ  + p      x-implicit sweep
//! (r·I + Hy) uⁿ⁺¹    = (r·I − Hx) u*  + p      y-implicit sweep
//! ```
//!
//! Commuting SPD splits make the step operator's spectral radius `< 1` for
//! *any* `Δt > 0` (unconditional stability), and the fixed point satisfies
//! `G·u = p` exactly — the scheme converges to the true steady state, not an
//! approximation of it (the unit suite pins this).
//!
//! # Why it is fast
//!
//! Coefficients are uniform, so **one** `nx`-point tridiagonal factorisation
//! serves all `ny` x-sweeps and one `ny`-point factorisation serves all `nx`
//! y-sweeps. The x-sweeps run over contiguous rows; the y-sweeps are done in
//! lockstep across all `nx` lanes of a grid row at a time, so every inner
//! loop in the operator walks contiguous memory through the 4-lane unrolled
//! [`axpy_neg`]-style kernels.

use crate::banded::axpy_neg;
use crate::{LinalgError, Result};

/// Shared constant-coefficient tridiagonal factorisation: the Thomas
/// algorithm's forward-elimination multipliers and pivots for a symmetric
/// matrix with per-row diagonal `d[i]` and constant off-diagonal `off`.
#[derive(Debug, Clone)]
struct TridiagFactor {
    /// Elimination multipliers `w[i] = off / pivot[i-1]` (index 0 unused).
    mults: Vec<f64>,
    /// Pivots `pivot[i] = d[i] - w[i] · off`.
    pivots: Vec<f64>,
    /// The constant sub/super-diagonal entry.
    off: f64,
}

impl TridiagFactor {
    /// Factorises `diag(d) + off · (sub + super)` where `d[i] = base +
    /// coupling · degree(i)` is the 1D Laplacian diagonal (degree 1 at the
    /// two boundary points, 2 in the interior) shifted by `base`.
    fn laplacian(n: usize, base: f64, coupling: f64) -> Result<Self> {
        let off = -coupling;
        let degree = |i: usize| -> f64 {
            if n == 1 {
                0.0
            } else if i == 0 || i == n - 1 {
                1.0
            } else {
                2.0
            }
        };
        let mut mults = vec![0.0; n];
        let mut pivots = vec![0.0; n];
        pivots[0] = base + coupling * degree(0);
        for i in 1..n {
            if pivots[i - 1] <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { index: i - 1 });
            }
            mults[i] = off / pivots[i - 1];
            pivots[i] = base + coupling * degree(i) - mults[i] * off;
        }
        if pivots[n - 1] <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { index: n - 1 });
        }
        Ok(TridiagFactor { mults, pivots, off })
    }

    /// Solves one system in place over a contiguous slice (scalar Thomas
    /// sweep) — used row by row for the x-direction.
    #[inline]
    fn solve_contiguous(&self, b: &mut [f64]) {
        let n = b.len();
        for i in 1..n {
            b[i] -= self.mults[i] * b[i - 1];
        }
        b[n - 1] /= self.pivots[n - 1];
        for i in (0..n - 1).rev() {
            b[i] = (b[i] - self.off * b[i + 1]) / self.pivots[i];
        }
    }

    /// Solves `lanes` systems in lockstep over a row-major `n × lanes`
    /// matrix — the y-direction sweep, where each grid *row* of `lanes`
    /// values is contiguous and the recurrence strides across rows. Every
    /// inner loop is a full-row axpy/scale, the vectorisable direction.
    #[inline]
    fn solve_lanes(&self, data: &mut [f64], lanes: usize) {
        let n = self.pivots.len();
        for i in 1..n {
            let (prev, cur) = data.split_at_mut(i * lanes);
            axpy_neg(self.mults[i], &prev[(i - 1) * lanes..], &mut cur[..lanes]);
        }
        let last_pivot = self.pivots[n - 1];
        for v in &mut data[(n - 1) * lanes..] {
            *v /= last_pivot;
        }
        for i in (0..n - 1).rev() {
            let (cur, next) = data.split_at_mut((i + 1) * lanes);
            let cur = &mut cur[i * lanes..];
            let next = &next[..lanes];
            let pivot = self.pivots[i];
            let off = self.off;
            let mut c4 = cur.chunks_exact_mut(4);
            let mut n4 = next.chunks_exact(4);
            for (c, nx) in (&mut c4).zip(&mut n4) {
                c[0] = (c[0] - off * nx[0]) / pivot;
                c[1] = (c[1] - off * nx[1]) / pivot;
                c[2] = (c[2] - off * nx[2]) / pivot;
                c[3] = (c[3] - off * nx[3]) / pivot;
            }
            for (c, nx) in c4.into_remainder().iter_mut().zip(n4.remainder()) {
                *c = (*c - off * nx) / pivot;
            }
        }
    }
}

/// Peaceman–Rachford ADI step operator for a uniform `nx × ny` grid RC
/// network — the structure-exploiting counterpart of
/// [`crate::ImplicitStepOperator`].
///
/// Setup and each step cost `O(nx · ny)` (two tridiagonal factorisations of
/// sizes `nx` and `ny`, shared by every sweep), versus `O(n · b²)` setup and
/// `O(n · b)` per step for the banded factorisation. The operator is
/// unconditionally stable and its fixed point under constant power is the
/// exact steady state `G · u = p`; mid-transient iterates differ from
/// implicit Euler by `O(Δt)`, so consumers pin it against the banded
/// reference with a tolerance band rather than bit-exactness.
///
/// All states are *rises over ambient*; `step_into` mirrors the buffer
/// discipline of [`crate::ImplicitStepOperator::step_into`].
#[derive(Debug, Clone)]
pub struct AdiStepOperator {
    nx: usize,
    ny: usize,
    g_lat_x: f64,
    g_lat_y: f64,
    g_vertical_half: f64,
    /// `2c/Δt` — the Peaceman–Rachford half-step coefficient.
    r: f64,
    time_step: f64,
    x_factor: TridiagFactor,
    y_factor: TridiagFactor,
}

impl AdiStepOperator {
    /// Builds the operator for an `nx × ny` grid with uniform lateral
    /// conductances `g_lat_x`/`g_lat_y` (per neighbouring cell pair along
    /// each direction), uniform vertical conductance `g_vertical` per cell,
    /// uniform per-cell `capacitance` and step size `time_step`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a zero-sized grid,
    /// [`LinalgError::NonFinite`] for non-finite coefficients and
    /// [`LinalgError::NotPositiveDefinite`] when `g_vertical`, `capacitance`
    /// or `time_step` is not strictly positive or a lateral conductance is
    /// negative (the split operators must stay SPD).
    pub fn new(
        nx: usize,
        ny: usize,
        g_lat_x: f64,
        g_lat_y: f64,
        g_vertical: f64,
        capacitance: f64,
        time_step: f64,
    ) -> Result<Self> {
        if nx == 0 || ny == 0 {
            return Err(LinalgError::Empty {
                context: "AdiStepOperator::new grid",
            });
        }
        for (value, context) in [
            (g_lat_x, "AdiStepOperator::new g_lat_x"),
            (g_lat_y, "AdiStepOperator::new g_lat_y"),
            (g_vertical, "AdiStepOperator::new g_vertical"),
            (capacitance, "AdiStepOperator::new capacitance"),
            (time_step, "AdiStepOperator::new time_step"),
        ] {
            if !value.is_finite() {
                return Err(LinalgError::NonFinite { context });
            }
        }
        if g_vertical <= 0.0 || capacitance <= 0.0 || time_step <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { index: 0 });
        }
        if g_lat_x < 0.0 || g_lat_y < 0.0 {
            return Err(LinalgError::NotPositiveDefinite { index: 0 });
        }
        let r = 2.0 * capacitance / time_step;
        let g_vertical_half = 0.5 * g_vertical;
        let x_factor = TridiagFactor::laplacian(nx, r + g_vertical_half, g_lat_x)?;
        let y_factor = TridiagFactor::laplacian(ny, r + g_vertical_half, g_lat_y)?;
        Ok(AdiStepOperator {
            nx,
            ny,
            g_lat_x,
            g_lat_y,
            g_vertical_half,
            r,
            time_step,
            x_factor,
            y_factor,
        })
    }

    /// Number of grid cells (`nx · ny`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.nx * self.ny
    }

    /// The step size `Δt` the operator was built for.
    #[must_use]
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// Advances one full Peaceman–Rachford step: two alternating tridiagonal
    /// half-sweeps. `state` is the current rise field, `power` the constant
    /// per-cell injection over the step; `next` receives `uⁿ⁺¹` and
    /// `scratch` holds the intermediate `u*`. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any slice has a length
    /// other than `self.dim()`.
    pub fn step_into(
        &self,
        state: &[f64],
        power: &[f64],
        next: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        for (len, context) in [
            (state.len(), "AdiStepOperator::step_into state"),
            (power.len(), "AdiStepOperator::step_into power"),
            (next.len(), "AdiStepOperator::step_into next"),
            (scratch.len(), "AdiStepOperator::step_into scratch"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        // Half-step 1: scratch = (r·I − Hy)·state + power, then x-sweeps.
        self.stamp_minus_hy(state, power, scratch);
        for row in scratch.chunks_exact_mut(self.nx) {
            self.x_factor.solve_contiguous(row);
        }
        // Half-step 2: next = (r·I − Hx)·u* + power, then lockstep y-sweeps.
        self.stamp_minus_hx(scratch, power, next);
        self.y_factor.solve_lanes(next, self.nx);
        Ok(())
    }

    /// Advances `steps` Peaceman–Rachford steps from rest (zero rise) under
    /// constant `power`; `state` holds the final field on return. Mirrors
    /// [`crate::ImplicitStepOperator::advance_from_rest_into`].
    ///
    /// # Errors
    ///
    /// See [`AdiStepOperator::step_into`].
    pub fn advance_from_rest_into(
        &self,
        power: &[f64],
        steps: usize,
        state: &mut Vec<f64>,
        next: &mut Vec<f64>,
        scratch: &mut [f64],
    ) -> Result<()> {
        state.iter_mut().for_each(|s| *s = 0.0);
        for _ in 0..steps {
            self.step_into(state, power, next, scratch)?;
            std::mem::swap(state, next);
        }
        Ok(())
    }

    /// `out = (r·I − Hy)·u + p` where `Hy = Ty ⊗ I + (g_v/2)·I`: each grid
    /// row combines with its north/south neighbour rows, all as contiguous
    /// `nx`-lane operations.
    fn stamp_minus_hy(&self, u: &[f64], p: &[f64], out: &mut [f64]) {
        let (nx, ny, gy) = (self.nx, self.ny, self.g_lat_y);
        for iy in 0..ny {
            let degree = if ny == 1 {
                0.0
            } else if iy == 0 || iy == ny - 1 {
                1.0
            } else {
                2.0
            };
            let diag = self.r - self.g_vertical_half - gy * degree;
            let row = iy * nx..(iy + 1) * nx;
            for ((o, &ui), &pi) in out[row.clone()]
                .iter_mut()
                .zip(&u[row.clone()])
                .zip(&p[row])
            {
                *o = diag * ui + pi;
            }
            if iy > 0 {
                let (north, cur) = (&u[(iy - 1) * nx..iy * nx], &mut out[iy * nx..(iy + 1) * nx]);
                axpy_neg(-gy, north, cur);
            }
            if iy + 1 < ny {
                let (south, cur) = (
                    &u[(iy + 1) * nx..(iy + 2) * nx],
                    &mut out[iy * nx..(iy + 1) * nx],
                );
                axpy_neg(-gy, south, cur);
            }
        }
    }

    /// `out = (r·I − Hx)·u + p` where `Hx = I ⊗ Tx + (g_v/2)·I`: each cell
    /// combines with its east/west neighbours inside its own contiguous row.
    fn stamp_minus_hx(&self, u: &[f64], p: &[f64], out: &mut [f64]) {
        let (nx, gx) = (self.nx, self.g_lat_x);
        for ((row_out, row_u), row_p) in out
            .chunks_exact_mut(nx)
            .zip(u.chunks_exact(nx))
            .zip(p.chunks_exact(nx))
        {
            for (ix, ((o, &ui), &pi)) in row_out.iter_mut().zip(row_u).zip(row_p).enumerate() {
                let degree = if nx == 1 {
                    0.0
                } else if ix == 0 || ix == nx - 1 {
                    1.0
                } else {
                    2.0
                };
                let mut v = (self.r - self.g_vertical_half - gx * degree) * ui + pi;
                if ix > 0 {
                    v += gx * row_u[ix - 1];
                }
                if ix + 1 < nx {
                    v += gx * row_u[ix + 1];
                }
                *o = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandedCholesky, CsrMatrix, ImplicitStepOperator, Triplet};

    /// Assembles the full grid conductance matrix the ADI operator splits,
    /// exactly as the grid thermal model stamps it.
    fn grid_conductance(nx: usize, ny: usize, gx: f64, gy: f64, gv: f64) -> CsrMatrix {
        let n = nx * ny;
        let mut t = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                let c = iy * nx + ix;
                t.push(Triplet::new(c, c, gv));
                if ix + 1 < nx {
                    let e = c + 1;
                    t.push(Triplet::new(c, c, gx));
                    t.push(Triplet::new(e, e, gx));
                    t.push(Triplet::new(c, e, -gx));
                    t.push(Triplet::new(e, c, -gx));
                }
                if iy + 1 < ny {
                    let s = c + nx;
                    t.push(Triplet::new(c, c, gy));
                    t.push(Triplet::new(s, s, gy));
                    t.push(Triplet::new(c, s, -gy));
                    t.push(Triplet::new(s, c, -gy));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn ramp_power(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.4 + (i % 5) as f64 * 0.7).collect()
    }

    #[test]
    fn fixed_point_is_the_exact_steady_state() {
        let (nx, ny, gx, gy, gv) = (7, 5, 1.3, 0.9, 0.25);
        let op = AdiStepOperator::new(nx, ny, gx, gy, gv, 0.05, 0.02).unwrap();
        assert_eq!(op.dim(), 35);
        let power = ramp_power(35);
        let mut state = vec![0.0; 35];
        let mut next = vec![0.0; 35];
        let mut scratch = vec![0.0; 35];
        op.advance_from_rest_into(&power, 6000, &mut state, &mut next, &mut scratch)
            .unwrap();
        let g = grid_conductance(nx, ny, gx, gy, gv);
        let steady = BandedCholesky::new(&g).unwrap().solve(&power).unwrap();
        for (cell, (x, s)) in state.iter().zip(&steady).enumerate() {
            assert!(
                (x - s).abs() < 1e-8 * s.abs().max(1.0),
                "cell {cell}: {x} vs {s}"
            );
        }
    }

    #[test]
    fn transient_tracks_implicit_euler_within_a_step_size_band() {
        // Both schemes are consistent discretisations of the same ODE, so at
        // matched small steps their mid-transient iterates differ by O(Δt):
        // within 10% of the local rise here (the worst step is the first,
        // where first-order Euler lags the second-order splitting most).
        let (nx, ny, gx, gy, gv) = (6, 6, 1.0, 1.4, 0.3);
        let dt = 5e-3;
        let adi = AdiStepOperator::new(nx, ny, gx, gy, gv, 0.04, dt).unwrap();
        let g = grid_conductance(nx, ny, gx, gy, gv);
        let euler = ImplicitStepOperator::new(&g, &[0.04; 36], dt).unwrap();
        let power = ramp_power(36);

        let mut a_state = vec![0.0; 36];
        let mut a_next = vec![0.0; 36];
        let mut a_scratch = vec![0.0; 36];
        let mut e_state = vec![0.0; 36];
        let mut e_next = vec![0.0; 36];
        let mut e_scratch = vec![0.0; 36];
        for step in 1..=200 {
            adi.step_into(&a_state, &power, &mut a_next, &mut a_scratch)
                .unwrap();
            std::mem::swap(&mut a_state, &mut a_next);
            euler
                .step_into(&e_state, &power, &mut e_next, &mut e_scratch)
                .unwrap();
            std::mem::swap(&mut e_state, &mut e_next);
            for (cell, (a, e)) in a_state.iter().zip(&e_state).enumerate() {
                assert!(
                    (a - e).abs() <= 0.10 * e.abs().max(0.5),
                    "step {step} cell {cell}: adi {a} vs euler {e}"
                );
            }
        }
    }

    #[test]
    fn large_steps_remain_stable_and_still_converge() {
        // Unconditional stability: a step size 25x the problem's slowest
        // time constant (c/g_v = 0.2 s) must neither blow up nor stall short
        // of the steady state. Note ADI's damping factor approaches 1 as
        // Δt → ∞ (each eigenvalue factor is (r−λ)/(r+λ) with r = 2c/Δt), so
        // huge steps stay *stable* but converge slowly — hence 2000 steps.
        let (nx, ny, gx, gy, gv) = (8, 4, 2.0, 1.1, 0.5);
        let op = AdiStepOperator::new(nx, ny, gx, gy, gv, 0.1, 5.0).unwrap();
        let power = ramp_power(32);
        let mut state = vec![0.0; 32];
        let mut next = vec![0.0; 32];
        let mut scratch = vec![0.0; 32];
        op.advance_from_rest_into(&power, 2000, &mut state, &mut next, &mut scratch)
            .unwrap();
        let g = grid_conductance(nx, ny, gx, gy, gv);
        let steady = BandedCholesky::new(&g).unwrap().solve(&power).unwrap();
        for (x, s) in state.iter().zip(&steady) {
            assert!(x.is_finite());
            assert!((x - s).abs() < 1e-6 * s.abs().max(1.0));
        }
    }

    #[test]
    fn degenerate_single_row_and_column_grids_work() {
        for (nx, ny) in [(1usize, 6usize), (6, 1), (1, 1)] {
            let n = nx * ny;
            let op = AdiStepOperator::new(nx, ny, 1.2, 0.8, 0.4, 0.02, 0.01).unwrap();
            let power = ramp_power(n);
            let mut state = vec![0.0; n];
            let mut next = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            op.advance_from_rest_into(&power, 3000, &mut state, &mut next, &mut scratch)
                .unwrap();
            let g = grid_conductance(nx, ny, 1.2, 0.8, 0.4);
            let steady = BandedCholesky::new(&g).unwrap().solve(&power).unwrap();
            for (x, s) in state.iter().zip(&steady) {
                assert!(
                    (x - s).abs() < 1e-8 * s.abs().max(1.0),
                    "{nx}x{ny}: {x} vs {s}"
                );
            }
        }
    }

    #[test]
    fn rejects_malformed_grids_and_inputs() {
        assert!(AdiStepOperator::new(0, 4, 1.0, 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(AdiStepOperator::new(4, 0, 1.0, 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(AdiStepOperator::new(4, 4, -1.0, 1.0, 1.0, 1.0, 0.1).is_err());
        assert!(AdiStepOperator::new(4, 4, 1.0, 1.0, 0.0, 1.0, 0.1).is_err());
        assert!(AdiStepOperator::new(4, 4, 1.0, 1.0, 1.0, 0.0, 0.1).is_err());
        assert!(AdiStepOperator::new(4, 4, 1.0, 1.0, 1.0, 1.0, 0.0).is_err());
        assert!(AdiStepOperator::new(4, 4, f64::NAN, 1.0, 1.0, 1.0, 0.1).is_err());
        let op = AdiStepOperator::new(3, 3, 1.0, 1.0, 1.0, 1.0, 0.1).unwrap();
        let mut next = vec![0.0; 9];
        let mut scratch = vec![0.0; 9];
        assert!(op
            .step_into(&[0.0; 8], &[0.0; 9], &mut next, &mut scratch)
            .is_err());
        assert!(op
            .step_into(&[0.0; 9], &[0.0; 8], &mut next, &mut scratch)
            .is_err());
    }
}
