//! Cholesky factorisation for symmetric positive-definite systems.

use crate::{DenseMatrix, LinalgError, Result};

/// Cholesky factorisation `A = L · Lᵀ` of a symmetric positive-definite matrix.
///
/// Thermal-conductance matrices built by `thermsched-thermal` are symmetric
/// and positive definite (every node has a path to thermal ground), so
/// Cholesky is the natural factorisation: roughly half the work of LU and it
/// doubles as a cheap positive-definiteness check on the assembled model.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{CholeskyDecomposition, DenseMatrix};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[
///     vec![4.0, 2.0],
///     vec![2.0, 3.0],
/// ])?;
/// let chol = CholeskyDecomposition::new(&a)?;
/// let x = chol.solve(&[6.0, 5.0])?;
/// assert!((a.mul_vec(&x)?[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    /// Lower-triangular factor `L` (upper triangle is zero).
    l: DenseMatrix,
}

impl CholeskyDecomposition {
    /// Factorises the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry is checked with a
    /// loose tolerance first so that an accidentally asymmetric matrix fails
    /// loudly rather than silently producing a factor of the wrong matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero rows.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinities.
    /// * [`LinalgError::NotPositiveDefinite`] if `a` is asymmetric or a
    ///   non-positive pivot is found.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty {
                context: "CholeskyDecomposition::new",
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                context: "CholeskyDecomposition::new",
            });
        }
        let sym_tol = 1e-9 * a.max_abs().max(1.0);
        if !a.is_symmetric(sym_tol) {
            return Err(LinalgError::NotPositiveDefinite { index: 0 });
        }

        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A · x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        let mut out = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        self.solve_into(b, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Solves `A · x = b` into a caller-provided buffer without allocating.
    ///
    /// `scratch` holds the intermediate vector `y` of the forward
    /// substitution `L · y = b`; `out` receives the solution of the backward
    /// substitution `Lᵀ · x = y`. Both must have length
    /// [`CholeskyDecomposition::dim`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `rhs`, `out` or
    /// `scratch` has a length other than `self.dim()`.
    pub fn solve_into(&self, rhs: &[f64], out: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let n = self.dim();
        for (len, context) in [
            (rhs.len(), "CholeskyDecomposition::solve_into rhs"),
            (out.len(), "CholeskyDecomposition::solve_into out"),
            (scratch.len(), "CholeskyDecomposition::solve_into scratch"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        // Forward substitution: L · y = b, y stored in scratch.
        for i in 0..n {
            let mut sum = rhs[i];
            for (j, &yj) in scratch.iter().enumerate().take(i) {
                sum -= self.l.get(i, j) * yj;
            }
            scratch[i] = sum / self.l.get(i, i);
        }
        // Backward substitution: Lᵀ · x = y.
        for i in (0..n).rev() {
            let mut sum = scratch[i];
            for (j, &xj) in out.iter().enumerate().skip(i + 1) {
                sum -= self.l.get(j, i) * xj;
            }
            out[i] = sum / self.l.get(i, i);
        }
        Ok(())
    }

    /// Determinant of the factorised matrix (product of squared pivots).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.l.get(i, i);
            det *= d * d;
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorises_and_solves_spd_system() {
        let a = DenseMatrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ])
        .unwrap();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (r, s) in ax.iter().zip(&b) {
            assert!((r - s).abs() < 1e-12);
        }
        // L·Lᵀ reproduces A.
        let l = chol.factor();
        let lt = l.transpose();
        let prod = l.mul_mat(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]).unwrap();
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_shape_and_nan_problems() {
        assert!(CholeskyDecomposition::new(&DenseMatrix::zeros(2, 3)).is_err());
        assert!(CholeskyDecomposition::new(&DenseMatrix::zeros(0, 0)).is_err());
        let mut nan = DenseMatrix::identity(2);
        nan.set(1, 1, f64::INFINITY);
        assert!(CholeskyDecomposition::new(&nan).is_err());
    }

    #[test]
    fn determinant_matches_lu() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert!((chol.determinant() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = DenseMatrix::identity(3);
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn agrees_with_lu_on_conductance_like_matrix() {
        // A matrix shaped like a thermal conductance matrix: Laplacian plus
        // positive diagonal "ground" terms.
        let a = DenseMatrix::from_rows(&[
            vec![3.0, -1.0, 0.0, -1.0],
            vec![-1.0, 4.0, -2.0, 0.0],
            vec![0.0, -2.0, 5.0, -1.0],
            vec![-1.0, 0.0, -1.0, 3.0],
        ])
        .unwrap();
        let b = [10.0, 0.0, 5.0, 2.5];
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let lu = crate::LuDecomposition::new(&a).unwrap();
        let x1 = chol.solve(&b).unwrap();
        let x2 = lu.solve(&b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
    }
}
