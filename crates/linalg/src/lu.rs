//! LU factorisation with partial pivoting.

use crate::{DenseMatrix, LinalgError, Result};

/// LU factorisation with partial (row) pivoting of a square matrix.
///
/// The factorisation is computed once and can then be reused to solve
/// `A · x = b` for many right-hand sides, which is exactly the access pattern
/// of the transient thermal solver (the system matrix is fixed by the
/// floorplan and package while the power vector changes every step).
///
/// # Example
///
/// ```
/// use thermsched_linalg::{DenseMatrix, LuDecomposition};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[
///     vec![2.0, 1.0, 1.0],
///     vec![4.0, -6.0, 0.0],
///     vec![-2.0, 7.0, 2.0],
/// ])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[5.0, -2.0, 9.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 5.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (below diagonal, implicit unit diagonal) and U (diagonal and
    /// above) factors, stored in-place.
    lu: DenseMatrix,
    /// Row permutation applied during pivoting: `perm[i]` is the original row
    /// now living at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used by [`LuDecomposition::determinant`].
    perm_sign: f64,
}

/// Pivots smaller than this are treated as exact zeros (singular matrix).
const PIVOT_TOLERANCE: f64 = 1e-14;

impl LuDecomposition {
    /// Factorises `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero rows.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinite entries.
    /// * [`LinalgError::Singular`] if a pivot smaller than `1e-14` (relative to
    ///   the largest element) is encountered.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty {
                context: "LuDecomposition::new",
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                context: "LuDecomposition::new",
            });
        }

        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOLERANCE * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                swap_rows(&mut lu, k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A · x = b` using the precomputed factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        let mut out = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        self.solve_into(b, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Solves `A · x = b` into a caller-provided buffer without allocating.
    ///
    /// `scratch` holds the permuted right-hand side during forward
    /// substitution; `out` receives the solution during back substitution.
    /// Both must have length [`LuDecomposition::dim`]. This is the hot-loop
    /// variant of [`LuDecomposition::solve`] used by the transient thermal
    /// solver, which performs ~1000 solves per simulated second.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `rhs`, `out` or
    /// `scratch` has a length other than `self.dim()`.
    pub fn solve_into(&self, rhs: &[f64], out: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let n = self.dim();
        for (len, context) in [
            (rhs.len(), "LuDecomposition::solve_into rhs"),
            (out.len(), "LuDecomposition::solve_into out"),
            (scratch.len(), "LuDecomposition::solve_into scratch"),
        ] {
            if len != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: len,
                    context,
                });
            }
        }
        // Apply permutation: scratch = P · rhs.
        for (s, &p) in scratch.iter_mut().zip(&self.perm) {
            *s = rhs[p];
        }
        // Forward substitution with unit lower-triangular L (in place).
        for i in 1..n {
            let mut sum = scratch[i];
            for (j, &yj) in scratch.iter().enumerate().take(i) {
                sum -= self.lu.get(i, j) * yj;
            }
            scratch[i] = sum;
        }
        // Backward substitution with U, reading y from scratch into out.
        for i in (0..n).rev() {
            let mut sum = scratch[i];
            for (j, &xj) in out.iter().enumerate().skip(i + 1) {
                sum -= self.lu.get(i, j) * xj;
            }
            out[i] = sum / self.lu.get(i, i);
        }
        Ok(())
    }

    /// Solves `A · X = B` column by column where `B` is given as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.rows(),
                context: "LuDecomposition::solve_matrix",
            });
        }
        let mut out = DenseMatrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        let mut x = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        for j in 0..b.cols() {
            for (i, c) in col.iter_mut().enumerate() {
                *c = b.get(i, j);
            }
            self.solve_into(&col, &mut x, &mut scratch)?;
            for (i, &v) in x.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Computes the inverse of the factorised matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve_matrix`].
    pub fn inverse(&self) -> Result<DenseMatrix> {
        self.solve_matrix(&DenseMatrix::identity(self.dim()))
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }
}

fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for j in 0..m.cols() {
        let tmp = m.get(a, j);
        m.set(a, j, m.get(b, j));
        m.set(b, j, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(r, s)| (r - s).abs())
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap();
        let b = [5.0, -2.0, 9.0];
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty_and_non_finite() {
        let rect = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let empty = DenseMatrix::zeros(0, 0);
        assert!(matches!(
            LuDecomposition::new(&empty),
            Err(LinalgError::Empty { .. })
        ));
        let mut nan = DenseMatrix::identity(2);
        nan.set(0, 0, f64::NAN);
        assert!(matches!(
            LuDecomposition::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn determinant_and_inverse() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 10.0).abs() < 1e-12);
        let inv = lu.inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = DenseMatrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_matrix_handles_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let prod = a.mul_mat(&x).unwrap();
        assert!((prod.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((prod.get(0, 1)).abs() < 1e-12);
        let wrong = DenseMatrix::zeros(3, 1);
        assert!(lu.solve_matrix(&wrong).is_err());
    }

    #[test]
    fn larger_random_like_system_is_solved_accurately() {
        // Deterministic pseudo-random diagonally dominant matrix.
        let n = 25;
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            a.set(i, i, row_sum + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.37 - 2.0).collect();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
