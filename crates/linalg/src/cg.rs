//! Conjugate-gradient iterative solver.

use crate::{axpy, dot, norm2, CsrMatrix, LinalgError, Result};

/// Outcome of an iterative solve: the solution vector plus convergence
/// statistics, exposed so callers can log or assert on solver behaviour
/// instead of re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeSolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Euclidean norm of the final residual `b - A·x`.
    pub residual_norm: f64,
}

/// Preconditioned (Jacobi) conjugate-gradient solver for symmetric
/// positive-definite sparse systems.
///
/// The thermal conductance matrices assembled by `thermsched-thermal` are SPD,
/// so CG converges quickly; the Jacobi preconditioner costs one extra vector
/// and noticeably reduces iteration counts on badly scaled systems (tiny
/// blocks next to huge L2 arrays produce conductances spanning several orders
/// of magnitude).
///
/// # Example
///
/// ```
/// use thermsched_linalg::{ConjugateGradient, CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[
///     Triplet::new(0, 0, 4.0), Triplet::new(0, 1, 1.0),
///     Triplet::new(1, 0, 1.0), Triplet::new(1, 1, 3.0),
/// ])?;
/// let sol = ConjugateGradient::new().solve(&a, &[1.0, 2.0])?;
/// assert!(sol.residual_norm < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConjugateGradient {
    max_iterations: usize,
    tolerance: f64,
    jacobi_preconditioner: bool,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        ConjugateGradient {
            max_iterations: 10_000,
            tolerance: 1e-10,
            jacobi_preconditioner: true,
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with default settings (10 000 iterations, tolerance
    /// `1e-10`, Jacobi preconditioning enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the relative residual tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Enables or disables the Jacobi (diagonal) preconditioner.
    pub fn with_jacobi_preconditioner(mut self, enabled: bool) -> Self {
        self.jacobi_preconditioner = enabled;
        self
    }

    /// Solves `A · x = b` starting from the zero vector.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != a.rows()`.
    /// * [`LinalgError::DidNotConverge`] if the residual does not drop below
    ///   the tolerance within the iteration budget.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<IterativeSolution> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                context: "ConjugateGradient::solve",
            });
        }
        let b_norm = norm2(b);
        if b_norm == 0.0 {
            return Ok(IterativeSolution {
                x: vec![0.0; n],
                iterations: 0,
                residual_norm: 0.0,
            });
        }
        let abs_tol = self.tolerance * b_norm;

        // Inverse diagonal for the Jacobi preconditioner; fall back to the
        // identity when preconditioning is disabled or a diagonal entry is 0.
        let inv_diag: Vec<f64> = if self.jacobi_preconditioner {
            a.diagonal()
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect()
        } else {
            vec![1.0; n]
        };

        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz = dot(&r, &z)?;

        for iter in 0..self.max_iterations {
            let res_norm = norm2(&r);
            if res_norm <= abs_tol {
                return Ok(IterativeSolution {
                    x,
                    iterations: iter,
                    residual_norm: res_norm,
                });
            }
            let ap = a.mul_vec(&p)?;
            let pap = dot(&p, &ap)?;
            if pap <= 0.0 || !pap.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { index: iter });
            }
            let alpha = rz / pap;
            axpy(alpha, &p, &mut x)?;
            axpy(-alpha, &ap, &mut r)?;
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_next = dot(&r, &z)?;
            let beta = rz_next / rz;
            rz = rz_next;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        let res_norm = norm2(&r);
        if res_norm <= abs_tol {
            Ok(IterativeSolution {
                x,
                iterations: self.max_iterations,
                residual_norm: res_norm,
            })
        } else {
            Err(LinalgError::DidNotConverge {
                iterations: self.max_iterations,
                residual: res_norm,
                tolerance: abs_tol,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [-1, 2.5, -1]: SPD and diagonally dominant.
        let mut t = Vec::new();
        for i in 0..n {
            t.push(Triplet::new(i, i, 2.5));
            if i + 1 < n {
                t.push(Triplet::new(i, i + 1, -1.0));
                t.push(Triplet::new(i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn solves_spd_system_to_tolerance() {
        let a = laplacian_1d(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin() + 1.0).collect();
        let sol = ConjugateGradient::new().solve(&a, &b).unwrap();
        let r = crate::sub(&b, &a.mul_vec(&sol.x).unwrap()).unwrap();
        assert!(norm2(&r) < 1e-8 * norm2(&b));
        assert!(sol.iterations > 0);
    }

    #[test]
    fn zero_rhs_returns_zero_solution_immediately() {
        let a = laplacian_1d(10);
        let sol = ConjugateGradient::new().solve(&a, &[0.0; 10]).unwrap();
        assert_eq!(sol.x, vec![0.0; 10]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let err = ConjugateGradient::new()
            .with_max_iterations(2)
            .with_tolerance(1e-14)
            .solve(&a, &b)
            .unwrap_err();
        assert!(matches!(err, LinalgError::DidNotConverge { .. }));
    }

    #[test]
    fn rejects_shape_mismatches() {
        let a = laplacian_1d(5);
        assert!(ConjugateGradient::new().solve(&a, &[1.0; 4]).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(ConjugateGradient::new().solve(&rect, &[1.0; 3]).is_err());
    }

    #[test]
    fn detects_indefinite_matrix() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 1, 3.0),
                Triplet::new(1, 0, 3.0),
                Triplet::new(1, 1, 1.0),
            ],
        )
        .unwrap();
        // The right-hand side is chosen so the first search direction exposes
        // the negative curvature of this indefinite matrix.
        let err = ConjugateGradient::new()
            .solve(&a, &[1.0, -1.0])
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn preconditioner_does_not_change_answer() {
        let a = laplacian_1d(30);
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let with = ConjugateGradient::new().solve(&a, &b).unwrap();
        let without = ConjugateGradient::new()
            .with_jacobi_preconditioner(false)
            .solve(&a, &b)
            .unwrap();
        for (p, q) in with.x.iter().zip(&without.x) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_dense_lu() {
        let a = laplacian_1d(12);
        let b: Vec<f64> = (0..12).map(|i| 1.0 + i as f64 * 0.25).collect();
        let cg = ConjugateGradient::new().solve(&a, &b).unwrap();
        let lu = crate::LuDecomposition::new(&a.to_dense()).unwrap();
        let x = lu.solve(&b).unwrap();
        for (p, q) in cg.x.iter().zip(&x) {
            assert!((p - q).abs() < 1e-7);
        }
    }
}
