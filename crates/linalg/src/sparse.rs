//! Compressed-sparse-row matrix.

use crate::{LinalgError, Result};

/// A `(row, col, value)` coordinate entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value to accumulate at `(row, col)`.
    pub value: f64,
}

impl Triplet {
    /// Creates a new triplet.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Compressed-sparse-row matrix of `f64` values.
///
/// Used by the thermal solver when the node count grows beyond a few hundred
/// (e.g. fine-grained grid models), where a dense factorisation would waste
/// both memory and time. Duplicate coordinate entries are summed during
/// assembly, which makes stamping conductances element-by-element convenient.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 0, 2.0), Triplet::new(1, 1, 3.0), Triplet::new(0, 0, 1.0)],
/// )?;
/// assert_eq!(m.mul_vec(&[1.0, 1.0])?, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any triplet lies outside
    /// the `rows × cols` bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[Triplet]) -> Result<Self> {
        for t in triplets {
            if t.row >= rows {
                return Err(LinalgError::DimensionMismatch {
                    expected: rows,
                    found: t.row,
                    context: "CsrMatrix::from_triplets row index",
                });
            }
            if t.col >= cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: cols,
                    found: t.col,
                    context: "CsrMatrix::from_triplets column index",
                });
            }
        }
        // Bucket triplets per row, then sort and merge duplicates.
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for t in triplets {
            per_row[t.row].push((t.col, t.value));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last_col: Option<usize> = None;
            for &(c, v) in row.iter() {
                if Some(c) == last_col {
                    let n = values.len();
                    values[n - 1] += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                    last_col = Some(c);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`; zero if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        for k in start..end {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                context: "sparse matrix-vector product",
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Returns the main diagonal (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Returns `true` if the sparsity pattern and values are symmetric within
    /// `tol`. Only meaningful for square matrices.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Converts to a dense matrix (intended for tests and small systems).
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                d.set(i, self.col_idx[k], self.values[k]);
            }
        }
        d
    }

    /// Iterates over stored entries of row `row` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 4.0),
                Triplet::new(0, 1, -1.0),
                Triplet::new(1, 0, -1.0),
                Triplet::new(1, 1, 4.0),
                Triplet::new(1, 2, -1.0),
                Triplet::new(2, 1, -1.0),
                Triplet::new(2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn assembly_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.diagonal(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 1.0), Triplet::new(0, 0, 2.5)])
            .unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_triplets_are_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[Triplet::new(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x).unwrap(), d.mul_vec(&x).unwrap());
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn symmetry_check() {
        assert!(sample().is_symmetric(1e-12));
        let asym = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
        let rect = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn row_entries_iterates_stored_values() {
        let m = sample();
        let row1: Vec<(usize, f64)> = m.row_entries(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 4.0), (2, -1.0)]);
    }

    #[test]
    fn empty_matrix_has_no_entries() {
        let m = CsrMatrix::from_triplets(4, 4, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mul_vec(&[1.0; 4]).unwrap(), vec![0.0; 4]);
    }
}
