//! Error type shared by every solver in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix construction and the linear solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The dimensions of the operands are incompatible.
    DimensionMismatch {
        /// Expected dimension (rows or length, depending on the operation).
        expected: usize,
        /// Dimension that was actually supplied.
        found: usize,
        /// Short description of the operation that failed.
        context: &'static str,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorisation failed because the matrix is singular (or numerically
    /// indistinguishable from singular).
    Singular {
        /// Pivot index where breakdown was detected.
        pivot: usize,
    },
    /// A Cholesky factorisation failed because the matrix is not positive
    /// definite.
    NotPositiveDefinite {
        /// Row/column index where a non-positive pivot was found.
        index: usize,
    },
    /// An iterative solver did not reach the requested tolerance.
    DidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Tolerance that was requested.
        tolerance: f64,
    },
    /// A matrix was constructed from rows of unequal length.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the first row whose length differs.
        row: usize,
        /// Length of that row.
        len: usize,
    },
    /// A non-finite (NaN or infinite) value was encountered.
    NonFinite {
        /// Short description of where the value was found.
        context: &'static str,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty {
        /// Short description of the operation that failed.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (at index {index})")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged rows: row 0 has length {first} but row {row} has length {len}"
            ),
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            LinalgError::Empty { context } => write!(f, "empty input in {context}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular (zero pivot at index 3)");
        let e = LinalgError::DimensionMismatch {
            expected: 4,
            found: 5,
            context: "mat-vec product",
        };
        assert!(e.to_string().contains("mat-vec product"));
        assert!(e.to_string().starts_with("dimension mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn convergence_error_reports_numbers() {
        let e = LinalgError::DidNotConverge {
            iterations: 100,
            residual: 1e-3,
            tolerance: 1e-9,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("1.000e-3"));
    }
}
