//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally small: it provides exactly the operations needed
/// by the thermal solver (construction, element access, matrix–vector and
/// matrix–matrix products, transpose, symmetry/diagonal-dominance checks) and
/// the factorisations in [`crate::LuDecomposition`] /
/// [`crate::CholeskyDecomposition`].
///
/// # Example
///
/// ```
/// use thermsched_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let mut m = DenseMatrix::zeros(2, 2);
/// m.set(0, 0, 1.0);
/// m.set(1, 1, 2.0);
/// assert_eq!(m.mul_vec(&[3.0, 4.0])?, vec![3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if no rows are supplied and
    /// [`LinalgError::RaggedRows`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty {
                context: "DenseMatrix::from_rows",
            });
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    first: cols,
                    row: i,
                    len: r.len(),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add_to(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] += value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the main diagonal as a vector (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product `A · x` written into a caller-provided buffer,
    /// avoiding any heap allocation (the hot-loop variant of
    /// [`DenseMatrix::mul_vec`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                context: "matrix-vector product",
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                found: out.len(),
                context: "matrix-vector product output",
            });
        }
        for (i, yi) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = dot4(row, x);
        }
        Ok(())
    }

    /// Matrix–matrix product `A · B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != other.rows()`.
    pub fn mul_mat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        self.mul_mat_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix–matrix product `A · B` written into a caller-provided matrix,
    /// avoiding any heap allocation. `out` is overwritten entirely.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != other.rows()`
    /// or `out` is not `self.rows() × other.cols()`.
    pub fn mul_mat_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
                context: "matrix-matrix product",
            });
        }
        if out.rows != self.rows || out.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows * other.cols,
                found: out.rows * out.cols,
                context: "matrix-matrix product output",
            });
        }
        out.data.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let src = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += aik * s;
                }
            }
        }
        Ok(())
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the matrix is (weakly) diagonally dominant:
    /// `|a_ii| >= sum_{j != i} |a_ij|` for every row.
    pub fn is_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            let mut off = 0.0;
            for j in 0..self.cols {
                if i != j {
                    off += self.get(i, j).abs();
                }
            }
            // Small tolerance guards against floating-point accumulation error.
            if self.get(i, i).abs() + 1e-12 < off {
                return false;
            }
        }
        true
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute element value (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Scales every element by `alpha`, returning a new matrix.
    pub fn scaled(&self, alpha: f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * alpha).collect(),
        }
    }
}

/// Dot product with four independent accumulator chains, manually unrolled.
///
/// The naive zipped `.sum()` is one serial dependency chain of adds, so each
/// fused multiply-add waits on the previous one. Splitting the reduction over
/// four partial sums lets the optimiser keep four chains in flight (the
/// pinned stable toolchain has no `std::simd`, so the lanes are spelled out
/// by hand). This reassociates the floating-point sum, which is fine for the
/// dense operator paths: their consumers pin results with tolerance bands,
/// not bit-exactness — the bit-exact contracts all live on the banded side.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut a4 = a.chunks_exact(4);
    let mut b4 = b.chunks_exact(4);
    for (x, y) in (&mut a4).zip(&mut b4) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (x, y) in a4.remainder().iter().zip(b4.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &DenseMatrix {
    type Output = DenseMatrix;

    fn add(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch in matrix addition");
        assert_eq!(
            self.cols, rhs.cols,
            "column count mismatch in matrix addition"
        );
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &DenseMatrix {
    type Output = DenseMatrix;

    fn sub(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, rhs.rows,
            "row count mismatch in matrix subtraction"
        );
        assert_eq!(
            self.cols, rhs.cols,
            "column count mismatch in matrix subtraction"
        );
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &DenseMatrix {
    type Output = DenseMatrix;

    fn mul(self, rhs: f64) -> DenseMatrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        assert_eq!(z.as_slice(), &[0.0; 6]);

        let i = DenseMatrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.diagonal(), vec![1.0, 1.0, 1.0]);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(matches!(
            DenseMatrix::from_rows(&[]),
            Err(LinalgError::Empty { .. })
        ));
        assert!(matches!(
            DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(LinalgError::RaggedRows { .. })
        ));
    }

    #[test]
    fn from_diagonal_builds_diagonal_matrix() {
        let d = DenseMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn mat_vec_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mat_mat_product_and_transpose() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::identity(2);
        assert_eq!(a.mul_mat(&b).unwrap(), a);
        let at = a.transpose();
        assert_eq!(at.get(0, 1), 3.0);
        assert_eq!(at.get(1, 0), 2.0);
        let c = DenseMatrix::zeros(3, 2);
        assert!(a.mul_mat(&c).is_err());
    }

    #[test]
    fn symmetry_and_dominance_checks() {
        let s = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(s.is_diagonally_dominant());

        let ns = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));

        let nd = DenseMatrix::from_rows(&[vec![1.0, 5.0], vec![5.0, 1.0]]).unwrap();
        assert!(!nd.is_diagonally_dominant());

        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
        assert!(!rect.is_diagonally_dominant());
    }

    #[test]
    fn arithmetic_operators() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum.get(0, 0), 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled.get(1, 1), 8.0);
    }

    #[test]
    fn finiteness_and_max_abs() {
        let mut a = DenseMatrix::zeros(2, 2);
        assert!(a.is_finite());
        assert_eq!(a.max_abs(), 0.0);
        a.set(0, 1, -7.5);
        assert_eq!(a.max_abs(), 7.5);
        a.set(1, 0, f64::NAN);
        assert!(!a.is_finite());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = DenseMatrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }

    #[test]
    fn row_access_and_add_to() {
        let mut a = DenseMatrix::zeros(2, 3);
        a.add_to(1, 2, 5.0);
        a.add_to(1, 2, 1.0);
        assert_eq!(a.row(1), &[0.0, 0.0, 6.0]);
    }

    #[test]
    fn display_renders_all_rows() {
        let a = DenseMatrix::identity(2);
        let s = format!("{a}");
        assert!(s.contains("DenseMatrix 2x2"));
        assert_eq!(s.lines().count(), 3);
    }
}
