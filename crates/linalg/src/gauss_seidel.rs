//! Gauss–Seidel iterative solver.

use crate::{norm2, sub, CsrMatrix, IterativeSolution, LinalgError, Result};

/// Gauss–Seidel (successive substitution) solver for diagonally dominant
/// sparse systems, with optional successive over-relaxation (SOR).
///
/// Used as a cheap smoother / fallback for matrices that are diagonally
/// dominant but not symmetric (for example when boundary conditions are
/// stamped asymmetrically during experimentation), and as an independent
/// cross-check of the conjugate-gradient solver in tests.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{CsrMatrix, GaussSeidel, Triplet};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[
///     Triplet::new(0, 0, 4.0), Triplet::new(0, 1, 1.0),
///     Triplet::new(1, 0, 1.0), Triplet::new(1, 1, 3.0),
/// ])?;
/// let sol = GaussSeidel::new().solve(&a, &[1.0, 2.0])?;
/// assert!(sol.residual_norm < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussSeidel {
    max_iterations: usize,
    tolerance: f64,
    relaxation: f64,
}

impl Default for GaussSeidel {
    fn default() -> Self {
        GaussSeidel {
            max_iterations: 20_000,
            tolerance: 1e-10,
            relaxation: 1.0,
        }
    }
}

impl GaussSeidel {
    /// Creates a solver with default settings (20 000 iterations, tolerance
    /// `1e-10`, no over-relaxation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of sweeps.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the relative residual tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the SOR relaxation factor `omega` (must be in `(0, 2)` for
    /// convergence on SPD systems; `1.0` is plain Gauss–Seidel).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not strictly positive and finite.
    pub fn with_relaxation(mut self, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega.is_finite(),
            "relaxation factor must be positive and finite"
        );
        self.relaxation = omega;
        self
    }

    /// Solves `A · x = b` starting from the zero vector.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != a.rows()`.
    /// * [`LinalgError::Singular`] if a diagonal entry of `a` is zero.
    /// * [`LinalgError::DidNotConverge`] if the sweep budget is exhausted.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<IterativeSolution> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                context: "GaussSeidel::solve",
            });
        }
        let diag = a.diagonal();
        for (i, &d) in diag.iter().enumerate() {
            if d == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
        }
        let b_norm = norm2(b).max(f64::MIN_POSITIVE);
        let abs_tol = self.tolerance * b_norm;

        let mut x = vec![0.0; n];
        for iter in 0..self.max_iterations {
            for i in 0..n {
                let mut sigma = 0.0;
                for (j, v) in a.row_entries(i) {
                    if j != i {
                        sigma += v * x[j];
                    }
                }
                let gs = (b[i] - sigma) / diag[i];
                x[i] = x[i] + self.relaxation * (gs - x[i]);
            }
            let r = sub(b, &a.mul_vec(&x)?)?;
            let res_norm = norm2(&r);
            if res_norm <= abs_tol {
                return Ok(IterativeSolution {
                    x,
                    iterations: iter + 1,
                    residual_norm: res_norm,
                });
            }
        }
        let r = sub(b, &a.mul_vec(&x)?)?;
        Err(LinalgError::DidNotConverge {
            iterations: self.max_iterations,
            residual: norm2(&r),
            tolerance: abs_tol,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn dominant_system(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut t = Vec::new();
        for i in 0..n {
            t.push(Triplet::new(i, i, 4.0));
            if i + 1 < n {
                t.push(Triplet::new(i, i + 1, -1.0));
                t.push(Triplet::new(i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        (a, b)
    }

    #[test]
    fn converges_on_diagonally_dominant_system() {
        let (a, b) = dominant_system(40);
        let sol = GaussSeidel::new().solve(&a, &b).unwrap();
        assert!(sol.residual_norm < 1e-8);
    }

    #[test]
    fn sor_converges_to_the_same_solution_as_plain_gs() {
        let (a, b) = dominant_system(60);
        let plain = GaussSeidel::new().solve(&a, &b).unwrap();
        let sor = GaussSeidel::new()
            .with_relaxation(1.2)
            .solve(&a, &b)
            .unwrap();
        assert!(sor.residual_norm < 1e-8);
        for (p, q) in sor.x.iter().zip(&plain.x) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            GaussSeidel::new().solve(&a, &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        let rect = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(GaussSeidel::new().solve(&rect, &[0.0; 3]).is_err());
        let (a, _) = dominant_system(3);
        assert!(GaussSeidel::new().solve(&a, &[0.0; 2]).is_err());
    }

    #[test]
    fn reports_non_convergence() {
        let (a, b) = dominant_system(100);
        let err = GaussSeidel::new()
            .with_max_iterations(1)
            .with_tolerance(1e-14)
            .solve(&a, &b)
            .unwrap_err();
        assert!(matches!(err, LinalgError::DidNotConverge { .. }));
    }

    #[test]
    #[should_panic(expected = "relaxation factor")]
    fn invalid_relaxation_panics() {
        let _ = GaussSeidel::new().with_relaxation(0.0);
    }

    #[test]
    fn agrees_with_cg() {
        let (a, b) = dominant_system(25);
        let gs = GaussSeidel::new().solve(&a, &b).unwrap();
        let cg = crate::ConjugateGradient::new().solve(&a, &b).unwrap();
        for (p, q) in gs.x.iter().zip(&cg.x) {
            assert!((p - q).abs() < 1e-6);
        }
    }
}
