//! Affine step operators for linear recurrences, advanced by repeated
//! squaring.

use crate::{DenseMatrix, LinalgError, Result};

/// The `k`-step operator of the affine recurrence `x_{j+1} = A · x_j + b`.
///
/// Advancing the recurrence `k` steps gives
/// `x_k = Aᵏ · x_0 + S_k · b` with `S_k = I + A + … + Aᵏ⁻¹`, so the pair
/// `(Aᵏ, S_k)` captures the whole `k`-step evolution for *any* input vector
/// `b`. The pair composes — `k + m` steps is `(Aᵏ·Aᵐ, S_m + Aᵐ·S_k)` — which
/// makes it squarable, and [`AffineStepOperator::pow`] exploits that to build
/// the `k`-step operator in `O(n³ · log k)` work instead of `k` linear
/// solves. This is the core of the transient thermal solver's constant-power
/// fast path.
///
/// # Example
///
/// ```
/// use thermsched_linalg::{AffineStepOperator, DenseMatrix};
///
/// # fn main() -> Result<(), thermsched_linalg::LinalgError> {
/// // Scalar recurrence x ← 0.5 x + 1: after many steps x → 2.
/// let a = DenseMatrix::from_rows(&[vec![0.5]])?;
/// let op = AffineStepOperator::single(&a)?.pow(50)?;
/// let x = op.apply(&[0.0], &[1.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineStepOperator {
    /// `Aᵏ`.
    power: DenseMatrix,
    /// `S_k = I + A + … + Aᵏ⁻¹` (the zero matrix for `k = 0`).
    sum: DenseMatrix,
    /// Number of recurrence steps `k` this operator advances.
    steps: usize,
}

impl AffineStepOperator {
    /// The zero-step (identity) operator: `x_0 = I · x_0 + 0 · b`.
    pub fn identity(n: usize) -> Self {
        AffineStepOperator {
            power: DenseMatrix::identity(n),
            sum: DenseMatrix::zeros(n, n),
            steps: 0,
        }
    }

    /// The single-step operator of the recurrence with matrix `a`:
    /// `(A¹, S_1) = (A, I)`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero rows.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinite entries.
    pub fn single(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() == 0 {
            return Err(LinalgError::Empty {
                context: "AffineStepOperator::single",
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                context: "AffineStepOperator::single",
            });
        }
        Ok(AffineStepOperator {
            power: a.clone(),
            sum: DenseMatrix::identity(a.rows()),
            steps: 1,
        })
    }

    /// Dimension `n` of the state vector.
    pub fn dim(&self) -> usize {
        self.power.rows()
    }

    /// Number of recurrence steps this operator advances.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Borrows `Aᵏ`.
    pub fn power(&self) -> &DenseMatrix {
        &self.power
    }

    /// Borrows `S_k = I + A + … + Aᵏ⁻¹`.
    pub fn sum(&self) -> &DenseMatrix {
        &self.sum
    }

    /// Composes two step operators of the same recurrence: applying `self`
    /// (for `m` steps) *after* `earlier` (for `k` steps) yields the
    /// `(k + m)`-step operator `(Aᵐ·Aᵏ, S_m + Aᵐ·S_k)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the operators have
    /// different dimensions.
    pub fn compose_after(&self, earlier: &Self) -> Result<Self> {
        if self.dim() != earlier.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                found: earlier.dim(),
                context: "AffineStepOperator::compose_after",
            });
        }
        let power = self.power.mul_mat(&earlier.power)?;
        let sum = &(self.power.mul_mat(&earlier.sum)?) + &self.sum;
        Ok(AffineStepOperator {
            power,
            sum,
            steps: self.steps + earlier.steps,
        })
    }

    /// The operator advancing twice as many steps: `self ∘ self`.
    ///
    /// # Errors
    ///
    /// See [`AffineStepOperator::compose_after`].
    pub fn squared(&self) -> Result<Self> {
        self.compose_after(self)
    }

    /// The operator advancing `k · self.steps()` steps, built by repeated
    /// squaring in `O(n³ · log k)` work.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`AffineStepOperator::compose_after`] (which
    /// cannot occur for a well-formed operator).
    pub fn pow(&self, k: usize) -> Result<Self> {
        let mut result = AffineStepOperator::identity(self.dim());
        let mut base = self.clone();
        let mut k = k;
        loop {
            if k & 1 == 1 {
                result = base.compose_after(&result)?;
            }
            k >>= 1;
            if k == 0 {
                break;
            }
            base = base.squared()?;
        }
        Ok(result)
    }

    /// Applies the operator: `x_k = Aᵏ · x_0 + S_k · b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x0` or `b` has a
    /// length other than `self.dim()`.
    pub fn apply(&self, x0: &[f64], b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim()];
        let mut scratch = vec![0.0; self.dim()];
        self.apply_into(x0, b, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Allocation-free variant of [`AffineStepOperator::apply`]: writes
    /// `Aᵏ · x_0 + S_k · b` into `out`, using `scratch` as workspace.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any slice has a length
    /// other than `self.dim()`.
    pub fn apply_into(
        &self,
        x0: &[f64],
        b: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<()> {
        self.power.mul_vec_into(x0, out)?;
        self.sum.mul_vec_into(b, scratch)?;
        for (o, &s) in out.iter_mut().zip(scratch.iter()) {
            *o += s;
        }
        Ok(())
    }

    /// Applies the operator from a zero initial state: `x_k = S_k · b`
    /// (the "from rest" / from-ambient case of the thermal solver).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn apply_from_rest(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.sum.mul_vec(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(a: &DenseMatrix, x: &[f64], b: &[f64]) -> Vec<f64> {
        let mut next = a.mul_vec(x).unwrap();
        for (n, &bi) in next.iter_mut().zip(b) {
            *n += bi;
        }
        next
    }

    fn test_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.6, 0.1, 0.0],
            vec![0.2, 0.5, 0.1],
            vec![0.0, 0.3, 0.4],
        ])
        .unwrap()
    }

    #[test]
    fn pow_matches_sequential_stepping() {
        let a = test_matrix();
        let b = [1.0, -0.5, 2.0];
        let x0 = [0.3, 0.0, -1.0];
        for k in [0usize, 1, 2, 3, 7, 16, 33, 100] {
            let mut x = x0.to_vec();
            for _ in 0..k {
                x = step(&a, &x, &b);
            }
            let op = AffineStepOperator::single(&a).unwrap().pow(k).unwrap();
            assert_eq!(op.steps(), k);
            let fast = op.apply(&x0, &b).unwrap();
            for (p, q) in fast.iter().zip(&x) {
                assert!((p - q).abs() < 1e-12, "k={k}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn from_rest_drops_the_power_term() {
        let a = test_matrix();
        let b = [1.0, 2.0, 3.0];
        let op = AffineStepOperator::single(&a).unwrap().pow(9).unwrap();
        let rest = op.apply_from_rest(&b).unwrap();
        let zero = op.apply(&[0.0; 3], &b).unwrap();
        assert_eq!(rest, zero);
    }

    #[test]
    fn composition_accumulates_steps() {
        let a = test_matrix();
        let five = AffineStepOperator::single(&a).unwrap().pow(5).unwrap();
        let three = AffineStepOperator::single(&a).unwrap().pow(3).unwrap();
        let eight = five.compose_after(&three).unwrap();
        let direct = AffineStepOperator::single(&a).unwrap().pow(8).unwrap();
        assert_eq!(eight.steps(), 8);
        let b = [0.7, -0.2, 0.4];
        let x0 = [1.0, 1.0, 1.0];
        let p = eight.apply(&x0, &b).unwrap();
        let q = direct.apply(&x0, &b).unwrap();
        for (u, v) in p.iter().zip(&q) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(eight.squared().unwrap().steps(), 16);
    }

    #[test]
    fn identity_is_a_no_op() {
        let id = AffineStepOperator::identity(2);
        assert_eq!(id.steps(), 0);
        assert_eq!(id.dim(), 2);
        let x = id.apply(&[3.0, 4.0], &[100.0, 100.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
        assert_eq!(id.power(), &DenseMatrix::identity(2));
        assert_eq!(id.sum(), &DenseMatrix::zeros(2, 2));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(AffineStepOperator::single(&DenseMatrix::zeros(2, 3)).is_err());
        assert!(AffineStepOperator::single(&DenseMatrix::zeros(0, 0)).is_err());
        let mut nan = DenseMatrix::identity(2);
        nan.set(0, 1, f64::NAN);
        assert!(AffineStepOperator::single(&nan).is_err());

        let a = AffineStepOperator::identity(2);
        let b = AffineStepOperator::identity(3);
        assert!(a.compose_after(&b).is_err());
        assert!(a.apply(&[1.0], &[1.0, 2.0]).is_err());
        assert!(a.apply_from_rest(&[1.0, 2.0, 3.0]).is_err());
    }
}
