//! Solver-stack regression tests against small systems with known closed-form
//! solutions, so a regression in any one solver is caught below the thermal /
//! scheduler integration layer.

use thermsched_linalg::{
    CholeskyDecomposition, ConjugateGradient, CsrMatrix, DenseMatrix, GaussSeidel, LuDecomposition,
    Triplet,
};

const TOL: f64 = 1e-8;

fn assert_close(actual: &[f64], expected: &[f64], tol: f64, label: &str) {
    assert_eq!(actual.len(), expected.len(), "{label}: length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            (a - e).abs() <= tol,
            "{label}: component {i} differs: got {a}, expected {e}"
        );
    }
}

/// 1-D Poisson matrix `tridiag(-1, 2, -1)` of dimension `n`, dense.
fn poisson_dense(n: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        m.set(i, i, 2.0);
        if i + 1 < n {
            m.set(i, i + 1, -1.0);
            m.set(i + 1, i, -1.0);
        }
    }
    m
}

/// The same Poisson matrix in CSR form.
fn poisson_csr(n: usize) -> CsrMatrix {
    let mut t = Vec::new();
    for i in 0..n {
        t.push(Triplet::new(i, i, 2.0));
        if i + 1 < n {
            t.push(Triplet::new(i, i + 1, -1.0));
            t.push(Triplet::new(i + 1, i, -1.0));
        }
    }
    CsrMatrix::from_triplets(n, n, &t).expect("valid triplets")
}

/// With `b = 1`, the discrete 1-D Poisson problem has the exact solution
/// `x_i = (i+1) * (n - i) / 2` (0-indexed).
fn poisson_exact(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) * (n - i)) as f64 / 2.0).collect()
}

#[test]
fn lu_solves_2x2_with_known_solution() {
    // [[4, 1], [1, 3]] x = [1, 2]  =>  x = [1/11, 7/11] (Cramer's rule).
    let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
    let lu = LuDecomposition::new(&a).unwrap();
    let x = lu.solve(&[1.0, 2.0]).unwrap();
    assert_close(&x, &[1.0 / 11.0, 7.0 / 11.0], 1e-12, "lu 2x2");
    assert!((lu.determinant() - 11.0).abs() < 1e-12);
}

#[test]
fn cholesky_solves_2x2_with_known_solution() {
    let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
    let chol = CholeskyDecomposition::new(&a).unwrap();
    let x = chol.solve(&[1.0, 2.0]).unwrap();
    assert_close(&x, &[1.0 / 11.0, 7.0 / 11.0], 1e-12, "cholesky 2x2");
    assert!((chol.determinant() - 11.0).abs() < 1e-12);
}

#[test]
fn lu_solves_hilbert_3x3_exactly() {
    // The 3x3 Hilbert matrix has the integer inverse [[9,-36,30],
    // [-36,192,-180],[30,-180,180]]; with b = e1 the solution is its first
    // column.
    let h = DenseMatrix::from_rows(&[
        vec![1.0, 1.0 / 2.0, 1.0 / 3.0],
        vec![1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0],
        vec![1.0 / 3.0, 1.0 / 4.0, 1.0 / 5.0],
    ])
    .unwrap();
    let lu = LuDecomposition::new(&h).unwrap();
    let x = lu.solve(&[1.0, 0.0, 0.0]).unwrap();
    assert_close(&x, &[9.0, -36.0, 30.0], 1e-9, "lu hilbert3");

    let inv = lu.inverse().unwrap();
    let id = h.mul_mat(&inv).unwrap();
    for i in 0..3 {
        for j in 0..3 {
            let expected = if i == j { 1.0 } else { 0.0 };
            assert!((id.get(i, j) - expected).abs() < 1e-9, "H * H^-1 != I");
        }
    }
}

#[test]
fn direct_solvers_match_poisson_closed_form() {
    let n = 7;
    let a = poisson_dense(n);
    let b = vec![1.0; n];
    let expected = poisson_exact(n);

    let lu = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
    assert_close(&lu, &expected, 1e-10, "lu poisson");

    let chol = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
    assert_close(&chol, &expected, 1e-10, "cholesky poisson");
}

#[test]
fn iterative_solvers_match_poisson_closed_form() {
    let n = 7;
    let a = poisson_csr(n);
    let b = vec![1.0; n];
    let expected = poisson_exact(n);

    let cg = ConjugateGradient::new().solve(&a, &b).unwrap();
    assert_close(&cg.x, &expected, TOL, "cg poisson");
    assert!(cg.residual_norm < 1e-8);
    // CG on an n-dimensional SPD system converges in at most n iterations in
    // exact arithmetic; allow slack for floating point.
    assert!(
        cg.iterations <= 2 * n,
        "cg took {} iterations",
        cg.iterations
    );

    let gs = GaussSeidel::new().solve(&a, &b).unwrap();
    assert_close(&gs.x, &expected, 1e-6, "gauss-seidel poisson");
    assert!(gs.residual_norm < 1e-6);
}

#[test]
fn all_four_solvers_agree_on_an_spd_conductance_like_system() {
    // A small system shaped like the thermal crate's conductance matrices:
    // strictly diagonally dominant, symmetric, with off-diagonal couplings of
    // mixed magnitude.
    let rows = [
        vec![5.0, -1.0, 0.0, -2.0],
        vec![-1.0, 4.5, -1.5, 0.0],
        vec![0.0, -1.5, 6.0, -1.0],
        vec![-2.0, 0.0, -1.0, 7.0],
    ];
    let dense = DenseMatrix::from_rows(&rows).unwrap();
    assert!(dense.is_symmetric(0.0));
    assert!(dense.is_diagonally_dominant());

    let mut triplets = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                triplets.push(Triplet::new(i, j, v));
            }
        }
    }
    let sparse = CsrMatrix::from_triplets(4, 4, &triplets).unwrap();
    let b = [3.0, -1.0, 2.5, 0.5];

    let x_lu = LuDecomposition::new(&dense).unwrap().solve(&b).unwrap();
    let x_chol = CholeskyDecomposition::new(&dense)
        .unwrap()
        .solve(&b)
        .unwrap();
    let x_cg = ConjugateGradient::new().solve(&sparse, &b).unwrap().x;
    let x_gs = GaussSeidel::new()
        .with_tolerance(1e-12)
        .solve(&sparse, &b)
        .unwrap()
        .x;

    assert_close(&x_chol, &x_lu, 1e-10, "cholesky vs lu");
    assert_close(&x_cg, &x_lu, TOL, "cg vs lu");
    assert_close(&x_gs, &x_lu, 1e-7, "gauss-seidel vs lu");

    // And the solution actually satisfies the system.
    let ax = dense.mul_vec(&x_lu).unwrap();
    assert_close(&ax, &b, 1e-10, "residual");
}

#[test]
fn sor_relaxation_still_converges_to_the_same_solution() {
    let n = 6;
    let a = poisson_csr(n);
    let b = vec![1.0; n];
    let expected = poisson_exact(n);
    let sor = GaussSeidel::new()
        .with_relaxation(1.25)
        .with_tolerance(1e-12)
        .solve(&a, &b)
        .unwrap();
    assert_close(&sor.x, &expected, 1e-6, "sor poisson");
}

#[test]
fn cholesky_rejects_a_non_spd_matrix() {
    // Symmetric but indefinite (eigenvalues 3 and -1).
    let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
    assert!(CholeskyDecomposition::new(&a).is_err());
}

#[test]
fn lu_rejects_a_singular_matrix() {
    let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
    assert!(LuDecomposition::new(&a).is_err());
}

#[test]
fn solvers_reject_dimension_mismatches() {
    let a = poisson_dense(3);
    let lu = LuDecomposition::new(&a).unwrap();
    assert!(lu.solve(&[1.0, 2.0]).is_err());

    let s = poisson_csr(3);
    assert!(ConjugateGradient::new().solve(&s, &[1.0]).is_err());
    assert!(GaussSeidel::new().solve(&s, &[1.0, 2.0, 3.0, 4.0]).is_err());
}
