//! Per-core test specifications.

use crate::{Result, SocError};

/// How one core behaves while its test set is applied.
///
/// The DATE 2005 paper characterises each core by its average power
/// dissipation during test (which it reports as 1.5×–8× the functional
/// power) and the length of its test. Functional power is kept alongside so
/// that examples and benches can report the test-to-functional ratio.
///
/// # Example
///
/// ```
/// use thermsched_soc::TestSpec;
///
/// # fn main() -> Result<(), thermsched_soc::SocError> {
/// let spec = TestSpec::new("IntExec", 12.0, 1.0)?.with_functional_power(4.0)?;
/// assert_eq!(spec.core_name(), "IntExec");
/// assert!((spec.test_to_functional_ratio().unwrap() - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TestSpec {
    core_name: String,
    test_power: f64,
    test_time: f64,
    functional_power: Option<f64>,
}

impl TestSpec {
    /// Creates a specification for a core: average power during test (watts)
    /// and test length (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidTestSpec`] if power or time is non-positive
    /// or non-finite.
    pub fn new(core_name: impl Into<String>, test_power: f64, test_time: f64) -> Result<Self> {
        let core_name = core_name.into();
        if !(test_power > 0.0 && test_power.is_finite()) {
            return Err(SocError::InvalidTestSpec {
                name: core_name,
                field: "test_power_w",
                value: test_power,
            });
        }
        if !(test_time > 0.0 && test_time.is_finite()) {
            return Err(SocError::InvalidTestSpec {
                name: core_name,
                field: "test_time_s",
                value: test_time,
            });
        }
        Ok(TestSpec {
            core_name,
            test_power,
            test_time,
            functional_power: None,
        })
    }

    /// Attaches the core's functional (normal-mode) power, in watts.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidTestSpec`] if the value is non-positive or
    /// non-finite.
    pub fn with_functional_power(mut self, functional_power: f64) -> Result<Self> {
        if !(functional_power > 0.0 && functional_power.is_finite()) {
            return Err(SocError::InvalidTestSpec {
                name: self.core_name,
                field: "functional_power_w",
                value: functional_power,
            });
        }
        self.functional_power = Some(functional_power);
        Ok(self)
    }

    /// Name of the core (must match a floorplan block name).
    pub fn core_name(&self) -> &str {
        &self.core_name
    }

    /// Average power during test, in watts.
    pub fn test_power(&self) -> f64 {
        self.test_power
    }

    /// Test length in seconds.
    pub fn test_time(&self) -> f64 {
        self.test_time
    }

    /// Functional power in watts, if known.
    pub fn functional_power(&self) -> Option<f64> {
        self.functional_power
    }

    /// Ratio of test power to functional power, if functional power is known.
    pub fn test_to_functional_ratio(&self) -> Option<f64> {
        self.functional_power.map(|f| self.test_power / f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = TestSpec::new("cpu", 10.0, 2.0).unwrap();
        assert_eq!(s.core_name(), "cpu");
        assert_eq!(s.test_power(), 10.0);
        assert_eq!(s.test_time(), 2.0);
        assert_eq!(s.functional_power(), None);
        assert_eq!(s.test_to_functional_ratio(), None);
    }

    #[test]
    fn functional_power_and_ratio() {
        let s = TestSpec::new("cpu", 10.0, 1.0)
            .unwrap()
            .with_functional_power(2.5)
            .unwrap();
        assert_eq!(s.functional_power(), Some(2.5));
        assert_eq!(s.test_to_functional_ratio(), Some(4.0));
    }

    #[test]
    fn validation() {
        assert!(TestSpec::new("cpu", 0.0, 1.0).is_err());
        assert!(TestSpec::new("cpu", 10.0, 0.0).is_err());
        assert!(TestSpec::new("cpu", f64::NAN, 1.0).is_err());
        assert!(TestSpec::new("cpu", 10.0, f64::INFINITY).is_err());
        assert!(TestSpec::new("cpu", 10.0, 1.0)
            .unwrap()
            .with_functional_power(0.0)
            .is_err());
    }
}
