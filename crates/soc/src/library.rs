//! Ready-made systems under test.
//!
//! * [`alpha21364_sut`] — the Alpha-21364-like 15-core system used for the
//!   paper's experimental evaluation (Section 4), with test powers in the
//!   1.5×–8× range of the functional powers as stated in the paper. The
//!   absolute watt values are calibrated against the workspace's RC thermal
//!   model so that single-core tests stay below the paper's lowest
//!   temperature limit (145 °C) while unconstrained concurrency would push
//!   hot blocks well past the highest limit (185 °C) — the same dynamic range
//!   the paper's experiments operate in.
//! * [`figure1_sut`] — the hypothetical 7-core system of Figure 1: every core
//!   dissipates 15 W during test, so a 45 W chip-level power budget admits
//!   both the small-core session and the large-core session even though their
//!   peak temperatures differ drastically.

use thermsched_floorplan::library as floorplan_library;

use crate::{Result, SystemUnderTest, TestSpec};

/// Per-core test powers for the Alpha-21364-like system, as
/// `(core, test_power_w, functional_power_w)`.
///
/// Exposed so that benches and examples can report the test-to-functional
/// ratios alongside scheduling results.
pub const ALPHA21364_TEST_POWERS: [(&str, f64, f64); 15] = [
    ("L2_bottom", 40.0, 21.0),
    ("L2_left", 15.0, 8.0),
    ("L2_right", 15.0, 8.0),
    ("Icache", 16.0, 6.0),
    ("Dcache", 17.0, 6.0),
    ("LdStQ", 13.5, 2.5),
    ("IntExec", 21.0, 4.0),
    ("IntReg", 15.75, 2.8),
    ("IntMap", 11.0, 1.5),
    ("IntQ", 11.5, 1.6),
    ("Bpred", 8.0, 1.0),
    ("DTB", 7.0, 0.9),
    ("FPAdd", 20.0, 2.5),
    ("FPMul", 15.5, 2.0),
    ("FPReg", 12.5, 1.6),
];

/// Default per-core test length in seconds for the library systems.
///
/// The paper reports schedule lengths and simulation effort in whole seconds
/// for a 15-core system (2 s – 7 s schedules), which implies core tests of
/// roughly one second each; we use exactly one second so that "schedule
/// length in seconds" equals "number of test sessions".
pub const DEFAULT_TEST_TIME: f64 = 1.0;

/// Builds the Alpha-21364-like 15-core system under test used by the paper's
/// evaluation.
///
/// # Example
///
/// ```
/// let sut = thermsched_soc::library::alpha21364_sut();
/// assert_eq!(sut.core_count(), 15);
/// // Test power is 1.5x-8x the functional power for every core.
/// for (_, spec) in sut.iter() {
///     let ratio = spec.test_to_functional_ratio().unwrap();
///     assert!(ratio >= 1.5 && ratio <= 8.0);
/// }
/// ```
pub fn alpha21364_sut() -> SystemUnderTest {
    try_alpha21364_sut().expect("library system is valid by construction")
}

/// Fallible variant of [`alpha21364_sut`], useful when the caller wants to
/// surface construction errors instead of panicking.
///
/// # Errors
///
/// Never fails for the shipped constants; the `Result` form exists so the
/// construction path is also exercised through the error-checked API.
pub fn try_alpha21364_sut() -> Result<SystemUnderTest> {
    let floorplan = floorplan_library::alpha21364();
    let mut specs = Vec::with_capacity(ALPHA21364_TEST_POWERS.len());
    for (name, test_power, functional_power) in ALPHA21364_TEST_POWERS {
        specs.push(
            TestSpec::new(name, test_power, DEFAULT_TEST_TIME)?
                .with_functional_power(functional_power)?,
        );
    }
    SystemUnderTest::new(floorplan, specs)
}

/// Builds the hypothetical 7-core system of the paper's Figure 1: every core
/// dissipates 15 W during test (5 W functionally) for a 1-second test.
///
/// # Example
///
/// ```
/// let sut = thermsched_soc::library::figure1_sut();
/// assert_eq!(sut.core_count(), 7);
/// assert!((sut.total_test_power() - 105.0).abs() < 1e-9);
/// ```
pub fn figure1_sut() -> SystemUnderTest {
    try_figure1_sut().expect("library system is valid by construction")
}

/// Fallible variant of [`figure1_sut`].
///
/// # Errors
///
/// Never fails for the shipped constants.
pub fn try_figure1_sut() -> Result<SystemUnderTest> {
    let floorplan = floorplan_library::figure1_system();
    let specs = floorplan
        .blocks()
        .iter()
        .map(|b| {
            TestSpec::new(b.name(), 15.0, DEFAULT_TEST_TIME)
                .and_then(|s| s.with_functional_power(5.0))
        })
        .collect::<Result<Vec<_>>>()?;
    SystemUnderTest::new(floorplan, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sut_covers_every_block_exactly_once() {
        let sut = alpha21364_sut();
        assert_eq!(sut.core_count(), 15);
        for (id, spec) in sut.iter() {
            assert_eq!(
                sut.floorplan().index_of(spec.core_name()),
                Some(id),
                "spec order must match block order"
            );
        }
    }

    #[test]
    fn alpha_test_powers_follow_paper_ratio_range() {
        let sut = alpha21364_sut();
        for (_, spec) in sut.iter() {
            let ratio = spec.test_to_functional_ratio().unwrap();
            assert!(
                (1.5..=8.0).contains(&ratio),
                "core {} has test/functional ratio {ratio}",
                spec.core_name()
            );
        }
    }

    #[test]
    fn alpha_power_densities_span_a_wide_range() {
        // Datapath blocks must be far denser than the caches so that
        // power-density (not power) drives the schedule, as in the paper.
        // `value_spread` (rather than INFINITY-seeded folds) guarantees the
        // check cannot pass vacuously on an empty core set.
        let sut = alpha21364_sut();
        let densities = (0..sut.core_count()).map(|i| sut.test_power_density(i));
        let (min, max) = floorplan_library::value_spread(densities).expect("sut has cores");
        assert!(max / min > 3.0, "density spread too small: {min} .. {max}");
        assert_eq!(floorplan_library::value_spread((0..0).map(|_| 0.0)), None);
    }

    #[test]
    fn alpha_test_times_are_one_second() {
        let sut = alpha21364_sut();
        for (_, spec) in sut.iter() {
            assert_eq!(spec.test_time(), DEFAULT_TEST_TIME);
        }
        assert_eq!(sut.sequential_test_time(), 15.0);
    }

    #[test]
    fn figure1_sut_matches_paper_setup() {
        let sut = figure1_sut();
        assert_eq!(sut.core_count(), 7);
        for (_, spec) in sut.iter() {
            assert_eq!(spec.test_power(), 15.0);
            assert_eq!(spec.test_time(), 1.0);
        }
        // Power density of C2 is 4x that of C5 (the paper's observation).
        let c2 = sut.floorplan().index_of("C2").unwrap();
        let c5 = sut.floorplan().index_of("C5").unwrap();
        let ratio = sut.test_power_density(c2) / sut.test_power_density(c5);
        assert!((ratio - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fallible_constructors_succeed() {
        assert!(try_alpha21364_sut().is_ok());
        assert!(try_figure1_sut().is_ok());
    }
}
