//! Seeded random generation of systems under test.
//!
//! The paper evaluates one fixed system (the Alpha-21364-like SoC); the
//! generator here exists for the scaling and robustness studies in the bench
//! crate and for property-based tests, which need many structurally different
//! but always-valid systems.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thermsched_floorplan::{library as floorplan_library, Floorplan};

use crate::{Result, SocError, SystemUnderTest, TestSpec};

/// Configuration for [`SocGenerator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of grid columns of the generated floorplan.
    pub grid_columns: usize,
    /// Number of grid rows of the generated floorplan.
    pub grid_rows: usize,
    /// Edge length of each core in millimetres.
    pub core_size_mm: f64,
    /// Minimum test power density in W/mm².
    pub min_power_density: f64,
    /// Maximum test power density in W/mm².
    pub max_power_density: f64,
    /// Minimum core test time in seconds.
    pub min_test_time: f64,
    /// Maximum core test time in seconds.
    pub max_test_time: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            grid_columns: 4,
            grid_rows: 4,
            core_size_mm: 4.0,
            min_power_density: 0.2,
            max_power_density: 1.6,
            min_test_time: 1.0,
            max_test_time: 1.0,
        }
    }
}

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidGeneratorParameter`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<()> {
        if self.grid_columns == 0 {
            return Err(SocError::InvalidGeneratorParameter {
                name: "grid_columns",
                value: 0.0,
            });
        }
        if self.grid_rows == 0 {
            return Err(SocError::InvalidGeneratorParameter {
                name: "grid_rows",
                value: 0.0,
            });
        }
        let positive: [(&'static str, f64); 3] = [
            ("core_size_mm", self.core_size_mm),
            ("min_power_density", self.min_power_density),
            ("min_test_time", self.min_test_time),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(SocError::InvalidGeneratorParameter { name, value });
            }
        }
        if !(self.max_power_density >= self.min_power_density && self.max_power_density.is_finite())
        {
            return Err(SocError::InvalidGeneratorParameter {
                name: "max_power_density",
                value: self.max_power_density,
            });
        }
        if !(self.max_test_time >= self.min_test_time && self.max_test_time.is_finite()) {
            return Err(SocError::InvalidGeneratorParameter {
                name: "max_test_time",
                value: self.max_test_time,
            });
        }
        Ok(())
    }
}

/// Deterministic (seeded) generator of grid-shaped systems under test.
///
/// # Example
///
/// ```
/// use thermsched_soc::{GeneratorConfig, SocGenerator};
///
/// # fn main() -> Result<(), thermsched_soc::SocError> {
/// let mut generator = SocGenerator::new(42, GeneratorConfig::default())?;
/// let sut = generator.generate()?;
/// assert_eq!(sut.core_count(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SocGenerator {
    rng: StdRng,
    config: GeneratorConfig,
}

impl SocGenerator {
    /// Creates a generator with the given seed and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidGeneratorParameter`] if the configuration is
    /// invalid.
    pub fn new(seed: u64, config: GeneratorConfig) -> Result<Self> {
        config.validate()?;
        Ok(SocGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
        })
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the next system under test. Repeated calls yield different
    /// (but seed-deterministic) power assignments over the same grid
    /// floorplan.
    ///
    /// # Errors
    ///
    /// Propagates construction errors, which cannot occur for validated
    /// configurations.
    pub fn generate(&mut self) -> Result<SystemUnderTest> {
        let floorplan = self.floorplan();
        let core_area_mm2 = self.config.core_size_mm * self.config.core_size_mm;
        let mut specs = Vec::with_capacity(floorplan.block_count());
        for block in floorplan.blocks() {
            let density = self
                .rng
                .gen_range(self.config.min_power_density..=self.config.max_power_density);
            let test_time = if self.config.max_test_time > self.config.min_test_time {
                self.rng
                    .gen_range(self.config.min_test_time..=self.config.max_test_time)
            } else {
                self.config.min_test_time
            };
            let test_power = density * core_area_mm2;
            // Pick a functional power such that the test/functional ratio is
            // in the paper's 1.5x-8x range.
            let ratio = self.rng.gen_range(1.5..=8.0);
            specs.push(
                TestSpec::new(block.name(), test_power, test_time)?
                    .with_functional_power(test_power / ratio)?,
            );
        }
        SystemUnderTest::new(floorplan, specs)
    }

    /// The grid floorplan shared by all systems from this generator.
    pub fn floorplan(&self) -> Floorplan {
        floorplan_library::uniform_grid(
            self.config.grid_columns,
            self.config.grid_rows,
            self.config.core_size_mm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(GeneratorConfig::default().validate().is_ok());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field at a time is the point
    fn config_validation_catches_bad_fields() {
        let mut c = GeneratorConfig::default();
        c.grid_columns = 0;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.core_size_mm = -1.0;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.max_power_density = c.min_power_density / 2.0;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.max_test_time = 0.5;
        assert!(c.validate().is_err());

        assert!(SocGenerator::new(1, c).is_err());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let mut a = SocGenerator::new(7, GeneratorConfig::default()).unwrap();
        let mut b = SocGenerator::new(7, GeneratorConfig::default()).unwrap();
        let sa = a.generate().unwrap();
        let sb = b.generate().unwrap();
        for (x, y) in sa.test_specs().iter().zip(sb.test_specs()) {
            assert_eq!(x.test_power(), y.test_power());
            assert_eq!(x.test_time(), y.test_time());
        }
    }

    #[test]
    fn different_seeds_give_different_powers() {
        let mut a = SocGenerator::new(1, GeneratorConfig::default()).unwrap();
        let mut b = SocGenerator::new(2, GeneratorConfig::default()).unwrap();
        let sa = a.generate().unwrap();
        let sb = b.generate().unwrap();
        let same = sa
            .test_specs()
            .iter()
            .zip(sb.test_specs())
            .all(|(x, y)| (x.test_power() - y.test_power()).abs() < 1e-12);
        assert!(!same, "different seeds should produce different systems");
    }

    #[test]
    fn generated_sut_respects_configuration_bounds() {
        let config = GeneratorConfig {
            grid_columns: 3,
            grid_rows: 5,
            core_size_mm: 2.0,
            min_power_density: 0.5,
            max_power_density: 1.0,
            min_test_time: 0.5,
            max_test_time: 2.0,
        };
        let mut g = SocGenerator::new(99, config).unwrap();
        let sut = g.generate().unwrap();
        assert_eq!(sut.core_count(), 15);
        for (id, spec) in sut.iter() {
            let density = sut.test_power_density(id);
            assert!((0.5 - 1e-9..=1.0 + 1e-9).contains(&density));
            assert!(spec.test_time() >= 0.5 && spec.test_time() <= 2.0);
            let ratio = spec.test_to_functional_ratio().unwrap();
            assert!((1.5..=8.0 + 1e-9).contains(&ratio));
        }
    }

    #[test]
    fn repeated_generation_varies_power_assignment() {
        let mut g = SocGenerator::new(5, GeneratorConfig::default()).unwrap();
        let first = g.generate().unwrap();
        let second = g.generate().unwrap();
        let same = first
            .test_specs()
            .iter()
            .zip(second.test_specs())
            .all(|(x, y)| (x.test_power() - y.test_power()).abs() < 1e-12);
        assert!(!same);
        assert_eq!(g.config().grid_columns, 4);
    }
}
