//! [`Wire`] codecs for the system-under-test types.
//!
//! Both types decode through their validating constructors, so the
//! one-spec-per-block invariant of [`SystemUnderTest`] holds for wire input
//! exactly as it does for programmatic construction.

use thermsched_wire::{obj, JsonValue, Result, Wire, WireError};

use thermsched_floorplan::Floorplan;

use crate::{SystemUnderTest, TestSpec};

impl Wire for TestSpec {
    const WIRE_TYPE: &'static str = "test_spec";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("core_name", self.core_name())
            .field("test_power", self.test_power())
            .field("test_time", self.test_time())
            .field("functional_power", self.functional_power())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let invalid = |e: crate::SocError| WireError::Invalid {
            type_name: "test_spec",
            message: e.to_string(),
        };
        let mut spec = TestSpec::new(
            value.field_str("test_spec", "core_name")?,
            value.field_f64("test_spec", "test_power")?,
            value.field_f64("test_spec", "test_time")?,
        )
        .map_err(invalid)?;
        let functional = value.field("test_spec", "functional_power")?;
        if !matches!(functional, JsonValue::Null) {
            spec = spec
                .with_functional_power(functional.as_f64()?)
                .map_err(invalid)?;
        }
        Ok(spec)
    }
}

impl Wire for SystemUnderTest {
    const WIRE_TYPE: &'static str = "system_under_test";

    fn to_wire(&self) -> JsonValue {
        let specs: Vec<JsonValue> = self.test_specs().iter().map(Wire::to_wire).collect();
        obj()
            .field("floorplan", self.floorplan().to_wire())
            .field("test_specs", specs)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let floorplan = Floorplan::from_wire(value.field("system_under_test", "floorplan")?)?;
        let specs = value
            .field_array("system_under_test", "test_specs")?
            .iter()
            .map(TestSpec::from_wire)
            .collect::<Result<Vec<_>>>()?;
        SystemUnderTest::new(floorplan, specs).map_err(|e| WireError::Invalid {
            type_name: "system_under_test",
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sut_roundtrips_both_encodings() {
        let sut = crate::library::alpha21364_sut();
        let json = sut.to_json().unwrap();
        assert_eq!(SystemUnderTest::from_json(&json).unwrap(), sut);
        let binary = sut.to_binary().unwrap();
        assert_eq!(SystemUnderTest::from_binary(&binary).unwrap(), sut);
    }

    #[test]
    fn optional_functional_power_roundtrips() {
        let with = TestSpec::new("cpu", 8.0, 1.5)
            .unwrap()
            .with_functional_power(2.0)
            .unwrap();
        let without = TestSpec::new("cpu", 8.0, 1.5).unwrap();
        for spec in [with, without] {
            let json = spec.to_json().unwrap();
            assert_eq!(TestSpec::from_json(&json).unwrap(), spec);
        }
    }

    #[test]
    fn missing_spec_is_a_typed_error() {
        let sut = crate::library::figure1_sut();
        let mut wire = sut.to_wire();
        // Drop one test spec: the decode must fail SUT validation.
        if let JsonValue::Object(entries) = &mut wire {
            for (key, value) in entries.iter_mut() {
                if key == "test_specs" {
                    if let JsonValue::Array(items) = value {
                        items.pop();
                    }
                }
            }
        }
        assert!(matches!(
            SystemUnderTest::from_wire(&wire),
            Err(WireError::Invalid {
                type_name: "system_under_test",
                ..
            })
        ));
    }

    #[test]
    fn invalid_spec_values_are_typed_errors() {
        let bad = obj()
            .field("core_name", "cpu")
            .field("test_power", -1.0)
            .field("test_time", 1.0)
            .field("functional_power", JsonValue::Null)
            .build();
        assert!(matches!(
            TestSpec::from_wire(&bad),
            Err(WireError::Invalid {
                type_name: "test_spec",
                ..
            })
        ));
    }
}
