//! The system under test: a floorplan plus one test specification per core.

use std::fmt;

use thermsched_floorplan::{BlockId, Floorplan};

use crate::{Result, SocError, TestSpec};

/// A system-on-chip prepared for test scheduling: every floorplan block has a
/// test specification (test power and test time).
///
/// The type guarantees, by construction, that test specifications and
/// floorplan blocks are in one-to-one correspondence, so schedulers can index
/// both by [`BlockId`] without re-validating.
///
/// # Example
///
/// ```
/// use thermsched_floorplan::{Block, Floorplan};
/// use thermsched_soc::{SystemUnderTest, TestSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = Floorplan::new(vec![
///     Block::from_mm("cpu", 4.0, 4.0, 0.0, 0.0),
///     Block::from_mm("dsp", 4.0, 4.0, 4.0, 0.0),
/// ])?;
/// let sut = SystemUnderTest::new(
///     fp,
///     vec![TestSpec::new("cpu", 8.0, 1.0)?, TestSpec::new("dsp", 5.0, 1.0)?],
/// )?;
/// assert_eq!(sut.core_count(), 2);
/// assert_eq!(sut.test_spec(0).test_power(), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemUnderTest {
    floorplan: Floorplan,
    /// Test specs indexed by [`BlockId`].
    specs: Vec<TestSpec>,
}

impl SystemUnderTest {
    /// Pairs a floorplan with test specifications.
    ///
    /// The specifications may be given in any order; they are matched to
    /// blocks by core name.
    ///
    /// # Errors
    ///
    /// * [`SocError::UnknownCore`] if a specification names a block that does
    ///   not exist.
    /// * [`SocError::MissingTestSpec`] if any block has no specification.
    pub fn new(floorplan: Floorplan, specs: Vec<TestSpec>) -> Result<Self> {
        let mut ordered: Vec<Option<TestSpec>> = vec![None; floorplan.block_count()];
        for spec in specs {
            let id = floorplan
                .index_of(spec.core_name())
                .ok_or_else(|| SocError::UnknownCore {
                    name: spec.core_name().to_owned(),
                })?;
            ordered[id] = Some(spec);
        }
        let mut flat = Vec::with_capacity(ordered.len());
        for (id, spec) in ordered.into_iter().enumerate() {
            match spec {
                Some(s) => flat.push(s),
                None => {
                    return Err(SocError::MissingTestSpec {
                        name: floorplan.blocks()[id].name().to_owned(),
                    })
                }
            }
        }
        Ok(SystemUnderTest {
            floorplan,
            specs: flat,
        })
    }

    /// Number of cores (equal to the floorplan block count).
    pub fn core_count(&self) -> usize {
        self.specs.len()
    }

    /// Borrows the floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Test specification of core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn test_spec(&self, id: BlockId) -> &TestSpec {
        &self.specs[id]
    }

    /// All test specifications in block-id order.
    pub fn test_specs(&self) -> &[TestSpec] {
        &self.specs
    }

    /// Test power of core `id` in watts.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn test_power(&self, id: BlockId) -> f64 {
        self.specs[id].test_power()
    }

    /// Test time of core `id` in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn test_time(&self, id: BlockId) -> f64 {
        self.specs[id].test_time()
    }

    /// Test power density of core `id` in W/mm².
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn test_power_density(&self, id: BlockId) -> f64 {
        self.specs[id].test_power() / (self.floorplan.blocks()[id].area() * 1e6)
    }

    /// Sum of all core test powers in watts (the quantity a chip-level
    /// power-constrained scheduler budgets against).
    pub fn total_test_power(&self) -> f64 {
        self.specs.iter().map(TestSpec::test_power).sum()
    }

    /// Total test time if every core were tested back-to-back (the purely
    /// sequential schedule length), in seconds.
    pub fn sequential_test_time(&self) -> f64 {
        self.specs.iter().map(TestSpec::test_time).sum()
    }

    /// Iterates over `(BlockId, &TestSpec)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &TestSpec)> {
        self.specs.iter().enumerate()
    }
}

impl fmt::Display for SystemUnderTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SystemUnderTest: {} cores, total test power {:.1} W",
            self.core_count(),
            self.total_test_power()
        )?;
        for (id, spec) in self.iter() {
            writeln!(
                f,
                "  [{id:2}] {:<12} {:6.2} W for {:.2} s ({:.2} W/mm^2)",
                spec.core_name(),
                spec.test_power(),
                spec.test_time(),
                self.test_power_density(id)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_floorplan::Block;

    fn fp() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("cpu", 4.0, 4.0, 0.0, 0.0),
            Block::from_mm("dsp", 2.0, 4.0, 4.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn pairs_specs_with_blocks_by_name() {
        // Note reversed order relative to the floorplan.
        let sut = SystemUnderTest::new(
            fp(),
            vec![
                TestSpec::new("dsp", 5.0, 2.0).unwrap(),
                TestSpec::new("cpu", 8.0, 1.0).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(sut.core_count(), 2);
        assert_eq!(sut.test_spec(0).core_name(), "cpu");
        assert_eq!(sut.test_power(0), 8.0);
        assert_eq!(sut.test_time(1), 2.0);
        assert_eq!(sut.total_test_power(), 13.0);
        assert_eq!(sut.sequential_test_time(), 3.0);
    }

    #[test]
    fn rejects_unknown_and_missing_cores() {
        let err = SystemUnderTest::new(
            fp(),
            vec![
                TestSpec::new("cpu", 8.0, 1.0).unwrap(),
                TestSpec::new("gpu", 5.0, 1.0).unwrap(),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SocError::UnknownCore { .. }));

        let err =
            SystemUnderTest::new(fp(), vec![TestSpec::new("cpu", 8.0, 1.0).unwrap()]).unwrap_err();
        assert!(matches!(err, SocError::MissingTestSpec { .. }));
    }

    #[test]
    fn power_density_uses_block_area() {
        let sut = SystemUnderTest::new(
            fp(),
            vec![
                TestSpec::new("cpu", 16.0, 1.0).unwrap(),
                TestSpec::new("dsp", 8.0, 1.0).unwrap(),
            ],
        )
        .unwrap();
        // cpu: 16 W over 16 mm^2 = 1 W/mm^2; dsp: 8 W over 8 mm^2 = 1 W/mm^2.
        assert!((sut.test_power_density(0) - 1.0).abs() < 1e-9);
        assert!((sut.test_power_density(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_lists_cores() {
        let sut = SystemUnderTest::new(
            fp(),
            vec![
                TestSpec::new("cpu", 8.0, 1.0).unwrap(),
                TestSpec::new("dsp", 5.0, 1.0).unwrap(),
            ],
        )
        .unwrap();
        let text = format!("{sut}");
        assert!(text.contains("2 cores"));
        assert!(text.contains("cpu"));
        assert!(text.contains("dsp"));
    }

    #[test]
    fn iter_yields_block_order() {
        let sut = SystemUnderTest::new(
            fp(),
            vec![
                TestSpec::new("dsp", 5.0, 1.0).unwrap(),
                TestSpec::new("cpu", 8.0, 1.0).unwrap(),
            ],
        )
        .unwrap();
        let names: Vec<&str> = sut.iter().map(|(_, s)| s.core_name()).collect();
        assert_eq!(names, vec!["cpu", "dsp"]);
    }
}
