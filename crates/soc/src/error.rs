//! Error type for SoC test-description construction.

use std::error::Error;
use std::fmt;

/// Errors produced while describing a system under test.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// A test specification refers to a block name that is not in the
    /// floorplan.
    UnknownCore {
        /// The name that could not be resolved.
        name: String,
    },
    /// A core has no test specification.
    MissingTestSpec {
        /// Name of the core without a specification.
        name: String,
    },
    /// A test power or duration is non-positive or non-finite.
    InvalidTestSpec {
        /// Name of the offending core.
        name: String,
        /// Description of the offending field.
        field: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A generator parameter is out of range.
    InvalidGeneratorParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnknownCore { name } => write!(f, "unknown core '{name}'"),
            SocError::MissingTestSpec { name } => {
                write!(f, "core '{name}' has no test specification")
            }
            SocError::InvalidTestSpec { name, field, value } => {
                write!(f, "core '{name}' has invalid {field} = {value}")
            }
            SocError::InvalidGeneratorParameter { name, value } => {
                write!(f, "invalid generator parameter {name} = {value}")
            }
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SocError::UnknownCore { name: "cpu".into() };
        assert_eq!(e.to_string(), "unknown core 'cpu'");
        let e = SocError::InvalidTestSpec {
            name: "cpu".into(),
            field: "test_power_w",
            value: -3.0,
        };
        assert!(e.to_string().contains("test_power_w"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
