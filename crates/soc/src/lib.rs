//! System-under-test descriptions for the `thermsched` workspace.
//!
//! The DATE 2005 paper schedules the tests of embedded cores of an SoC. This
//! crate provides the data model for that input:
//!
//! * [`TestSpec`] — how one core behaves while its test set is applied
//!   (average test power, test length, optional functional power),
//! * [`SystemUnderTest`] — a floorplan paired with one test specification per
//!   core, the input type consumed by every scheduler in the `thermsched`
//!   core crate,
//! * [`library`] — the two systems the paper uses (the Alpha-21364-like
//!   15-core SoC of the evaluation and the hypothetical 7-core SoC of
//!   Figure 1), and
//! * [`SocGenerator`] — a seeded random generator of grid-shaped systems for
//!   scaling studies and property-based tests.
//!
//! # Example
//!
//! ```
//! use thermsched_soc::library;
//!
//! let sut = library::alpha21364_sut();
//! println!("{sut}");
//! assert_eq!(sut.core_count(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod generator;
pub mod library;
mod soc;
mod test_spec;
mod wire;

pub use error::SocError;
pub use generator::{GeneratorConfig, SocGenerator};
pub use soc::SystemUnderTest;
pub use test_spec::TestSpec;

/// Convenience result alias used throughout this crate.
pub type Result<T, E = SocError> = std::result::Result<T, E>;
