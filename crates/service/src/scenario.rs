//! Deterministic, seed-driven generation of scenario corpora.
//!
//! The paper evaluates two fixed systems; a service that is supposed to
//! handle "as many scenarios as you can imagine" needs a workload to prove
//! it on. A [`ScenarioSpec`] describes a family of systems (grid shapes,
//! power-density and test-time ranges, all driven by one seed through
//! [`thermsched_soc::SocGenerator`]) crossed with an operating grid
//! (`TL × STCL` plus weight-factor / ordering variants), and
//! [`ScenarioSpec::build`] expands it into a [`Corpus`]: concrete systems
//! under test plus one [`JobSpec`] per (scenario, operating point). The
//! expansion is a pure function of the spec — same spec, same corpus, byte
//! for byte — which is what makes the service's determinism contract
//! testable.

use thermsched::{
    CoreOrdering, CoreViolationPolicy, OnlineContext, SchedulerConfig, TraceProfile, TraceSegment,
};
use thermsched_soc::{GeneratorConfig, SocGenerator, SystemUnderTest};

use crate::{Result, ServiceError};

/// Seeded family of time-varying power shapes a spec can stamp onto its
/// jobs. A family is a *generator* of [`TraceProfile`]s: the concrete
/// segment scales are drawn deterministically from the per-job seed, so two
/// builds of one spec materialise bit-identical profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFamily {
    /// Four equal segments ramping linearly from a seeded low scale up to a
    /// seeded peak — a workload heating up through the test.
    Ramp,
    /// Eight equal segments alternating between a seeded high and low scale
    /// — a periodic burst/rest pattern.
    Periodic,
    /// Active at a seeded scale for half the session, fully idle for a
    /// quarter, then active again — a test with a cooling gap in the middle.
    IdleGap,
}

impl TraceFamily {
    /// Stable wire / CLI name of the family.
    pub fn label(self) -> &'static str {
        match self {
            TraceFamily::Ramp => "ramp",
            TraceFamily::Periodic => "periodic",
            TraceFamily::IdleGap => "idle_gap",
        }
    }

    /// Parses a family from its [`Self::label`] name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ramp" => Some(TraceFamily::Ramp),
            "periodic" => Some(TraceFamily::Periodic),
            "idle_gap" => Some(TraceFamily::IdleGap),
            _ => None,
        }
    }

    /// Materialises the family into a concrete seeded profile. Segment
    /// fractions are exact dyadic values (`0.5`, `0.25`, `0.125`) so the
    /// profile always passes [`TraceProfile::new`]'s sum-to-one check
    /// exactly, and the scales are pure functions of `seed`.
    pub fn profile(self, seed: u64) -> TraceProfile {
        let mut state = seed;
        let segments: Vec<TraceSegment> = match self {
            TraceFamily::Ramp => {
                let start = 0.25 + 0.25 * unit_f64(&mut state);
                let end = 1.0 + 0.5 * unit_f64(&mut state);
                (0..4)
                    .map(|i| TraceSegment::new(start + (end - start) * (i as f64 / 3.0), 0.25))
                    .collect()
            }
            TraceFamily::Periodic => {
                let high = 1.0 + 0.25 * unit_f64(&mut state);
                let low = 0.25 + 0.25 * unit_f64(&mut state);
                (0..8)
                    .map(|i| TraceSegment::new(if i % 2 == 0 { high } else { low }, 0.125))
                    .collect()
            }
            TraceFamily::IdleGap => {
                let active = 0.75 + 0.5 * unit_f64(&mut state);
                let tail = 0.5 + 0.5 * unit_f64(&mut state);
                vec![
                    TraceSegment::new(active, 0.5),
                    TraceSegment::new(0.0, 0.25),
                    TraceSegment::new(tail, 0.25),
                ]
            }
        };
        TraceProfile::new(segments).expect("family fractions are exact dyadic sums of one")
    }
}

/// Specification of a scenario corpus: how many systems to generate, what
/// they look like, and which operating points to schedule each one at.
///
/// # Example
///
/// ```
/// use thermsched_service::ScenarioSpec;
///
/// # fn main() -> Result<(), thermsched_service::ServiceError> {
/// let corpus = ScenarioSpec {
///     scenarios: 4,
///     seed: 7,
///     ..ScenarioSpec::default()
/// }
/// .build()?;
/// assert_eq!(corpus.scenarios().len(), 4);
/// // Default operating grid: 1 TL × 2 STCLs per scenario.
/// assert_eq!(corpus.jobs().len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Master seed; every scenario derives its own generator seed from this.
    pub seed: u64,
    /// Number of systems under test to generate.
    pub scenarios: usize,
    /// Grid shapes `(columns, rows)` cycled over the scenarios.
    pub grid_shapes: Vec<(usize, usize)>,
    /// Core edge length in millimetres.
    pub core_size_mm: f64,
    /// Test power density range in W/mm² (min, max).
    pub power_density: (f64, f64),
    /// Core test time range in seconds (min, max).
    pub test_time: (f64, f64),
    /// Temperature limits (`TL`, °C) every scenario is scheduled at.
    pub temperature_limits: Vec<f64>,
    /// Session thermal characteristic limits (`STCL`) crossed with the
    /// temperature limits.
    pub stc_limits: Vec<f64>,
    /// Violation weight factors cycled over the jobs.
    pub weight_factors: Vec<f64>,
    /// Candidate-core orderings cycled over the jobs.
    pub orderings: Vec<CoreOrdering>,
    /// Margin (°C) for the `RaiseLimit` core-violation policy, or `None` to
    /// fail jobs whose hottest core violates `TL` alone. Generated systems
    /// span a wide power-density range, so the service defaults to raising —
    /// a batch should report hot scenarios, not abort on them.
    pub raise_limit_margin: Option<f64>,
    /// Trace families cycled over the jobs. Empty (the default) keeps every
    /// job constant-power; non-empty stamps each job with a seeded
    /// [`TraceProfile`] drawn from the family at `index % len`.
    pub trace_families: Vec<TraceFamily>,
    /// Warm-start temperature range `(low, high)` in °C, or `None` (the
    /// default) to start every job from ambient. When set, each job gets a
    /// seeded per-block initial temperature vector drawn uniformly from the
    /// range, modelling state chained from a previous batch.
    pub warm_start_range: Option<(f64, f64)>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 2005,
            scenarios: 8,
            grid_shapes: vec![(3, 3), (4, 3), (4, 4), (5, 4)],
            core_size_mm: 4.0,
            power_density: (0.2, 1.2),
            test_time: (1.0, 1.0),
            // Tight enough that candidate sessions violate and get
            // discarded on hot scenarios — the adaptive-weight and
            // cache-reuse machinery is part of the workload, not idle.
            temperature_limits: vec![120.0],
            stc_limits: vec![30.0, 60.0],
            weight_factors: vec![1.1],
            orderings: vec![CoreOrdering::AsGiven],
            raise_limit_margin: Some(5.0),
            trace_families: vec![],
            warm_start_range: None,
        }
    }
}

impl ScenarioSpec {
    /// Number of jobs the spec expands to.
    pub fn job_count(&self) -> usize {
        self.scenarios * self.temperature_limits.len() * self.stc_limits.len()
    }

    /// Expands the spec into a concrete, fully deterministic corpus.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::InvalidSpec`] if a list field is empty or a count is
    ///   zero.
    /// * [`ServiceError::Soc`] for generator parameters out of range.
    /// * [`ServiceError::Schedule`] for operating points that do not form a
    ///   valid [`SchedulerConfig`].
    pub fn build(&self) -> Result<Corpus> {
        self.validate()?;
        let mut scenarios = Vec::with_capacity(self.scenarios);
        for index in 0..self.scenarios {
            let (columns, rows) = self.grid_shapes[index % self.grid_shapes.len()];
            let config = GeneratorConfig {
                grid_columns: columns,
                grid_rows: rows,
                core_size_mm: self.core_size_mm,
                min_power_density: self.power_density.0,
                max_power_density: self.power_density.1,
                min_test_time: self.test_time.0,
                max_test_time: self.test_time.1,
            };
            let seed = derive_seed(self.seed, index as u64);
            let sut = SocGenerator::new(seed, config)?.generate()?;
            scenarios.push(Scenario {
                name: format!("s{index:02}-g{columns}x{rows}"),
                seed,
                grid: (columns, rows),
                core_size_mm: self.core_size_mm,
                sut,
            });
        }

        let policy = match self.raise_limit_margin {
            Some(margin) => CoreViolationPolicy::RaiseLimit { margin },
            None => CoreViolationPolicy::Fail,
        };
        let mut jobs = Vec::with_capacity(self.job_count());
        for (scenario, generated) in scenarios.iter().enumerate() {
            for &tl in &self.temperature_limits {
                for &stcl in &self.stc_limits {
                    let index = jobs.len();
                    let weight_factor = self.weight_factors[index % self.weight_factors.len()];
                    let ordering = self.orderings[index % self.orderings.len()];
                    let config = SchedulerConfig::new(tl, stcl)?
                        .with_weight_factor(weight_factor)
                        .with_ordering(ordering)
                        .with_core_violation_policy(policy);
                    let mut label = format!("TL={tl} STCL={stcl} wf={weight_factor} {ordering:?}");
                    let trace = if self.trace_families.is_empty() {
                        None
                    } else {
                        let family = self.trace_families[index % self.trace_families.len()];
                        label.push_str(" trace=");
                        label.push_str(family.label());
                        Some(family.profile(derive_seed(self.seed ^ TRACE_STREAM, index as u64)))
                    };
                    let warm_start = self.warm_start_range.map(|(low, high)| {
                        label.push_str(" warm");
                        let mut state = derive_seed(self.seed ^ WARM_STREAM, index as u64);
                        let blocks = generated.sut.core_count();
                        (0..blocks)
                            .map(|_| low + (high - low) * unit_f64(&mut state))
                            .collect()
                    });
                    jobs.push(JobSpec {
                        scenario,
                        label,
                        config,
                        trace,
                        warm_start,
                    });
                }
            }
        }
        Ok(Corpus { scenarios, jobs })
    }

    fn validate(&self) -> Result<()> {
        let non_empty: [(&'static str, bool); 6] = [
            ("scenarios", self.scenarios > 0),
            ("grid_shapes", !self.grid_shapes.is_empty()),
            ("temperature_limits", !self.temperature_limits.is_empty()),
            ("stc_limits", !self.stc_limits.is_empty()),
            ("weight_factors", !self.weight_factors.is_empty()),
            ("orderings", !self.orderings.is_empty()),
        ];
        for (field, ok) in non_empty {
            if !ok {
                return Err(ServiceError::InvalidSpec {
                    field,
                    problem: "must be non-empty",
                });
            }
        }
        if let Some((low, high)) = self.warm_start_range {
            if !low.is_finite() || !high.is_finite() || low > high {
                return Err(ServiceError::InvalidSpec {
                    field: "warm_start_range",
                    problem: "must be finite with low <= high",
                });
            }
        }
        Ok(())
    }
}

/// Stream salts so trace scales and warm-start temperatures draw from
/// generator streams unrelated to each other and to the scenario stream.
const TRACE_STREAM: u64 = 0x5452_4143_4553_5452;
const WARM_STREAM: u64 = 0x5741_524d_5354_524d;

/// One SplitMix64 step of `state`, folded to a uniform value in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 mix of the master seed and a scenario index, so neighbouring
/// scenarios get statistically unrelated generator streams.
fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One generated system under test of a corpus.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable human-readable name (`"s03-g4x4"`).
    pub name: String,
    /// The derived generator seed that produced this scenario.
    pub seed: u64,
    /// Grid shape `(columns, rows)` of the generated floorplan. Scenarios
    /// sharing a shape (and core size) share an *identical* floorplan —
    /// only power assignments differ — which is what makes the service's
    /// cross-scenario operator cache exact.
    pub grid: (usize, usize),
    /// Core edge length in millimetres.
    pub core_size_mm: f64,
    /// The generated system under test.
    pub sut: SystemUnderTest,
}

/// One scheduling job: a scenario index into the corpus plus the full
/// configuration the run uses.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Index into [`Corpus::scenarios`].
    pub scenario: usize,
    /// Human-readable operating-point label.
    pub label: String,
    /// The scheduler configuration of this run.
    pub config: SchedulerConfig,
    /// Time-varying power shape every session of this job follows, or
    /// `None` for the classic constant-power run.
    pub trace: Option<TraceProfile>,
    /// Per-core initial temperatures (°C) to re-plan from, or `None` to
    /// start from ambient.
    pub warm_start: Option<Vec<f64>>,
}

impl JobSpec {
    /// Whether this job carries any online state (a trace or a warm start).
    pub fn is_online(&self) -> bool {
        self.trace.is_some() || self.warm_start.is_some()
    }

    /// Assembles the job's [`OnlineContext`], or `None` for a plain
    /// constant-power job. Errors surface scheduler-level validation (e.g.
    /// non-finite warm-start temperatures).
    pub fn online_context(&self) -> thermsched::Result<Option<OnlineContext>> {
        if !self.is_online() {
            return Ok(None);
        }
        let mut online = OnlineContext::new();
        if let Some(trace) = &self.trace {
            online = online.with_trace(trace.clone());
        }
        if let Some(warm) = &self.warm_start {
            online = online.with_warm_start(warm.clone())?;
        }
        Ok(Some(online))
    }
}

/// A fully expanded corpus: the generated systems and the jobs to run over
/// them, both in deterministic spec order.
#[derive(Debug, Clone)]
pub struct Corpus {
    scenarios: Vec<Scenario>,
    jobs: Vec<JobSpec>,
}

impl Corpus {
    /// Reassembles a corpus from its parts (wire decode only), checking
    /// that every job references a scenario the corpus actually has. An
    /// empty corpus is legal — the runner handles zero jobs.
    pub(crate) fn from_parts(
        scenarios: Vec<Scenario>,
        jobs: Vec<JobSpec>,
    ) -> Result<Self, ServiceError> {
        for job in &jobs {
            if job.scenario >= scenarios.len() {
                return Err(ServiceError::InvalidSpec {
                    field: "jobs",
                    problem: "job references a scenario index outside the corpus",
                });
            }
        }
        Ok(Corpus { scenarios, jobs })
    }

    /// The generated scenarios, in generation order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The jobs, in deterministic scenario-major order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Total core count over all scenarios (a proxy for corpus size).
    pub fn total_cores(&self) -> usize {
        self.scenarios.iter().map(|s| s.sut.core_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_a_deterministic_corpus() {
        let spec = ScenarioSpec::default();
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.scenarios().len(), 8);
        assert_eq!(a.jobs().len(), spec.job_count());
        assert!(a.total_cores() > 0);
        for (x, y) in a.scenarios().iter().zip(b.scenarios()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            for (sx, sy) in x.sut.test_specs().iter().zip(y.sut.test_specs()) {
                assert_eq!(sx.test_power(), sy.test_power());
                assert_eq!(sx.test_time(), sy.test_time());
            }
        }
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn scenarios_cycle_grid_shapes_and_differ_in_powers() {
        let corpus = ScenarioSpec {
            scenarios: 5,
            ..ScenarioSpec::default()
        }
        .build()
        .unwrap();
        let s = corpus.scenarios();
        assert_eq!(s[0].sut.core_count(), 9);
        assert_eq!(s[1].sut.core_count(), 12);
        assert_eq!(s[2].sut.core_count(), 16);
        assert_eq!(s[3].sut.core_count(), 20);
        assert_eq!(s[4].sut.core_count(), 9, "shapes cycle");
        assert_eq!(s[4].name, "s04-g3x3");
        // Same shape, different seed: the power assignment must differ.
        let same = s[0]
            .sut
            .test_specs()
            .iter()
            .zip(s[4].sut.test_specs())
            .all(|(x, y)| (x.test_power() - y.test_power()).abs() < 1e-12);
        assert!(!same);
    }

    #[test]
    fn jobs_cross_scenarios_with_the_operating_grid() {
        let spec = ScenarioSpec {
            scenarios: 2,
            temperature_limits: vec![155.0, 165.0],
            stc_limits: vec![30.0],
            weight_factors: vec![1.1, 1.5],
            ..ScenarioSpec::default()
        };
        let corpus = spec.build().unwrap();
        assert_eq!(corpus.jobs().len(), 4);
        assert_eq!(corpus.jobs()[0].scenario, 0);
        assert_eq!(corpus.jobs()[3].scenario, 1);
        assert_eq!(corpus.jobs()[0].config.temperature_limit, 155.0);
        assert_eq!(corpus.jobs()[0].config.weight_factor, 1.1);
        assert_eq!(corpus.jobs()[1].config.weight_factor, 1.5, "factors cycle");
        assert!(corpus.jobs()[0].label.contains("TL=155"));
    }

    #[test]
    fn empty_fields_are_rejected_by_name() {
        for (field, spec) in [
            (
                "scenarios",
                ScenarioSpec {
                    scenarios: 0,
                    ..ScenarioSpec::default()
                },
            ),
            (
                "stc_limits",
                ScenarioSpec {
                    stc_limits: vec![],
                    ..ScenarioSpec::default()
                },
            ),
            (
                "orderings",
                ScenarioSpec {
                    orderings: vec![],
                    ..ScenarioSpec::default()
                },
            ),
        ] {
            match spec.build() {
                Err(ServiceError::InvalidSpec { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidSpec for {field}, got {other:?}"),
            }
        }
        // Generator-level validation propagates as Soc errors.
        let bad = ScenarioSpec {
            core_size_mm: -1.0,
            ..ScenarioSpec::default()
        };
        assert!(matches!(bad.build(), Err(ServiceError::Soc(_))));
        // Operating-point validation propagates as Schedule errors.
        let bad = ScenarioSpec {
            temperature_limits: vec![-10.0],
            ..ScenarioSpec::default()
        };
        assert!(matches!(bad.build(), Err(ServiceError::Schedule(_))));
    }

    #[test]
    fn empty_grid_shape_range_is_rejected_by_name() {
        let spec = ScenarioSpec {
            grid_shapes: vec![],
            ..ScenarioSpec::default()
        };
        match spec.build() {
            Err(ServiceError::InvalidSpec { field, .. }) => assert_eq!(field, "grid_shapes"),
            other => panic!("expected InvalidSpec for grid_shapes, got {other:?}"),
        }
        // A shape range with a zero dimension fails at the generator level.
        let spec = ScenarioSpec {
            grid_shapes: vec![(0, 3)],
            ..ScenarioSpec::default()
        };
        assert!(matches!(spec.build(), Err(ServiceError::Soc(_))));
    }

    #[test]
    fn single_job_corpus_expands_deterministically() {
        let spec = ScenarioSpec {
            scenarios: 1,
            grid_shapes: vec![(3, 3)],
            temperature_limits: vec![165.0],
            stc_limits: vec![45.0],
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.job_count(), 1);
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.scenarios().len(), 1);
        assert_eq!(a.jobs().len(), 1);
        assert_eq!(a.jobs()[0].scenario, 0);
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.scenarios()[0].grid, (3, 3));
        assert_eq!(a.scenarios()[0].core_size_mm, spec.core_size_mm);
        assert_eq!(a.scenarios()[0].seed, b.scenarios()[0].seed);
    }

    #[test]
    fn single_shape_corpus_shares_one_floorplan_across_scenarios() {
        // The operator cache's exactness precondition: same shape (and core
        // size) means an *identical* floorplan — only powers differ.
        let corpus = ScenarioSpec {
            scenarios: 4,
            grid_shapes: vec![(4, 3)],
            ..ScenarioSpec::default()
        }
        .build()
        .unwrap();
        let reference = corpus.scenarios()[0].sut.floorplan();
        for scenario in &corpus.scenarios()[1..] {
            assert_eq!(scenario.grid, (4, 3));
            let fp = scenario.sut.floorplan();
            assert_eq!(fp.block_count(), reference.block_count());
            for (a, b) in fp.blocks().iter().zip(reference.blocks()) {
                assert_eq!(a.name(), b.name());
                assert_eq!(a.rect(), b.rect());
            }
        }
    }

    #[test]
    fn default_spec_jobs_are_offline() {
        let corpus = ScenarioSpec::default().build().unwrap();
        for job in corpus.jobs() {
            assert!(!job.is_online());
            assert!(job.online_context().unwrap().is_none());
            assert!(!job.label.contains("trace="));
            assert!(!job.label.contains("warm"));
        }
    }

    #[test]
    fn trace_families_cycle_and_seed_deterministically() {
        let spec = ScenarioSpec {
            scenarios: 2,
            trace_families: vec![
                TraceFamily::Ramp,
                TraceFamily::Periodic,
                TraceFamily::IdleGap,
            ],
            ..ScenarioSpec::default()
        };
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.jobs(), b.jobs(), "traces are a pure function of the spec");
        assert_eq!(a.jobs().len(), 4);
        let traces: Vec<_> = a.jobs().iter().map(|j| j.trace.clone().unwrap()).collect();
        assert_eq!(traces[0].segment_count(), 4, "ramp");
        assert_eq!(traces[1].segment_count(), 8, "periodic");
        assert_eq!(traces[2].segment_count(), 3, "idle gap");
        assert_eq!(traces[3].segment_count(), 4, "families cycle");
        // Same family, different job index: different seeded scales.
        assert_ne!(traces[0], traces[3]);
        assert!(a.jobs()[0].label.contains("trace=ramp"));
        assert!(a.jobs()[2].label.contains("trace=idle_gap"));
        // The idle-gap family really has a zero-power middle segment.
        assert_eq!(traces[2].segments()[1].scale, 0.0);
    }

    #[test]
    fn warm_start_ranges_generate_per_core_vectors() {
        let spec = ScenarioSpec {
            scenarios: 2,
            warm_start_range: Some((50.0, 70.0)),
            ..ScenarioSpec::default()
        };
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.jobs(), b.jobs());
        for job in a.jobs() {
            let warm = job.warm_start.as_ref().unwrap();
            assert_eq!(warm.len(), a.scenarios()[job.scenario].sut.core_count());
            assert!(warm.iter().all(|&t| (50.0..=70.0).contains(&t)));
            assert!(job.label.ends_with(" warm"));
            assert!(job
                .online_context()
                .unwrap()
                .unwrap()
                .warm_start()
                .is_some());
        }
        // Different jobs draw different vectors.
        assert_ne!(a.jobs()[0].warm_start, a.jobs()[1].warm_start);
    }

    #[test]
    fn invalid_warm_start_ranges_are_rejected_by_name() {
        for range in [(70.0, 50.0), (f64::NAN, 60.0), (50.0, f64::INFINITY)] {
            let spec = ScenarioSpec {
                warm_start_range: Some(range),
                ..ScenarioSpec::default()
            };
            match spec.build() {
                Err(ServiceError::InvalidSpec { field, .. }) => {
                    assert_eq!(field, "warm_start_range")
                }
                other => panic!("expected InvalidSpec for {range:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_family_labels_roundtrip_through_parse() {
        for family in [
            TraceFamily::Ramp,
            TraceFamily::Periodic,
            TraceFamily::IdleGap,
        ] {
            assert_eq!(TraceFamily::parse(family.label()), Some(family));
        }
        assert_eq!(TraceFamily::parse("square"), None);
    }

    #[test]
    fn derived_seeds_are_spread() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(1, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}
