//! The concurrent batch runner: a job queue drained by a pool of scoped
//! worker threads with per-worker engine reuse and per-job panic isolation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use thermsched::TestSession;
use thermsched::{
    Engine, InterruptReason, NestedParallelismGuard, OperatorCacheHandle, OperatorKey,
    ScheduleCheckpoint, ScheduleError, ScheduleOutcome, ScheduleProgress, SessionCacheHandle,
    StoreStats,
};
use thermsched_obs::{MetricsRegistry, Tracer};
use thermsched_thermal::{
    GridResolution, GridThermalSimulator, PackageConfig, PowerMap, RcThermalSimulator,
    SessionThermalResult, ThermalBackend, TransientConfig, TransientMethod,
};

use crate::report::LatencyStats;
use crate::{
    ClockKind, Corpus, FaultKind, FaultPlan, JobOutcome, JobResult, JobSpec, Result, RetryPolicy,
    Scenario, ServiceError, ServiceReport, ServiceStats,
};

/// Which thermal backend validates every job of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendKind {
    /// The block-level RC-compact simulator with the precomputed-operator
    /// fast transient path — one node per core, the service default.
    #[default]
    RcCompact,
    /// The fine-grained grid simulator on its full-fidelity transient path:
    /// each core is resolved into `cells_per_core × cells_per_core` thermal
    /// cells and sessions integrate the cell network with implicit Euler
    /// over a banded factorisation shared via the operator cache.
    GridTransient {
        /// Cells per core edge; a scenario on a `c × r` core grid runs at
        /// grid resolution `(c · cells_per_core) × (r · cells_per_core)`.
        cells_per_core: usize,
    },
    /// The grid simulator on the Peaceman–Rachford ADI path
    /// ([`TransientMethod::Adi`]): `O(n)` per step through shared
    /// tridiagonal sweeps instead of `O(n · b)` banded solves, for
    /// resolutions where the banded factorisation stops being affordable.
    /// Session maxima are tracked per step (ADI iterates are not provably
    /// monotone), so this kind never uses the fast path or the multi-RHS
    /// batcher — its leverage is per-step cost at high resolution.
    GridAdi {
        /// Cells per core edge, as for [`BackendKind::GridTransient`].
        cells_per_core: usize,
        /// Integration step in seconds (part of the operator-cache key: two
        /// ADI backends with different steps never alias).
        time_step: f64,
    },
}

impl BackendKind {
    /// Short label for reports (`"rc-compact"`, `"grid-transient(4)"`,
    /// `"grid-adi(4)"`).
    pub fn label(self) -> String {
        match self {
            BackendKind::RcCompact => "rc-compact".to_owned(),
            BackendKind::GridTransient { cells_per_core } => {
                format!("grid-transient({cells_per_core})")
            }
            BackendKind::GridAdi { cells_per_core, .. } => {
                format!("grid-adi({cells_per_core})")
            }
        }
    }

    /// The transient configuration this kind builds its backend with — used
    /// by both [`BackendKind::key`] and the builder, so the cache key can
    /// never drift from what construction actually depends on.
    fn transient_config(self) -> TransientConfig {
        match self {
            BackendKind::RcCompact | BackendKind::GridTransient { .. } => {
                TransientConfig::default()
            }
            BackendKind::GridAdi { time_step, .. } => TransientConfig {
                time_step,
                method: TransientMethod::Adi,
            },
        }
    }

    /// The operator-cache identity of this kind over one scenario: backend
    /// kind, grid shape, core size, and the transient configuration (time
    /// step and method) — everything backend construction depends on. The
    /// time step enters as its exact bit pattern, so two backends sharing a
    /// floorplan shape but differing in Δt (or method, or `cells_per_core`,
    /// which the label carries) can never alias one cache entry. Public so
    /// external measurement and tooling share the runner's exact key instead
    /// of reimplementing it.
    pub fn key(self, scenario: &Scenario) -> OperatorKey {
        let transient = self.transient_config();
        OperatorKey::new(self.label(), scenario.grid.0, scenario.grid.1).with_detail(format!(
            "core={:.6}mm;dt=0x{:016x};method={:?}",
            scenario.core_size_mm,
            transient.time_step.to_bits(),
            transient.method,
        ))
    }

    /// Builds the backend for one scenario.
    fn build(self, scenario: &Scenario) -> Result<Arc<dyn ThermalBackend>> {
        match self {
            BackendKind::RcCompact => Ok(Arc::new(RcThermalSimulator::from_floorplan(
                scenario.sut.floorplan(),
            )?)),
            BackendKind::GridTransient { cells_per_core }
            | BackendKind::GridAdi { cells_per_core, .. } => {
                let resolution = GridResolution::new(
                    scenario.grid.0 * cells_per_core,
                    scenario.grid.1 * cells_per_core,
                )?;
                Ok(Arc::new(GridThermalSimulator::with_config(
                    scenario.sut.floorplan(),
                    &PackageConfig::default(),
                    resolution,
                    self.transient_config(),
                )?))
            }
        }
    }

    /// Whether this kind's backend batches same-duration sessions through
    /// the multi-RHS banded fast path — the gate for the runner's
    /// same-shape prewarmer. Kinds whose batched path would just be a
    /// sequential loop (rc-compact's precomputed operator, ADI's tracked
    /// stepping) opt out: prewarming them would serialise work the worker
    /// pool otherwise spreads.
    fn batches_sessions(self) -> bool {
        matches!(self, BackendKind::GridTransient { .. })
    }
}

/// Which shared [`thermsched::SessionStore`] backs each scenario's session
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// One `Mutex` around one map — the pre-service store, kept as the
    /// baseline the throughput benchmarks compare against.
    Mutex,
    /// An N-way sharded store ([`thermsched::ShardedSessionCache`]); wide
    /// worker pools stop serialising on a single lock.
    Sharded {
        /// Number of independently-locked shards.
        shards: usize,
    },
}

impl StoreKind {
    pub(crate) fn handle(self) -> SessionCacheHandle {
        match self {
            StoreKind::Mutex => SessionCacheHandle::new(),
            StoreKind::Sharded { shards } => SessionCacheHandle::sharded(shards),
        }
    }

    /// Short name matching `SessionStore::name` of the store [`Self::handle`]
    /// builds (`"mutex"`, `"sharded(8)"`).
    pub fn name(self) -> String {
        match self {
            StoreKind::Mutex => "mutex".to_owned(),
            StoreKind::Sharded { shards } => format!("sharded({})", shards.max(1)),
        }
    }

    /// Shards of the store [`Self::handle`] builds.
    pub fn shard_count(self) -> usize {
        match self {
            StoreKind::Mutex => 1,
            StoreKind::Sharded { shards } => shards.max(1),
        }
    }
}

/// Configuration of a [`ServiceRunner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Shared session store every scenario's jobs publish to and read from.
    pub store: StoreKind,
    /// Thermal backend validating every job.
    pub backend: BackendKind,
    /// Whether scenarios sharing a grid shape share one backend instance
    /// (and therefore its factorisations) through the run's
    /// [`OperatorCacheHandle`]. Exact — same-shape scenarios have identical
    /// floorplans, so the shared operator is bit-for-bit the one a private
    /// build would produce — and on by default; the benchmarks record the
    /// off configuration for comparison.
    pub operator_cache: bool,
    /// Whether the runner prewarms the session stores by batching same-shape
    /// phase-1 work: queued jobs are grouped by [`BackendKind::key`], their
    /// single-core characterisation sessions collected into one column-blocked
    /// right-hand-side matrix per (key, duration) group, and advanced through
    /// the backend's multi-RHS solve in one matrix-matrix pass. Exact — the
    /// multi-RHS kernels are bit-identical per lane to the single solves, so
    /// per-job results do not change — and on by default. Only engaged for
    /// backends that actually batch ([`BackendKind::GridTransient`]).
    pub batch_same_shape: bool,
    /// Deterministic fault-injection plan (inert by default): seeded per
    /// (job, attempt) panics, retryable errors, delays and store poisoning.
    pub faults: FaultPlan,
    /// Retry policy for retryable outcomes (disabled by default): seeded
    /// exponential backoff, attempt accounting in
    /// [`crate::JobMetrics::attempts`].
    pub retry: RetryPolicy,
    /// Clock injected delays, backoffs and latency run against. The default
    /// [`ClockKind::Wall`] sleeps and measures real time;
    /// [`ClockKind::Virtual`] accrues deterministic virtual seconds instead,
    /// which is what fault-injection tests run under.
    pub clock: ClockKind,
    /// Default per-job effort budget in *simulated* seconds, enforced at
    /// the scheduler's cooperative checkpoints: a job whose spent thermal
    /// effort exceeds the budget ends as [`JobOutcome::DeadlineExceeded`].
    /// Effort is a pure function of the corpus, so deadline outcomes are as
    /// deterministic as completed ones. `None` (the default) disables
    /// deadlines; [`crate::Submission::deadline_effort`] overrides per job.
    pub deadline_effort: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            store: StoreKind::Sharded { shards: 8 },
            backend: BackendKind::default(),
            operator_cache: true,
            batch_same_shape: true,
            faults: FaultPlan::none(),
            retry: RetryPolicy::disabled(),
            clock: ClockKind::Wall,
            deadline_effort: None,
        }
    }
}

impl ServiceConfig {
    /// Validates every field; shared by [`ServiceRunner::new`] and the
    /// streaming [`crate::Frontend`].
    pub(crate) fn validate(&self) -> Result<()> {
        if let StoreKind::Sharded { shards: 0 } = self.store {
            return Err(ServiceError::InvalidSpec {
                field: "shards",
                problem: "must be at least 1",
            });
        }
        match self.backend {
            BackendKind::GridTransient { cells_per_core: 0 }
            | BackendKind::GridAdi {
                cells_per_core: 0, ..
            } => {
                return Err(ServiceError::InvalidSpec {
                    field: "cells_per_core",
                    problem: "must be at least 1",
                });
            }
            BackendKind::GridAdi { time_step, .. }
                if !(time_step > 0.0 && time_step.is_finite()) =>
            {
                return Err(ServiceError::InvalidSpec {
                    field: "time_step",
                    problem: "must be positive and finite",
                });
            }
            _ => {}
        }
        self.faults.validate()?;
        self.retry.validate()?;
        if let Some(budget) = self.deadline_effort {
            if !(budget > 0.0 && budget.is_finite()) {
                return Err(ServiceError::InvalidSpec {
                    field: "deadline_effort",
                    problem: "must be positive and finite",
                });
            }
        }
        Ok(())
    }
}

/// Drives a [`Corpus`] through a pool of worker threads.
///
/// Execution model:
///
/// * Jobs are drained from one atomic queue head, so workers stay busy
///   regardless of how job costs vary across scenarios.
/// * Each worker reuses one [`Engine`] per scenario it touches (the engine
///   prebuilds the guidance model; rebuilding it per job would dominate
///   small runs), and every engine of a scenario shares that scenario's
///   session store — cross-job cache hits on identical core-set keys are
///   the service's main leverage.
/// * A job that returns an error or panics is isolated: the outcome is
///   recorded as [`JobOutcome::Failed`] / [`JobOutcome::Panicked`] and the
///   batch continues (the shared stores recover from lock poisoning).
/// * Results are reported in corpus job order whatever the interleaving,
///   and every per-job metric is a pure function of the corpus — see
///   [`crate::report`] for the determinism boundary.
///
/// # Example
///
/// ```
/// use thermsched_service::{ScenarioSpec, ServiceConfig, ServiceRunner, StoreKind};
///
/// # fn main() -> Result<(), thermsched_service::ServiceError> {
/// let corpus = ScenarioSpec {
///     scenarios: 2,
///     ..ScenarioSpec::default()
/// }
/// .build()?;
/// let runner = ServiceRunner::new(ServiceConfig {
///     workers: 2,
///     store: StoreKind::Sharded { shards: 4 },
///     ..ServiceConfig::default()
/// })?;
/// let report = runner.run(&corpus)?;
/// assert_eq!(report.jobs().len(), corpus.jobs().len());
/// assert_eq!(report.stats().completed, corpus.jobs().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ServiceRunner {
    config: ServiceConfig,
}

impl ServiceRunner {
    /// Creates a runner.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] for zero workers or zero shards, and
    /// for out-of-range fault, retry or deadline parameters.
    pub fn new(config: ServiceConfig) -> Result<Self> {
        if config.workers == 0 {
            return Err(ServiceError::InvalidSpec {
                field: "workers",
                problem: "must be at least 1",
            });
        }
        config.validate()?;
        Ok(ServiceRunner { config })
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Runs every job of the corpus and aggregates the report.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Schedule`] if a scenario's thermal backend cannot be
    /// constructed (per-job scheduling failures are *not* errors here; they
    /// are isolated into the job's [`JobOutcome`]).
    pub fn run(&self, corpus: &Corpus) -> Result<ServiceReport> {
        self.run_traced(corpus, &Tracer::disabled(), &MetricsRegistry::new())
    }

    /// [`Self::run`] with observability attached: every job records a span
    /// tree into `tracer` (root `"job"`, one `"attempt"` per try, with the
    /// engine and scheduler phases nested below), backend construction and
    /// prewarming record run-level spans, and the final [`ServiceStats`]
    /// are absorbed into `registry` alongside the per-job latency
    /// histogram. With a disabled tracer this is exactly [`Self::run`] —
    /// span creation is a branch on a `None` sink, no allocation, no lock.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_traced(
        &self,
        corpus: &Corpus,
        tracer: &Tracer,
        registry: &MetricsRegistry,
    ) -> Result<ServiceReport> {
        // Backends are built up front, once per scenario: every worker
        // borrows them, and construction cost (a factorisation each) is not
        // worth paying per worker. With the operator cache on, same-shape
        // scenarios additionally collapse onto one shared instance — the
        // build loop is sequential, so the hit/miss counters are a
        // deterministic function of the corpus.
        let operator_cache = OperatorCacheHandle::new();
        let backends = {
            let mut span = tracer.span("backend.build");
            span.attr("scenarios", corpus.scenarios().len());
            span.attr("backend", self.config.backend.label());
            build_backends(&self.config, corpus, &operator_cache)?
        };
        let caches: Vec<SessionCacheHandle> = corpus
            .scenarios()
            .iter()
            .map(|_| self.config.store.handle())
            .collect();

        // Same-shape batching: advance all queued phase-1 characterisation
        // sessions of one operator key as a single multi-RHS pass and
        // publish them to the scenarios' stores before the workers start.
        // Bit-identical to the per-job path, so only throughput changes.
        let prewarmed_sessions = if self.config.batch_same_shape {
            let mut span = tracer.span("prewarm");
            let prewarmed = prewarm_same_shape(&self.config, corpus, &backends, &caches);
            span.attr("sessions", prewarmed);
            prewarmed
        } else {
            0
        };

        let jobs = corpus.jobs();
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; jobs.len()]);
        let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(jobs.len()));
        let warm_cache_hits = AtomicUsize::new(0);
        let cached_validations = AtomicUsize::new(0);
        let injected_faults = AtomicUsize::new(0);
        let retried_attempts = AtomicUsize::new(0);
        let latency_histogram = registry.histogram("job.latency_seconds", LATENCY_BUCKETS);

        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.min(jobs.len()).max(1) {
                scope.spawn(|| {
                    // Inner phase-1 fan-outs run sequentially on this thread:
                    // the pool is the parallelism, W workers × P phase-1
                    // threads would oversubscribe the machine.
                    let _guard = NestedParallelismGuard::enter();
                    let mut engines: HashMap<usize, Engine<'_>> = HashMap::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        let scenario = &corpus.scenarios()[job.scenario];
                        let job_started = Instant::now();
                        // Queue wait of a batch job: time from run start to
                        // dequeue (interleaving-dependent, so it only ever
                        // enters observed span attributes).
                        let queue_seconds = match self.config.clock {
                            ClockKind::Wall => started.elapsed().as_secs_f64(),
                            ClockKind::Virtual => 0.0,
                        };
                        let execution = execute_job(
                            &JobContext {
                                job,
                                job_index: index as u64,
                                scenario,
                                backend: backends[job.scenario].as_ref(),
                                cache: &caches[job.scenario],
                                faults: self.config.faults,
                                retry: self.config.retry,
                                clock: self.config.clock,
                                deadline_effort: self.config.deadline_effort,
                                cancel: None,
                                tracer: tracer.clone(),
                                queue_seconds,
                            },
                            &mut engines,
                        );
                        // Order-dependent cache accounting goes to the stats
                        // side of the report, never into per-job results.
                        warm_cache_hits
                            .fetch_add(execution.accounting.warm_cache_hits, Ordering::Relaxed);
                        cached_validations
                            .fetch_add(execution.accounting.cached_validations, Ordering::Relaxed);
                        injected_faults.fetch_add(execution.injected_faults, Ordering::Relaxed);
                        retried_attempts.fetch_add(
                            execution.attempts.saturating_sub(1) as usize,
                            Ordering::Relaxed,
                        );
                        let latency = match self.config.clock {
                            ClockKind::Wall => job_started.elapsed().as_secs_f64(),
                            ClockKind::Virtual => execution.virtual_seconds,
                        };
                        latency_histogram.observe(latency);
                        latencies
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(latency);
                        let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
                        slots[index] = Some(JobResult::new(
                            index,
                            job,
                            &scenario.name,
                            execution.outcome,
                        ));
                    }
                });
            }
        });
        let wall_seconds = started.elapsed().as_secs_f64();

        let jobs_done: Vec<JobResult> = results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("every job index is claimed exactly once"))
            .collect();
        let latency = LatencyStats::from_samples(
            &latencies
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner),
        );

        let mut store = StoreStats::default();
        for cache in &caches {
            let s = cache.stats();
            store.lookups += s.lookups;
            store.hits += s.hits;
            store.insertions += s.insertions;
            store.contended_locks += s.contended_locks;
        }
        let completed = jobs_done
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Completed(_)))
            .count();
        let failed = jobs_done
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Failed { .. }))
            .count();
        let deadline_exceeded = jobs_done
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::DeadlineExceeded { .. }))
            .count();
        let panicked = jobs_done
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Panicked { .. }))
            .count();
        let stats = ServiceStats {
            workers: self.config.workers,
            store_name: self.config.store.name(),
            shard_count: self.config.store.shard_count(),
            backend_name: self.config.backend.label(),
            operator_cache_enabled: self.config.operator_cache,
            operator_cache: operator_cache.stats(),
            scenario_count: corpus.scenarios().len(),
            job_count: jobs_done.len(),
            completed,
            failed,
            panicked,
            deadline_exceeded,
            shed: 0,
            rejected: 0,
            retried_attempts: retried_attempts.load(Ordering::Relaxed),
            injected_faults: injected_faults.load(Ordering::Relaxed),
            worker_crashes: 0,
            latency,
            wall_seconds,
            jobs_per_second: jobs_done.len() as f64 / wall_seconds.max(1e-9),
            cached_validations: cached_validations.load(Ordering::Relaxed),
            warm_cache_hits: warm_cache_hits.load(Ordering::Relaxed),
            prewarmed_sessions,
            store,
        };
        registry.absorb(&stats.metrics());
        Ok(ServiceReport::new(jobs_done, stats))
    }
}

/// Latency histogram bucket bounds (seconds) shared by the batch runner and
/// the streaming frontend — fixed so snapshots from different workers and
/// processes always merge bucket-for-bucket.
pub(crate) const LATENCY_BUCKETS: &[f64] = &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Builds one thermal backend per scenario, sequentially (so the operator
/// cache's hit/miss counters stay a deterministic function of the corpus),
/// collapsing same-key scenarios onto shared instances when the cache is
/// enabled. Shared by [`ServiceRunner::run`] and the streaming
/// [`crate::Frontend`].
pub(crate) fn build_backends(
    config: &ServiceConfig,
    corpus: &Corpus,
    operator_cache: &OperatorCacheHandle,
) -> Result<Vec<Arc<dyn ThermalBackend>>> {
    corpus
        .scenarios()
        .iter()
        .map(|scenario| {
            if config.operator_cache {
                operator_cache.get_or_try_build(config.backend.key(scenario), || {
                    config.backend.build(scenario)
                })
            } else {
                config.backend.build(scenario)
            }
        })
        .collect()
}

/// Groups the corpus's phase-1 characterisation lanes — one (scenario,
/// core) single-core session each — by operator key and session
/// duration, advances each group through the shared backend's multi-RHS
/// batch, and publishes the results to the scenarios' session stores.
/// Returns the number of prewarmed lanes. Shared by [`ServiceRunner::run`]
/// and the streaming [`crate::Frontend`].
///
/// The grouping and iteration order are deterministic (sorted by key,
/// then corpus order within a group), the per-lane results are
/// bit-identical to what the scheduler's own phase 1 would compute, and
/// a group that fails to simulate is simply skipped — its jobs compute
/// phase 1 themselves and surface the error through the normal per-job
/// path.
///
/// Prewarmed lanes are constant-power, from-ambient characterisations
/// published under the plain cache keys. Online jobs (traces / warm
/// starts) look up sentinel keys ([`thermsched::SessionCache::online_key`])
/// instead, so they recompute their own phase 1 and never alias these
/// entries.
pub(crate) fn prewarm_same_shape(
    config: &ServiceConfig,
    corpus: &Corpus,
    backends: &[Arc<dyn ThermalBackend>],
    caches: &[SessionCacheHandle],
) -> usize {
    if !config.backend.batches_sessions() {
        return 0;
    }
    // Lanes grouped by (operator key, duration bits): scenarios sharing
    // a key share one bit-identical backend, and only equal-duration
    // sessions can share a multi-RHS advance (the step count is a
    // function of the duration).
    type PrewarmGroups = std::collections::BTreeMap<(String, u64), Vec<(usize, usize, f64)>>;
    let mut groups = PrewarmGroups::new();
    for (index, scenario) in corpus.scenarios().iter().enumerate() {
        let key = config.backend.key(scenario).to_string();
        for core in 0..scenario.sut.core_count() {
            let session = TestSession::new([core], &scenario.sut);
            let duration = session.duration();
            groups
                .entry((key.clone(), duration.to_bits()))
                .or_default()
                .push((index, core, duration));
        }
    }
    let mut prewarmed = 0;
    for ((_, _), lanes) in groups {
        let duration = lanes[0].2;
        let powers: std::result::Result<Vec<PowerMap>, _> = lanes
            .iter()
            .map(|&(scenario, core, _)| {
                TestSession::new([core], &corpus.scenarios()[scenario].sut)
                    .power_map(&corpus.scenarios()[scenario].sut)
            })
            .collect();
        let Ok(powers) = powers else { continue };
        // All scenarios of a key group share one bit-identical backend
        // (the operator cache collapses them when enabled; private
        // builds are deterministic replicas when not), so the group's
        // first backend serves every lane.
        let backend = backends[lanes[0].0].as_ref();
        let Ok(results) = backend.simulate_sessions(&powers, duration) else {
            continue;
        };
        let mut per_scenario: HashMap<usize, Vec<(Vec<usize>, SessionThermalResult)>> =
            HashMap::new();
        for (&(scenario, core, _), result) in lanes.iter().zip(results) {
            per_scenario
                .entry(scenario)
                .or_default()
                .push((vec![core], result));
        }
        prewarmed += lanes.len();
        let mut scenarios: Vec<usize> = per_scenario.keys().copied().collect();
        scenarios.sort_unstable();
        for scenario in scenarios {
            let batch = per_scenario.remove(&scenario).expect("key just listed");
            caches[scenario].store_batch(batch);
        }
    }
    prewarmed
}

/// Order-dependent cache accounting of one job: a job served from a store
/// warmed by whichever job happened to run first reports hits the first
/// runner does not, so these never enter the deterministic per-job results.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CacheAccounting {
    pub(crate) warm_cache_hits: usize,
    pub(crate) cached_validations: usize,
}

/// Everything one job execution needs, shared by the batch runner's worker
/// loop and the streaming [`crate::Frontend`]'s workers.
///
/// Two lifetimes on purpose: `'a` is what the worker's cached engines
/// borrow (scenario, backend, cache — these outlive the whole worker
/// loop), `'j` the per-job data that only lives for one dispatch (the
/// frontend owns its `JobSpec` per submission).
pub(crate) struct JobContext<'a, 'j> {
    pub(crate) job: &'j JobSpec,
    /// Index of the job in the fault plan's hash space (corpus order for
    /// batches, submission order for the frontend).
    pub(crate) job_index: u64,
    pub(crate) scenario: &'a Scenario,
    pub(crate) backend: &'a dyn ThermalBackend,
    pub(crate) cache: &'a SessionCacheHandle,
    pub(crate) faults: FaultPlan,
    pub(crate) retry: RetryPolicy,
    pub(crate) clock: ClockKind,
    /// Effective effort budget of this job (per-submission override already
    /// applied by the caller).
    pub(crate) deadline_effort: Option<f64>,
    /// Drain cancellation flag: when set, the next scheduling checkpoint
    /// interrupts the run ([`InterruptReason::Cancelled`]).
    pub(crate) cancel: Option<&'j AtomicBool>,
    /// Run-level tracer ([`Tracer::disabled`] when the caller is not
    /// tracing); [`execute_job`] derives the job-scoped handle from it.
    pub(crate) tracer: Tracer,
    /// Seconds the job waited before dispatch — interleaving-dependent, so
    /// it is recorded as an *observed* span attribute only.
    pub(crate) queue_seconds: f64,
}

/// How one job execution ended, with its side accounting.
pub(crate) struct JobExecution {
    pub(crate) outcome: JobOutcome,
    pub(crate) accounting: CacheAccounting,
    pub(crate) attempts: u32,
    pub(crate) injected_faults: usize,
    /// Seconds accrued by injected delays and retry backoffs under
    /// [`ClockKind::Virtual`] (0.0 under the wall clock, which sleeps
    /// instead).
    pub(crate) virtual_seconds: f64,
}

/// Checkpoint installed into the scheduler for jobs with a deadline or a
/// drain-cancellation flag. The budget is compared against *simulated*
/// effort, so deadline interrupts are deterministic; cancellation is the one
/// deliberately non-deterministic interrupt (it answers to a drain deadline,
/// and is reported as such).
struct JobCheckpoint<'c> {
    budget: Option<f64>,
    cancel: Option<&'c AtomicBool>,
}

impl ScheduleCheckpoint for JobCheckpoint<'_> {
    fn check(&self, progress: &ScheduleProgress) -> ControlFlow<InterruptReason> {
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return ControlFlow::Break(InterruptReason::Cancelled);
            }
        }
        if let Some(budget) = self.budget {
            if progress.spent_effort() > budget {
                return ControlFlow::Break(InterruptReason::DeadlineExceeded { budget });
            }
        }
        ControlFlow::Continue(())
    }
}

/// Executes one job with fault injection, deadline checkpoints and retries:
/// the shared attempt loop behind both [`ServiceRunner::run`] and the
/// streaming [`crate::Frontend`].
///
/// Per attempt, the fault plan is consulted first: an injected panic goes
/// through the worker's real `catch_unwind` path, an injected error becomes
/// a retryable [`JobOutcome::Failed`], and an injected delay advances the
/// clock before the attempt runs. Store poisoning happens once, before the
/// first attempt. Retries are granted only to outcomes that are retryable
/// under [`ServiceError::is_retryable`] — injected faults — because real
/// scheduler errors, panics and deadline interrupts are deterministic
/// functions of the corpus and would only reproduce. The attempt count is
/// stamped into the final outcome.
pub(crate) fn execute_job<'a>(
    ctx: &JobContext<'a, '_>,
    engines: &mut HashMap<usize, Engine<'a>>,
) -> JobExecution {
    // Every per-job span lives under this job-scoped handle, created here
    // and nowhere above: the batch runner, the streaming frontend and the
    // multi-process workers all funnel through execute_job, which is what
    // makes the structural span slice identical across all three.
    let tracer = ctx.tracer.for_job(ctx.job_index);
    let mut job_span = tracer.span("job");
    job_span.attr("index", ctx.job_index);
    job_span.attr("scenario", ctx.scenario.name.as_str());
    job_span.attr("label", ctx.job.label.as_str());
    job_span.attr_observed("queue_seconds", ctx.queue_seconds);
    let mut injected_faults = 0;
    let mut virtual_seconds = 0.0;
    if let Some(shard) = ctx.faults.poison_target(ctx.job_index) {
        injected_faults += 1;
        ctx.cache.poison_shard(shard);
    }
    let mut attempt = 0u32;
    let (outcome, accounting) = loop {
        attempt += 1;
        let fault = ctx.faults.fault_for(ctx.job_index, attempt);
        let mut attempt_span = tracer.span("attempt");
        attempt_span.attr("number", attempt);
        if let Some(kind) = fault {
            // Faults are seeded by (plan seed, job, attempt), so which
            // fault fires on which attempt is structural.
            attempt_span.attr("fault", kind.to_string());
        }
        let (outcome, accounting) = match fault {
            Some(FaultKind::Panic) => {
                injected_faults += 1;
                let message = ServiceError::Injected {
                    kind: FaultKind::Panic,
                    job: ctx.job_index,
                    attempt,
                }
                .to_string();
                isolate(move || -> thermsched::Result<ScheduleOutcome> { panic!("{message}") })
            }
            Some(FaultKind::Error) => {
                injected_faults += 1;
                let error = ServiceError::Injected {
                    kind: FaultKind::Error,
                    job: ctx.job_index,
                    attempt,
                };
                (
                    JobOutcome::Failed {
                        error: error.to_string(),
                        retryable: error.is_retryable(),
                        attempts: attempt,
                    },
                    CacheAccounting::default(),
                )
            }
            Some(FaultKind::Delay) => {
                injected_faults += 1;
                advance_clock(ctx.clock, ctx.faults.delay_seconds, &mut virtual_seconds);
                run_attempt(ctx, engines, &tracer)
            }
            Some(FaultKind::PoisonStore) | None => run_attempt(ctx, engines, &tracer),
        };
        // Injected panics are the one retryable panic shape: we know this
        // attempt's panic was ours. Real panics stay terminal.
        let retryable = match &outcome {
            JobOutcome::Failed { retryable, .. } => *retryable,
            JobOutcome::Panicked { .. } => matches!(fault, Some(FaultKind::Panic)),
            _ => false,
        };
        drop(attempt_span);
        if retryable && attempt < ctx.retry.max_attempts {
            advance_clock(
                ctx.clock,
                ctx.retry.backoff_seconds(ctx.job_index, attempt + 1),
                &mut virtual_seconds,
            );
            continue;
        }
        break (outcome, accounting);
    };
    job_span.attr("attempts", attempt);
    job_span.attr("outcome", outcome_kind(&outcome));
    JobExecution {
        outcome: stamp_attempts(outcome, attempt),
        accounting,
        attempts: attempt,
        injected_faults,
        virtual_seconds,
    }
}

/// Stable label of an outcome variant for span attributes and per-outcome
/// metric names (shed/rejected outcomes never reach [`execute_job`] — they
/// never ran).
pub(crate) fn outcome_kind(outcome: &JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Completed(_) => "completed",
        JobOutcome::Failed { .. } => "failed",
        JobOutcome::Panicked { .. } => "panicked",
        JobOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
        JobOutcome::Shed(_) => "shed",
        JobOutcome::Rejected(_) => "rejected",
    }
}

/// Runs one attempt: reuses (or builds) the worker's engine for the job's
/// scenario and schedules under panic isolation, with a checkpoint installed
/// when the job has a deadline or a cancellation flag.
fn run_attempt<'a>(
    ctx: &JobContext<'a, '_>,
    engines: &mut HashMap<usize, Engine<'a>>,
    tracer: &Tracer,
) -> (JobOutcome, CacheAccounting) {
    let engine = match engines.entry(ctx.job.scenario) {
        Entry::Occupied(entry) => entry.into_mut(),
        Entry::Vacant(entry) => {
            let built = Engine::builder()
                .sut(&ctx.scenario.sut)
                .dyn_backend(ctx.backend)
                .cache(ctx.cache.clone())
                .build();
            match built {
                Ok(engine) => entry.insert(engine),
                Err(error) => {
                    return (
                        JobOutcome::Failed {
                            error: error.to_string(),
                            retryable: false,
                            attempts: 1,
                        },
                        CacheAccounting::default(),
                    )
                }
            }
        }
    };
    // Engines are reused across jobs; point this one at the current job's
    // scope so its schedule/phase spans land under the open attempt span.
    engine.set_tracer(tracer.clone());
    // Online state (trace / warm start) is part of the job's identity, so a
    // malformed context is a deterministic, non-retryable failure.
    let online = match ctx.job.online_context() {
        Ok(online) => online,
        Err(error) => {
            return (
                JobOutcome::Failed {
                    error: error.to_string(),
                    retryable: false,
                    attempts: 1,
                },
                CacheAccounting::default(),
            )
        }
    };
    if ctx.deadline_effort.is_some() || ctx.cancel.is_some() {
        let checkpoint = JobCheckpoint {
            budget: ctx.deadline_effort,
            cancel: ctx.cancel,
        };
        match &online {
            Some(online) => isolate(|| {
                engine.schedule_online_with_checkpoint(ctx.job.config, online, &checkpoint)
            }),
            None => isolate(|| engine.schedule_with_checkpoint(ctx.job.config, &checkpoint)),
        }
    } else {
        match &online {
            Some(online) => isolate(|| engine.schedule_online_with(ctx.job.config, online)),
            None => isolate(|| engine.schedule_with(ctx.job.config)),
        }
    }
}

/// Advances the configured clock by `seconds`: sleeps under the wall clock,
/// accrues deterministic virtual time otherwise.
fn advance_clock(clock: ClockKind, seconds: f64, virtual_seconds: &mut f64) {
    match clock {
        ClockKind::Wall => {
            if seconds > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
            }
        }
        ClockKind::Virtual => *virtual_seconds += seconds,
    }
}

/// Stamps the attempt count into a final outcome (shed/rejected outcomes
/// never pass through here — they never ran).
fn stamp_attempts(outcome: JobOutcome, attempts: u32) -> JobOutcome {
    match outcome {
        JobOutcome::Completed(mut metrics) => {
            metrics.attempts = attempts;
            JobOutcome::Completed(metrics)
        }
        JobOutcome::Failed {
            error, retryable, ..
        } => JobOutcome::Failed {
            error,
            retryable,
            attempts,
        },
        JobOutcome::Panicked { message, .. } => JobOutcome::Panicked { message, attempts },
        JobOutcome::DeadlineExceeded {
            spent_effort,
            budget,
            ..
        } => JobOutcome::DeadlineExceeded {
            spent_effort,
            budget,
            attempts,
        },
        other => other,
    }
}

/// Runs a scheduling closure with panic isolation, mapping the ways it can
/// end onto [`JobOutcome`] and splitting off the order-dependent cache
/// accounting. Checkpoint interrupts become
/// [`JobOutcome::DeadlineExceeded`]; a drain cancellation is reported as a
/// zero budget.
fn isolate(
    run: impl FnOnce() -> thermsched::Result<ScheduleOutcome>,
) -> (JobOutcome, CacheAccounting) {
    match std::panic::catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(outcome)) => (
            JobOutcome::Completed((&outcome).into()),
            CacheAccounting {
                warm_cache_hits: outcome.warm_cache_hits,
                cached_validations: outcome.cached_validations,
            },
        ),
        Ok(Err(ScheduleError::Interrupted {
            reason,
            spent_effort,
        })) => {
            let budget = match reason {
                InterruptReason::DeadlineExceeded { budget } => budget,
                InterruptReason::Cancelled => 0.0,
            };
            (
                JobOutcome::DeadlineExceeded {
                    spent_effort,
                    budget,
                    attempts: 1,
                },
                CacheAccounting::default(),
            )
        }
        Ok(Err(error)) => (
            JobOutcome::Failed {
                error: error.to_string(),
                retryable: false,
                attempts: 1,
            },
            CacheAccounting::default(),
        ),
        Err(payload) => (
            JobOutcome::Panicked {
                message: panic_message(payload.as_ref()),
                attempts: 1,
            },
            CacheAccounting::default(),
        ),
    }
}

/// Renders a caught panic payload.
///
/// `panic!("...")` payloads carry `&str` or `String` and are rendered
/// verbatim. `std::panic::panic_any` payloads are probed further: boxed
/// error objects (`Box<dyn Error + Send (+ Sync)>`) render through their
/// `Display`, and a table of well-known primitive payload types renders the
/// value with its type name. Anything else keeps the historical
/// `"non-string panic payload"` text, now with the payload's `TypeId`
/// appended so distinct opaque payloads stay distinguishable in reports.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(e) = payload.downcast_ref::<Box<dyn std::error::Error + Send + Sync>>() {
        return format!("error payload: {e}");
    }
    if let Some(e) = payload.downcast_ref::<Box<dyn std::error::Error + Send>>() {
        return format!("error payload: {e}");
    }
    macro_rules! probe {
        ($($ty:ty),* $(,)?) => {
            $(
                if let Some(value) = payload.downcast_ref::<$ty>() {
                    return format!(
                        "non-string panic payload: {} = {value:?}",
                        stringify!($ty)
                    );
                }
            )*
        };
    }
    probe!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char);
    format!("non-string panic payload (type id {:?})", payload.type_id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            scenarios: 3,
            seed: 11,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn worker_count_and_store_do_not_change_job_results() {
        let corpus = small_spec().build().unwrap();
        let reference = ServiceRunner::new(ServiceConfig {
            workers: 1,
            store: StoreKind::Mutex,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(reference.stats().completed, corpus.jobs().len());
        for (workers, store) in [
            (3, StoreKind::Mutex),
            (1, StoreKind::Sharded { shards: 4 }),
            (3, StoreKind::Sharded { shards: 4 }),
        ] {
            let report = ServiceRunner::new(ServiceConfig {
                workers,
                store,
                ..ServiceConfig::default()
            })
            .unwrap()
            .run(&corpus)
            .unwrap();
            assert_eq!(
                report.jobs(),
                reference.jobs(),
                "{workers} workers, {store:?}"
            );
            assert_eq!(report.render_jobs(), reference.render_jobs());
        }
    }

    #[test]
    fn online_jobs_complete_and_are_worker_count_invariant() {
        use crate::TraceFamily;
        let corpus = ScenarioSpec {
            trace_families: vec![
                TraceFamily::Ramp,
                TraceFamily::Periodic,
                TraceFamily::IdleGap,
            ],
            warm_start_range: Some((46.0, 60.0)),
            ..small_spec()
        }
        .build()
        .unwrap();
        assert!(corpus.jobs().iter().all(JobSpec::is_online));
        let reference = ServiceRunner::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(reference.stats().completed, corpus.jobs().len());
        let parallel = ServiceRunner::new(ServiceConfig {
            workers: 3,
            store: StoreKind::Sharded { shards: 4 },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(parallel.jobs(), reference.jobs());
        assert_eq!(parallel.render_jobs(), reference.render_jobs());

        // Online jobs must not be served the constant-power results: the
        // same spec without online state schedules at least one job
        // differently (the traced peak shifts the feasible sessions).
        let offline = small_spec().build().unwrap();
        let offline_report = ServiceRunner::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&offline)
        .unwrap();
        let differs = offline_report
            .jobs()
            .iter()
            .zip(reference.jobs())
            .any(|(a, b)| match (a.outcome.metrics(), b.outcome.metrics()) {
                (Some(x), Some(y)) => {
                    x.schedule_length != y.schedule_length || x.max_temperature != y.max_temperature
                }
                _ => true,
            });
        assert!(differs, "online state must influence scheduling");
    }

    #[test]
    fn jobs_of_one_scenario_share_the_scenario_store() {
        // Two STCL points per scenario: the second job of each scenario
        // reuses at least the phase-1 characterisations of the first.
        let corpus = small_spec().build().unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 1,
            store: StoreKind::Sharded { shards: 8 },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert!(
            report.stats().warm_cache_hits >= corpus.total_cores(),
            "every scenario's second job must at least reuse phase 1: {} < {}",
            report.stats().warm_cache_hits,
            corpus.total_cores()
        );
        assert!(report.stats().store.hits >= report.stats().warm_cache_hits as u64);
        assert_eq!(report.stats().shard_count, 8);
        assert_eq!(report.stats().store_name, "sharded(8)");
        assert!(report.stats().jobs_per_second > 0.0);
    }

    #[test]
    fn core_level_violations_are_isolated_per_job() {
        // TL = 60 C with ambient 45 C: every generated core violates alone,
        // and the failing policy turns each job into a Failed outcome
        // without aborting the batch.
        let corpus = ScenarioSpec {
            temperature_limits: vec![60.0],
            raise_limit_margin: None,
            ..small_spec()
        }
        .build()
        .unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 2,
            store: StoreKind::Sharded { shards: 2 },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(report.stats().failed, corpus.jobs().len());
        assert_eq!(report.stats().completed, 0);
        for job in report.jobs() {
            match &job.outcome {
                JobOutcome::Failed { error, .. } => assert!(
                    error.contains("tested alone"),
                    "unexpected failure: {error}"
                ),
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn isolate_catches_panics_and_maps_errors() {
        let (outcome, accounting) = isolate(|| panic!("boom"));
        assert_eq!(
            outcome,
            JobOutcome::Panicked {
                message: "boom".to_owned(),
                attempts: 1,
            }
        );
        assert_eq!(accounting.warm_cache_hits, 0);

        let label = "label".to_owned();
        let (outcome, _) = isolate(move || panic!("formatted {label}"));
        assert_eq!(
            outcome,
            JobOutcome::Panicked {
                message: "formatted label".to_owned(),
                attempts: 1,
            }
        );

        let (outcome, _) = isolate(|| {
            Err(thermsched::ScheduleError::MissingComponent {
                component: "backend",
            })
        });
        assert!(matches!(
            outcome,
            JobOutcome::Failed {
                retryable: false,
                ..
            }
        ));

        // A checkpoint interrupt maps onto the deadline outcome, with a
        // cancellation reported as a zero budget.
        let (outcome, _) = isolate(|| {
            Err(thermsched::ScheduleError::Interrupted {
                reason: InterruptReason::DeadlineExceeded { budget: 4.0 },
                spent_effort: 5.5,
            })
        });
        assert_eq!(
            outcome,
            JobOutcome::DeadlineExceeded {
                spent_effort: 5.5,
                budget: 4.0,
                attempts: 1,
            }
        );
        let (outcome, _) = isolate(|| {
            Err(thermsched::ScheduleError::Interrupted {
                reason: InterruptReason::Cancelled,
                spent_effort: 2.0,
            })
        });
        assert!(matches!(
            outcome,
            JobOutcome::DeadlineExceeded { budget, .. } if budget == 0.0
        ));
    }

    #[test]
    fn panic_message_renders_error_and_typed_payloads() {
        // The two string shapes `panic!` produces.
        assert_eq!(panic_message(&"literal"), "literal");
        assert_eq!(panic_message(&"owned".to_owned()), "owned");

        // `panic_any` with boxed error objects renders their Display,
        // whether or not the box is Sync.
        let sync_err: Box<dyn std::error::Error + Send + Sync> = Box::new(ServiceError::Injected {
            kind: FaultKind::Panic,
            job: 3,
            attempt: 1,
        });
        assert_eq!(
            panic_message(&sync_err),
            "error payload: injected panic fault on job 3 attempt 1"
        );
        let send_err: Box<dyn std::error::Error + Send> =
            Box::new(thermsched::ScheduleError::MissingComponent {
                component: "backend",
            });
        assert!(panic_message(&send_err).starts_with("error payload:"));

        // Well-known primitive payloads are named and rendered; the old
        // code collapsed all of these to "non-string panic payload".
        assert_eq!(panic_message(&42i32), "non-string panic payload: i32 = 42");
        assert_eq!(
            panic_message(&7usize),
            "non-string panic payload: usize = 7"
        );
        assert_eq!(
            panic_message(&1.5f64),
            "non-string panic payload: f64 = 1.5"
        );
        assert_eq!(
            panic_message(&true),
            "non-string panic payload: bool = true"
        );

        // Opaque payloads keep the historical prefix but gain the TypeId.
        struct Opaque;
        let message = panic_message(&Opaque);
        assert!(message.starts_with("non-string panic payload (type id"));

        // End to end: a panic_any payload travels through isolate.
        let (outcome, _) = isolate(|| std::panic::panic_any(42i32));
        assert_eq!(
            outcome,
            JobOutcome::Panicked {
                message: "non-string panic payload: i32 = 42".to_owned(),
                attempts: 1,
            }
        );
    }

    #[test]
    fn operator_cache_collapses_same_shape_scenarios_without_changing_results() {
        // Every scenario shares one grid shape: maximal reuse — one build,
        // scenarios-1 hits, and the counters are deterministic because the
        // backend pass runs before the workers start.
        let spec = ScenarioSpec {
            scenarios: 4,
            grid_shapes: vec![(3, 3)],
            stc_limits: vec![40.0],
            ..small_spec()
        };
        let corpus = spec.build().unwrap();
        let cached = ServiceRunner::new(ServiceConfig {
            workers: 2,
            operator_cache: true,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert!(cached.stats().operator_cache_enabled);
        assert_eq!(cached.stats().operator_cache.misses, 1);
        assert_eq!(cached.stats().operator_cache.hits, 3);
        assert_eq!(cached.stats().backend_name, "rc-compact");

        // Shared operators are exact: switching the cache off changes
        // nothing about the per-job results.
        let private = ServiceRunner::new(ServiceConfig {
            workers: 2,
            operator_cache: false,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert!(!private.stats().operator_cache_enabled);
        assert_eq!(private.stats().operator_cache, Default::default());
        assert_eq!(cached.jobs(), private.jobs());
        assert_eq!(cached.render_jobs(), private.render_jobs());
        assert!(private.render_summary().contains("operator cache: off"));
    }

    #[test]
    fn mixed_shapes_build_one_backend_per_shape() {
        let corpus = ScenarioSpec {
            scenarios: 5,
            grid_shapes: vec![(3, 3), (4, 3)],
            stc_limits: vec![40.0],
            ..small_spec()
        }
        .build()
        .unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        // Shapes cycle (3,3), (4,3), (3,3), (4,3), (3,3): two builds.
        assert_eq!(report.stats().operator_cache.misses, 2);
        assert_eq!(report.stats().operator_cache.hits, 3);
    }

    #[test]
    fn grid_transient_backend_drives_a_batch_end_to_end() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            grid_shapes: vec![(3, 3)],
            stc_limits: vec![40.0],
            ..small_spec()
        }
        .build()
        .unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 2,
            backend: BackendKind::GridTransient { cells_per_core: 3 },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(report.stats().completed, corpus.jobs().len());
        assert_eq!(report.stats().backend_name, "grid-transient(3)");
        assert_eq!(report.stats().operator_cache.misses, 1);
        assert_eq!(report.stats().operator_cache.hits, 1);
        for job in report.jobs() {
            let metrics = job.outcome.metrics().expect("grid jobs complete");
            assert!(metrics.max_temperature > 45.0);
            assert!(metrics.max_temperature < metrics.effective_temperature_limit);
        }
    }

    #[test]
    fn grid_adi_backend_drives_a_batch_end_to_end() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            grid_shapes: vec![(3, 3)],
            stc_limits: vec![40.0],
            ..small_spec()
        }
        .build()
        .unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 2,
            backend: BackendKind::GridAdi {
                cells_per_core: 3,
                time_step: 1e-3,
            },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(report.stats().completed, corpus.jobs().len());
        assert_eq!(report.stats().backend_name, "grid-adi(3)");
        // ADI never batches (no multi-RHS banded path), so the prewarmer
        // must stay out of the way even with batching enabled.
        assert_eq!(report.stats().prewarmed_sessions, 0);
        for job in report.jobs() {
            let metrics = job.outcome.metrics().expect("adi jobs complete");
            assert!(metrics.max_temperature > 45.0);
            assert!(metrics.max_temperature < metrics.effective_temperature_limit);
        }
    }

    #[test]
    fn same_shape_batcher_prewarms_without_changing_results() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            grid_shapes: vec![(3, 3)],
            stc_limits: vec![40.0],
            ..small_spec()
        }
        .build()
        .unwrap();
        let batched = ServiceRunner::new(ServiceConfig {
            workers: 2,
            backend: BackendKind::GridTransient { cells_per_core: 3 },
            batch_same_shape: true,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        let sequential = ServiceRunner::new(ServiceConfig {
            workers: 2,
            backend: BackendKind::GridTransient { cells_per_core: 3 },
            batch_same_shape: false,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        // Multi-RHS prewarming is a throughput change only: the per-job
        // results are bit-identical to the unbatched run.
        assert_eq!(batched.jobs(), sequential.jobs());
        assert_eq!(batched.render_jobs(), sequential.render_jobs());
        assert_eq!(
            batched.stats().prewarmed_sessions,
            corpus.total_cores(),
            "every per-core characterisation session should be prewarmed"
        );
        assert_eq!(sequential.stats().prewarmed_sessions, 0);
        // Prewarmed singleton sessions turn every phase-1 probe into a
        // warm hit.
        assert!(batched.stats().warm_cache_hits >= sequential.stats().warm_cache_hits);
    }

    #[test]
    fn store_kind_names_match_their_handles() {
        for kind in [
            StoreKind::Mutex,
            StoreKind::Sharded { shards: 1 },
            StoreKind::Sharded { shards: 8 },
        ] {
            assert_eq!(kind.name(), kind.handle().store_name());
            assert_eq!(kind.shard_count(), kind.handle().shard_count());
        }
    }

    #[test]
    fn invalid_runner_configurations_are_rejected() {
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                workers: 0,
                store: StoreKind::Mutex,
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "workers",
                ..
            })
        ));
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                workers: 1,
                store: StoreKind::Sharded { shards: 0 },
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "shards",
                ..
            })
        ));
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                backend: BackendKind::GridTransient { cells_per_core: 0 },
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "cells_per_core",
                ..
            })
        ));
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                backend: BackendKind::GridAdi {
                    cells_per_core: 0,
                    time_step: 1e-3,
                },
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "cells_per_core",
                ..
            })
        ));
        for bad_dt in [0.0, -1e-3, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ServiceRunner::new(ServiceConfig {
                    backend: BackendKind::GridAdi {
                        cells_per_core: 3,
                        time_step: bad_dt,
                    },
                    ..ServiceConfig::default()
                }),
                Err(ServiceError::InvalidSpec {
                    field: "time_step",
                    ..
                })
            ));
        }
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                faults: FaultPlan {
                    panic_rate: 2.0,
                    ..FaultPlan::none()
                },
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "panic_rate",
                ..
            })
        ));
        assert!(matches!(
            ServiceRunner::new(ServiceConfig {
                retry: RetryPolicy {
                    max_attempts: 0,
                    ..RetryPolicy::disabled()
                },
                ..ServiceConfig::default()
            }),
            Err(ServiceError::InvalidSpec {
                field: "max_attempts",
                ..
            })
        ));
        for bad_budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ServiceRunner::new(ServiceConfig {
                    deadline_effort: Some(bad_budget),
                    ..ServiceConfig::default()
                }),
                Err(ServiceError::InvalidSpec {
                    field: "deadline_effort",
                    ..
                })
            ));
        }
        let runner = ServiceRunner::new(ServiceConfig::default()).unwrap();
        assert!(runner.config().workers >= 1);
        assert_eq!(runner.config().backend, BackendKind::RcCompact);
        assert!(runner.config().operator_cache);
        assert!(!runner.config().faults.is_active());
        assert_eq!(runner.config().retry.max_attempts, 1);
        assert_eq!(runner.config().clock, ClockKind::Wall);
        assert_eq!(runner.config().deadline_effort, None);
    }

    #[test]
    fn injected_faults_retry_deterministically_under_virtual_clock() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            ..small_spec()
        }
        .build()
        .unwrap();
        let config = ServiceConfig {
            workers: 1,
            faults: FaultPlan {
                seed: 21,
                error_rate: 0.6,
                ..FaultPlan::none()
            },
            retry: RetryPolicy::retries(4),
            clock: ClockKind::Virtual,
            ..ServiceConfig::default()
        };
        let reference = ServiceRunner::new(config).unwrap().run(&corpus).unwrap();
        let wide = ServiceRunner::new(ServiceConfig {
            workers: 3,
            ..config
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        // Faults and retries are keyed by (seed, job, attempt), so the
        // per-job results — including attempt counts — stay byte-identical
        // across worker counts.
        assert_eq!(reference.jobs(), wide.jobs());
        assert_eq!(reference.render_jobs(), wide.render_jobs());
        assert!(reference.stats().injected_faults > 0);
        assert_eq!(
            reference.stats().injected_faults,
            wide.stats().injected_faults
        );
        assert_eq!(
            reference.stats().retried_attempts,
            wide.stats().retried_attempts
        );
        assert!(
            reference.stats().retried_attempts > 0,
            "a 0.6 error rate must force at least one retry"
        );
        assert!(
            reference
                .jobs()
                .iter()
                .any(|job| job.outcome.attempts() > 1),
            "attempt accounting must surface in the outcomes"
        );
        assert!(
            reference.stats().completed > 0,
            "retries must rescue at least one faulted job"
        );
        // Virtual latency (injected backoff time) is deterministic too.
        assert_eq!(reference.stats().latency, wide.stats().latency);
    }

    #[test]
    fn deadline_effort_budgets_produce_deterministic_deadline_outcomes() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            ..small_spec()
        }
        .build()
        .unwrap();
        // A 1-simulated-second budget is below any scenario's phase-1
        // characterisation effort, so every job interrupts at its first
        // checkpoint.
        let config = ServiceConfig {
            workers: 2,
            deadline_effort: Some(1.0),
            ..ServiceConfig::default()
        };
        let report = ServiceRunner::new(config).unwrap().run(&corpus).unwrap();
        assert_eq!(report.stats().deadline_exceeded, corpus.jobs().len());
        assert_eq!(report.stats().completed, 0);
        for job in report.jobs() {
            match &job.outcome {
                JobOutcome::DeadlineExceeded {
                    spent_effort,
                    budget,
                    attempts,
                } => {
                    assert!(*spent_effort > *budget);
                    assert_eq!(*budget, 1.0);
                    assert_eq!(*attempts, 1);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        // Effort is simulated time, a pure function of the corpus: the
        // deadline outcomes are byte-identical on a single worker too.
        let narrow = ServiceRunner::new(ServiceConfig {
            workers: 1,
            ..config
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        assert_eq!(report.jobs(), narrow.jobs());
    }

    #[test]
    fn store_poisoning_is_survived_and_results_unchanged() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            ..small_spec()
        }
        .build()
        .unwrap();
        let clean = ServiceRunner::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        let poisoned = ServiceRunner::new(ServiceConfig {
            workers: 2,
            faults: FaultPlan {
                seed: 5,
                poison_rate: 1.0,
                ..FaultPlan::none()
            },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        // Every job poisons a store shard before running; the stores
        // recover the lock and the deterministic results are unaffected.
        assert_eq!(clean.jobs(), poisoned.jobs());
        assert_eq!(
            poisoned.stats().injected_faults,
            corpus.jobs().len(),
            "one poison event per job"
        );
        assert_eq!(poisoned.stats().completed, corpus.jobs().len());
    }
}
