//! Job results and the aggregated service report.
//!
//! The report is split along the determinism boundary on purpose:
//!
//! * [`JobResult`] (and [`ServiceReport::render_jobs`]) contain only values
//!   that are pure functions of the corpus — the simulators are
//!   deterministic, so schedule lengths, session counts, effort, discard
//!   counts and temperatures are identical no matter how many workers ran
//!   the batch or in which order the jobs interleaved. The service's
//!   determinism contract (same corpus ⇒ byte-identical job results at any
//!   worker count) is stated over exactly this part.
//! * [`ServiceStats`] holds everything that legitimately depends on timing
//!   and interleaving: wall clock, throughput, cache hit counts (whichever
//!   of two jobs sharing a core-set key runs first pays the simulation) and
//!   shard contention.

use std::fmt::Write as _;

use thermsched::{OperatorCacheStats, ScheduleOutcome, StoreStats};
use thermsched_obs::MetricsSnapshot;

use crate::frontend::{Rejected, ShedCause};
use crate::JobSpec;

/// The deterministic metrics of one completed scheduling job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Generated schedule length in seconds.
    pub schedule_length: f64,
    /// Number of test sessions in the schedule.
    pub session_count: usize,
    /// Simulation effort in seconds of simulated session time (the paper's
    /// cost metric — attempts count whether served from cache or not).
    pub simulation_effort: f64,
    /// Simulated time spent in per-core characterisation (phase 1).
    pub characterization_effort: f64,
    /// Discarded (thermally violating) candidate sessions.
    pub discarded_sessions: usize,
    /// Hottest committed-session temperature (°C).
    pub max_temperature: f64,
    /// The temperature limit actually enforced (raised above the configured
    /// one only under the `RaiseLimit` policy).
    pub effective_temperature_limit: f64,
    /// Attempts this job took, including the successful one (1 without
    /// retries; larger only when injected faults were retried away).
    pub attempts: u32,
}

impl From<&ScheduleOutcome> for JobMetrics {
    fn from(outcome: &ScheduleOutcome) -> Self {
        JobMetrics {
            schedule_length: outcome.schedule_length(),
            session_count: outcome.session_count(),
            simulation_effort: outcome.simulation_effort,
            characterization_effort: outcome.characterization_effort,
            discarded_sessions: outcome.discarded_sessions,
            max_temperature: outcome.max_temperature,
            effective_temperature_limit: outcome.effective_temperature_limit,
            attempts: 1,
        }
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The run completed; deterministic metrics attached.
    Completed(JobMetrics),
    /// The scheduler returned an error (e.g. a core-level violation under
    /// the failing policy, or an exhausted iteration budget).
    Failed {
        /// The scheduler error, rendered.
        error: String,
        /// Whether the error was classified retryable
        /// ([`crate::ServiceError::is_retryable`]); a retryable terminal
        /// failure means the retry budget was exhausted.
        retryable: bool,
        /// Attempts spent before giving up (1 without retries).
        attempts: u32,
    },
    /// The job panicked; the panic was caught and isolated to this job.
    Panicked {
        /// The panic payload, rendered.
        message: String,
        /// Attempts spent before giving up (1 without retries).
        attempts: u32,
    },
    /// The job's effort-budget deadline expired at a scheduling checkpoint.
    ///
    /// Deadlines are measured in *simulated* seconds of thermal-model
    /// effort, not wall clock, so this outcome is as deterministic as a
    /// completed one. A `budget` of `0.0` marks a job cancelled in flight
    /// by [`crate::Frontend::drain`].
    DeadlineExceeded {
        /// Simulated effort spent when the deadline fired.
        spent_effort: f64,
        /// The effort budget that was exceeded (0.0 = drain cancellation).
        budget: f64,
        /// Attempts spent, including the one that hit the deadline.
        attempts: u32,
    },
    /// The job was admitted but dropped from the queue before running.
    Shed(ShedCause),
    /// The job was refused at submission and never entered the queue.
    Rejected(Rejected),
}

impl JobOutcome {
    /// The metrics of a completed job, if it completed.
    pub fn metrics(&self) -> Option<&JobMetrics> {
        match self {
            JobOutcome::Completed(metrics) => Some(metrics),
            _ => None,
        }
    }

    /// Attempts the job consumed (0 for jobs that never ran: shed or
    /// rejected work).
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Completed(m) => m.attempts,
            JobOutcome::Failed { attempts, .. }
            | JobOutcome::Panicked { attempts, .. }
            | JobOutcome::DeadlineExceeded { attempts, .. } => *attempts,
            JobOutcome::Shed(_) | JobOutcome::Rejected(_) => 0,
        }
    }
}

/// Latency percentiles over the resolved jobs of one run, nearest-rank.
///
/// Under [`crate::ClockKind::Wall`] these are wall-clock submission-to-
/// resolution times and belong firmly on the timing-dependent side of the
/// report; under [`crate::ClockKind::Virtual`] they aggregate the
/// deterministic virtual seconds accrued by injected delays and backoffs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Latency samples aggregated (resolved jobs).
    pub samples: usize,
    /// Median latency in seconds.
    pub p50_seconds: f64,
    /// 99th-percentile latency in seconds.
    pub p99_seconds: f64,
    /// Worst latency in seconds.
    pub max_seconds: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles of `samples` (seconds). Empty input yields
    /// the all-zero stats.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencyStats {
            samples: sorted.len(),
            p50_seconds: rank(0.50),
            p99_seconds: rank(0.99),
            max_seconds: sorted[sorted.len() - 1],
        }
    }
}

/// One job of the batch, resolved: its spec fields plus how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Index of the job in [`crate::Corpus::jobs`] order.
    pub index: usize,
    /// Scenario index the job ran against.
    pub scenario: usize,
    /// Name of that scenario (`"s03-g4x4"`).
    pub scenario_name: String,
    /// Operating-point label from the [`JobSpec`].
    pub label: String,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl JobResult {
    pub(crate) fn new(
        index: usize,
        spec: &JobSpec,
        scenario_name: &str,
        outcome: JobOutcome,
    ) -> Self {
        JobResult {
            index,
            scenario: spec.scenario,
            scenario_name: scenario_name.to_owned(),
            label: spec.label.clone(),
            outcome,
        }
    }
}

/// Timing- and interleaving-dependent aggregates of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Worker threads the batch ran with.
    pub workers: usize,
    /// Name of the shared session store backing each scenario
    /// (`"mutex"`, `"sharded(8)"`, ...).
    pub store_name: String,
    /// Shards per scenario store.
    pub shard_count: usize,
    /// Label of the thermal backend kind validating every job
    /// (`"rc-compact"`, `"grid-transient(4)"`).
    pub backend_name: String,
    /// Whether same-shape scenarios shared backend instances through the
    /// run's operator cache.
    pub operator_cache_enabled: bool,
    /// Operator-cache counters of the run's backend-construction pass.
    /// Backends are built sequentially before the workers start, so unlike
    /// the session-store counters these are a deterministic function of the
    /// corpus: `misses` counts distinct (backend, shape, core-size) keys
    /// and `hits` the scenarios that reused one.
    pub operator_cache: OperatorCacheStats,
    /// Scenarios in the corpus.
    pub scenario_count: usize,
    /// Jobs executed.
    pub job_count: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that returned a scheduler error.
    pub failed: usize,
    /// Jobs that panicked (isolated).
    pub panicked: usize,
    /// Jobs whose effort-budget deadline fired (including drain
    /// cancellations).
    pub deadline_exceeded: usize,
    /// Jobs shed from the queue before running (admission displacement or
    /// drain).
    pub shed: usize,
    /// Submissions rejected outright (never queued).
    pub rejected: usize,
    /// Retry attempts beyond each job's first, summed over the run.
    pub retried_attempts: usize,
    /// Faults fired by the configured [`crate::FaultPlan`].
    pub injected_faults: usize,
    /// Worker *processes* that died mid-batch (EOF or a malformed frame on
    /// their pipe) and had their unacknowledged jobs reassigned. Only the
    /// multi-process coordinator ([`crate::MultiprocCoordinator`]) can make
    /// this non-zero; in-process runs always report 0.
    pub worker_crashes: usize,
    /// Latency percentiles over resolved jobs (all-zero when no latency was
    /// recorded, e.g. for direct [`crate::ServiceRunner::run`] batches).
    pub latency: LatencyStats,
    /// Wall-clock duration of the batch in seconds.
    pub wall_seconds: f64,
    /// Jobs per wall-clock second.
    pub jobs_per_second: f64,
    /// Candidate validations served from any cache, summed over jobs.
    pub cached_validations: usize,
    /// Simulations avoided because another run had already published the
    /// result to the scenario's shared store, summed over jobs.
    pub warm_cache_hits: usize,
    /// Characterisation sessions published by the same-shape batcher before
    /// the workers started (0 when batching is disabled or the backend kind
    /// does not batch).
    pub prewarmed_sessions: usize,
    /// Usage counters summed over every scenario's shared store.
    pub store: StoreStats,
}

/// The result of one [`crate::ServiceRunner::run`]: per-job results in
/// deterministic corpus order, plus run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    jobs: Vec<JobResult>,
    stats: ServiceStats,
}

impl ServiceReport {
    pub(crate) fn new(jobs: Vec<JobResult>, stats: ServiceStats) -> Self {
        ServiceReport { jobs, stats }
    }

    /// Per-job results, in corpus job order (independent of which worker ran
    /// what when).
    pub fn jobs(&self) -> &[JobResult] {
        &self.jobs
    }

    /// Run statistics (throughput, cache behaviour, failure counts).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Hottest committed temperature over all completed jobs (°C), or
    /// `None` when no job completed. (This used to return the
    /// `f64::NEG_INFINITY` fold sentinel for an empty report, which leaked
    /// into renderings as `-inf C`.)
    pub fn max_temperature(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter_map(|job| job.outcome.metrics())
            .map(|m| m.max_temperature)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }

    /// Renders the deterministic per-job table: one line per job, byte
    /// identical across worker counts for the same corpus.
    pub fn render_jobs(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            let _ = write!(
                out,
                "#{:03} {} {} | ",
                job.index, job.scenario_name, job.label
            );
            match &job.outcome {
                JobOutcome::Completed(m) => {
                    let _ = writeln!(
                        out,
                        "len {:.3} s, sessions {}, effort {:.3} s, discarded {}, max {:.3} C",
                        m.schedule_length,
                        m.session_count,
                        m.simulation_effort,
                        m.discarded_sessions,
                        m.max_temperature,
                    );
                }
                JobOutcome::Failed {
                    error, attempts, ..
                } => {
                    if *attempts > 1 {
                        let _ = writeln!(out, "FAILED after {attempts} attempts: {error}");
                    } else {
                        let _ = writeln!(out, "FAILED: {error}");
                    }
                }
                JobOutcome::Panicked { message, attempts } => {
                    if *attempts > 1 {
                        let _ = writeln!(out, "PANICKED after {attempts} attempts: {message}");
                    } else {
                        let _ = writeln!(out, "PANICKED: {message}");
                    }
                }
                JobOutcome::DeadlineExceeded {
                    spent_effort,
                    budget,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "DEADLINE EXCEEDED: spent {spent_effort:.3} s of {budget:.3} s budget"
                    );
                }
                JobOutcome::Shed(cause) => {
                    let _ = writeln!(out, "SHED: {cause}");
                }
                JobOutcome::Rejected(rejection) => {
                    let _ = writeln!(out, "REJECTED: {rejection}");
                }
            }
        }
        out
    }

    /// Renders the aggregate summary (throughput, cache behaviour). This
    /// part is timing-dependent by nature.
    pub fn render_summary(&self) -> String {
        self.stats
            .render_with_max_temperature(self.max_temperature())
    }
}

impl ServiceStats {
    /// Renders the aggregate summary on its own — what a
    /// [`crate::DrainReport`] prints, where no per-job table (and thus no
    /// hottest temperature) is attached.
    pub fn render(&self) -> String {
        self.render_with_max_temperature(None)
    }

    /// These stats as a metrics snapshot — the view the metrics registry
    /// subsumes the legacy counter fields under. Names are stable (they are
    /// what [`crate::ServiceRunner::run_traced`] absorbs into its registry
    /// and what trace documents carry); see the `thermsched` crate docs for
    /// the field-to-metric migration table.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("operator_cache.hits".to_owned(), self.operator_cache.hits),
                (
                    "operator_cache.misses".to_owned(),
                    self.operator_cache.misses,
                ),
                (
                    "service.cached_validations".to_owned(),
                    self.cached_validations as u64,
                ),
                ("service.completed".to_owned(), self.completed as u64),
                (
                    "service.deadline_exceeded".to_owned(),
                    self.deadline_exceeded as u64,
                ),
                ("service.failed".to_owned(), self.failed as u64),
                (
                    "service.injected_faults".to_owned(),
                    self.injected_faults as u64,
                ),
                ("service.jobs".to_owned(), self.job_count as u64),
                ("service.panicked".to_owned(), self.panicked as u64),
                (
                    "service.prewarmed_sessions".to_owned(),
                    self.prewarmed_sessions as u64,
                ),
                ("service.rejected".to_owned(), self.rejected as u64),
                (
                    "service.retried_attempts".to_owned(),
                    self.retried_attempts as u64,
                ),
                ("service.shed".to_owned(), self.shed as u64),
                (
                    "service.warm_cache_hits".to_owned(),
                    self.warm_cache_hits as u64,
                ),
                (
                    "service.worker_crashes".to_owned(),
                    self.worker_crashes as u64,
                ),
                (
                    "store.contended_locks".to_owned(),
                    self.store.contended_locks,
                ),
                ("store.hits".to_owned(), self.store.hits),
                ("store.insertions".to_owned(), self.store.insertions),
                ("store.lookups".to_owned(), self.store.lookups),
            ],
            gauges: vec![
                ("service.jobs_per_second".to_owned(), self.jobs_per_second),
                ("service.wall_seconds".to_owned(), self.wall_seconds),
            ],
            histograms: Vec::new(),
        }
    }

    pub(crate) fn render_with_max_temperature(&self, max_temperature: Option<f64>) -> String {
        let s = self;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service report: {} jobs over {} scenarios, {} workers, {} store, {} backend",
            s.job_count, s.scenario_count, s.workers, s.store_name, s.backend_name
        );
        let _ = writeln!(
            out,
            "  completed {}, failed {}, panicked {}",
            s.completed, s.failed, s.panicked
        );
        if s.deadline_exceeded + s.shed + s.rejected + s.retried_attempts + s.injected_faults > 0 {
            let _ = writeln!(
                out,
                "  deadline exceeded {}, shed {}, rejected {}, retried attempts {}, \
                 injected faults {}",
                s.deadline_exceeded, s.shed, s.rejected, s.retried_attempts, s.injected_faults
            );
        }
        if s.worker_crashes > 0 {
            let _ = writeln!(out, "  worker crashes {}", s.worker_crashes);
        }
        let _ = writeln!(
            out,
            "  wall {:.3} s, {:.1} jobs/s",
            s.wall_seconds, s.jobs_per_second
        );
        if s.latency.samples > 0 {
            let _ = writeln!(
                out,
                "  latency p50 {:.6} s, p99 {:.6} s, max {:.6} s over {} jobs",
                s.latency.p50_seconds,
                s.latency.p99_seconds,
                s.latency.max_seconds,
                s.latency.samples
            );
        } else {
            // No samples means the percentiles are undefined, not 0.0 s —
            // rendering the default zeros would read as an impossibly fast
            // run.
            let _ = writeln!(out, "  latency p50 n/a, p99 n/a, max n/a (no samples)");
        }
        let _ = writeln!(
            out,
            "  shared store: {} lookups, {} hits ({:.1}% hit rate), {} insertions, \
             {} contended locks",
            s.store.lookups,
            s.store.hits,
            s.store.hit_rate() * 100.0,
            s.store.insertions,
            s.store.contended_locks
        );
        match max_temperature {
            Some(t) => {
                let _ = writeln!(out, "  hottest committed temperature {t:.3} C");
            }
            None => {
                let _ = writeln!(out, "  hottest committed temperature n/a");
            }
        }
        let _ = writeln!(
            out,
            "  warm cache hits {}, cached validations {}, prewarmed sessions {}",
            s.warm_cache_hits, s.cached_validations, s.prewarmed_sessions
        );
        if s.operator_cache_enabled {
            let _ = writeln!(
                out,
                "  operator cache: {} backends built, {} scenarios reusing one",
                s.operator_cache.misses, s.operator_cache.hits
            );
        } else {
            let _ = writeln!(out, "  operator cache: off");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> JobMetrics {
        JobMetrics {
            schedule_length: 6.0,
            session_count: 6,
            simulation_effort: 9.0,
            characterization_effort: 12.0,
            discarded_sessions: 3,
            max_temperature: 151.25,
            effective_temperature_limit: 165.0,
            attempts: 1,
        }
    }

    fn report() -> ServiceReport {
        let jobs = vec![
            JobResult {
                index: 0,
                scenario: 0,
                scenario_name: "s00-g3x3".to_owned(),
                label: "TL=165 STCL=40 wf=1.1 AsGiven".to_owned(),
                outcome: JobOutcome::Completed(metrics()),
            },
            JobResult {
                index: 1,
                scenario: 1,
                scenario_name: "s01-g4x3".to_owned(),
                label: "TL=165 STCL=80 wf=1.1 AsGiven".to_owned(),
                outcome: JobOutcome::Failed {
                    error: "iteration budget exhausted".to_owned(),
                    retryable: false,
                    attempts: 1,
                },
            },
        ];
        let stats = ServiceStats {
            workers: 4,
            store_name: "sharded(8)".to_owned(),
            shard_count: 8,
            backend_name: "rc-compact".to_owned(),
            operator_cache_enabled: true,
            operator_cache: OperatorCacheStats { hits: 1, misses: 1 },
            scenario_count: 2,
            job_count: 2,
            completed: 1,
            failed: 1,
            panicked: 0,
            deadline_exceeded: 0,
            shed: 0,
            rejected: 0,
            retried_attempts: 0,
            injected_faults: 0,
            worker_crashes: 0,
            latency: LatencyStats::default(),
            wall_seconds: 0.5,
            jobs_per_second: 4.0,
            cached_validations: 3,
            warm_cache_hits: 2,
            prewarmed_sessions: 5,
            store: StoreStats {
                lookups: 10,
                hits: 2,
                insertions: 8,
                contended_locks: 1,
            },
        };
        ServiceReport::new(jobs, stats)
    }

    #[test]
    fn job_table_lists_every_job_with_its_outcome() {
        let r = report();
        let table = r.render_jobs();
        assert!(table.contains("#000 s00-g3x3"));
        assert!(table.contains("len 6.000 s, sessions 6"));
        assert!(table.contains("max 151.250 C"));
        assert!(table.contains("#001 s01-g4x3"));
        assert!(table.contains("FAILED: iteration budget exhausted"));
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn summary_reports_throughput_and_cache_behaviour() {
        let r = report();
        let summary = r.render_summary();
        assert!(summary
            .contains("2 jobs over 2 scenarios, 4 workers, sharded(8) store, rc-compact backend"));
        assert!(summary.contains("operator cache: 1 backends built, 1 scenarios reusing one"));
        assert!(summary.contains("completed 1, failed 1, panicked 0"));
        assert!(summary.contains("4.0 jobs/s"));
        assert!(summary.contains("20.0% hit rate"));
        assert!(summary.contains("1 contended locks"));
        assert!(summary.contains("hottest committed temperature 151.250 C"));
        assert!(summary.contains("prewarmed sessions 5"));
        assert_eq!(r.max_temperature(), Some(151.25));
        assert_eq!(r.jobs().len(), 2);
        assert_eq!(r.stats().shard_count, 8);
    }

    #[test]
    fn empty_and_all_failed_reports_have_no_max_temperature() {
        // Regression: the old NEG_INFINITY fold sentinel leaked "-inf C"
        // into summaries of reports where nothing completed.
        let base = report();
        let empty = ServiceReport::new(Vec::new(), base.stats().clone());
        assert_eq!(empty.max_temperature(), None);
        assert!(empty
            .render_summary()
            .contains("hottest committed temperature n/a"));
        let failed_only: Vec<JobResult> = base
            .jobs()
            .iter()
            .filter(|j| j.outcome.metrics().is_none())
            .cloned()
            .collect();
        assert!(!failed_only.is_empty());
        let failed = ServiceReport::new(failed_only, base.stats().clone());
        assert_eq!(failed.max_temperature(), None);
        assert!(!failed.render_summary().contains("-inf"));
    }

    #[test]
    fn outcome_metrics_accessor_distinguishes_variants() {
        assert!(JobOutcome::Completed(metrics()).metrics().is_some());
        assert!(JobOutcome::Failed {
            error: "e".to_owned(),
            retryable: true,
            attempts: 3,
        }
        .metrics()
        .is_none());
        assert!(JobOutcome::Panicked {
            message: "p".to_owned(),
            attempts: 1,
        }
        .metrics()
        .is_none());
        assert!(JobOutcome::Shed(ShedCause::Drained).metrics().is_none());
        assert_eq!(JobOutcome::Completed(metrics()).attempts(), 1);
        assert_eq!(
            JobOutcome::DeadlineExceeded {
                spent_effort: 3.0,
                budget: 2.0,
                attempts: 2,
            }
            .attempts(),
            2
        );
        assert_eq!(JobOutcome::Shed(ShedCause::Displaced).attempts(), 0);
    }

    #[test]
    fn robustness_outcomes_render_distinct_job_lines() {
        let base = report();
        let mk = |index, outcome| JobResult {
            index,
            scenario: 0,
            scenario_name: "s00-g3x3".to_owned(),
            label: "TL=165".to_owned(),
            outcome,
        };
        let jobs = vec![
            mk(
                0,
                JobOutcome::Failed {
                    error: "injected".to_owned(),
                    retryable: true,
                    attempts: 3,
                },
            ),
            mk(
                1,
                JobOutcome::Panicked {
                    message: "boom".to_owned(),
                    attempts: 2,
                },
            ),
            mk(
                2,
                JobOutcome::DeadlineExceeded {
                    spent_effort: 12.5,
                    budget: 10.0,
                    attempts: 1,
                },
            ),
            mk(3, JobOutcome::Shed(ShedCause::Displaced)),
            mk(4, JobOutcome::Rejected(Rejected::QueueFull { capacity: 2 })),
        ];
        let table = ServiceReport::new(jobs, base.stats().clone()).render_jobs();
        assert!(table.contains("FAILED after 3 attempts: injected"));
        assert!(table.contains("PANICKED after 2 attempts: boom"));
        assert!(table.contains("DEADLINE EXCEEDED: spent 12.500 s of 10.000 s budget"));
        assert!(table.contains("SHED: displaced by a higher-priority submission"));
        assert!(table.contains("REJECTED: ingress queue full (capacity 2)"));
    }

    #[test]
    fn summary_reports_robustness_counters_and_latency_when_present() {
        let base = report();
        // A quiet run has no robustness lines, and its undefined latency
        // percentiles render as n/a (regression: they used to be omitted
        // entirely, and rendering the default zeros instead would read as
        // an impossibly fast run).
        assert!(base
            .render_summary()
            .contains("latency p50 n/a, p99 n/a, max n/a (no samples)"));
        assert!(!base.render_summary().contains("p50 0.000000"));
        assert!(!base.render_summary().contains("deadline exceeded"));
        let mut stats = base.stats().clone();
        stats.deadline_exceeded = 1;
        stats.shed = 2;
        stats.rejected = 3;
        stats.retried_attempts = 4;
        stats.injected_faults = 5;
        stats.latency = LatencyStats::from_samples(&[0.25, 0.5, 1.0]);
        let summary = ServiceReport::new(base.jobs().to_vec(), stats).render_summary();
        assert!(summary.contains(
            "deadline exceeded 1, shed 2, rejected 3, retried attempts 4, injected faults 5"
        ));
        assert!(summary.contains("latency p50 0.500000 s, p99 1.000000 s, max 1.000000 s"));
    }

    #[test]
    fn stats_metrics_view_maps_the_counter_fields() {
        let snapshot = report().stats().metrics();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counter names must stay sorted");
        assert_eq!(snapshot.counter("service.jobs"), Some(2));
        assert_eq!(snapshot.counter("service.completed"), Some(1));
        assert_eq!(snapshot.counter("service.failed"), Some(1));
        assert_eq!(snapshot.counter("service.warm_cache_hits"), Some(2));
        assert_eq!(snapshot.counter("service.cached_validations"), Some(3));
        assert_eq!(snapshot.counter("service.prewarmed_sessions"), Some(5));
        assert_eq!(snapshot.counter("store.lookups"), Some(10));
        assert_eq!(snapshot.counter("store.hits"), Some(2));
        assert_eq!(snapshot.counter("operator_cache.hits"), Some(1));
        assert_eq!(snapshot.counter("operator_cache.misses"), Some(1));
        assert_eq!(snapshot.gauges.len(), 2);
        assert!(snapshot.histograms.is_empty());
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
        // n = 1: every nearest rank clamps to the single sample.
        let one = LatencyStats::from_samples(&[2.0]);
        assert_eq!(
            (
                one.samples,
                one.p50_seconds,
                one.p99_seconds,
                one.max_seconds
            ),
            (1, 2.0, 2.0, 2.0)
        );
        // n = 2: p50 is the lower sample (rank ceil(0.5 · 2) = 1), p99 and
        // max the upper (rank ceil(0.99 · 2) = 2), regardless of input
        // order.
        for samples in [[1.0, 3.0], [3.0, 1.0]] {
            let two = LatencyStats::from_samples(&samples);
            assert_eq!(
                (
                    two.samples,
                    two.p50_seconds,
                    two.p99_seconds,
                    two.max_seconds
                ),
                (2, 1.0, 3.0, 3.0)
            );
        }
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50_seconds, 50.0);
        assert_eq!(stats.p99_seconds, 99.0);
        assert_eq!(stats.max_seconds, 100.0);
        // Order independence: percentiles are over the sorted samples.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(LatencyStats::from_samples(&reversed), stats);
    }
}
