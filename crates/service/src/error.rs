//! Error type of the batch-scheduling service layer.

use std::error::Error;
use std::fmt;

use thermsched::ScheduleError;
use thermsched_soc::SocError;

use crate::fault::FaultKind;

/// Errors produced while building a corpus or running a batch.
///
/// Note that a *job* failing inside [`crate::ServiceRunner::run`] is not an
/// error at this level: per-job failures (and panics) are isolated and
/// reported in the job's [`crate::JobOutcome`] so one bad scenario cannot
/// take down the batch. `ServiceError` covers the failures that make the
/// batch itself meaningless — an invalid spec, or a scenario whose thermal
/// model cannot even be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A corpus or runner parameter is empty or out of range.
    InvalidSpec {
        /// Name of the offending field.
        field: &'static str,
        /// What was wrong with it.
        problem: &'static str,
    },
    /// Generating a system under test failed.
    Soc(SocError),
    /// Constructing a scenario's thermal backend or engine failed.
    Schedule(ScheduleError),
    /// A fault deliberately injected by the configured
    /// [`crate::FaultPlan`] — the only *retryable* error, standing in for
    /// transient infrastructure failures.
    Injected {
        /// Kind of injected fault.
        kind: FaultKind,
        /// Index of the job the fault hit.
        job: u64,
        /// 1-based attempt the fault hit.
        attempt: u32,
    },
    /// Encoding or decoding a wire value failed while crossing the process
    /// boundary.
    Wire(thermsched_wire::WireError),
    /// The multi-process coordinator failed: a worker could not be spawned,
    /// a child spoke the wrong protocol, or every worker died with jobs
    /// still unresolved.
    Multiproc {
        /// What went wrong.
        message: String,
    },
}

impl ServiceError {
    /// Whether retrying the same work can plausibly succeed.
    ///
    /// Only injected faults are retryable: they model transient
    /// infrastructure failures that a later attempt escapes (the fault plan
    /// draws independently per attempt). Everything else the service can
    /// fail with — invalid specs, scenario generation, backend construction,
    /// and real scheduler errors — is a deterministic function of the input
    /// and would only reproduce on retry.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServiceError::Injected { .. } => true,
            // Wire and coordination failures are not retryable at the job
            // level: the coordinator reassigns a dead worker's jobs itself,
            // and a malformed frame would only decode malformed again.
            ServiceError::InvalidSpec { .. }
            | ServiceError::Soc(_)
            | ServiceError::Schedule(_)
            | ServiceError::Wire(_)
            | ServiceError::Multiproc { .. } => false,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidSpec { field, problem } => {
                write!(f, "invalid service specification: {field} {problem}")
            }
            ServiceError::Soc(e) => write!(f, "scenario generation failed: {e}"),
            ServiceError::Schedule(e) => write!(f, "scenario setup failed: {e}"),
            ServiceError::Injected { kind, job, attempt } => {
                write!(f, "injected {kind} fault on job {job} attempt {attempt}")
            }
            ServiceError::Wire(e) => write!(f, "wire codec failed: {e}"),
            ServiceError::Multiproc { message } => {
                write!(f, "multi-process coordination failed: {message}")
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::InvalidSpec { .. }
            | ServiceError::Injected { .. }
            | ServiceError::Multiproc { .. } => None,
            ServiceError::Soc(e) => Some(e),
            ServiceError::Schedule(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
        }
    }
}

impl From<thermsched_wire::WireError> for ServiceError {
    fn from(e: thermsched_wire::WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<SocError> for ServiceError {
    fn from(e: SocError) -> Self {
        ServiceError::Soc(e)
    }
}

impl From<ScheduleError> for ServiceError {
    fn from(e: ScheduleError) -> Self {
        ServiceError::Schedule(e)
    }
}

impl From<thermsched_thermal::ThermalError> for ServiceError {
    fn from(e: thermsched_thermal::ThermalError) -> Self {
        ServiceError::Schedule(ScheduleError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_every_variant() {
        let spec = ServiceError::InvalidSpec {
            field: "scenarios",
            problem: "must be non-zero",
        };
        assert!(spec.to_string().contains("scenarios"));
        assert!(spec.source().is_none());

        let soc: ServiceError = SocError::InvalidGeneratorParameter {
            name: "core_size_mm",
            value: -1.0,
        }
        .into();
        assert!(soc.to_string().contains("scenario generation"));
        assert!(soc.source().is_some());

        let sched: ServiceError = ScheduleError::MissingComponent {
            component: "system under test",
        }
        .into();
        assert!(sched.to_string().contains("scenario setup"));
        assert!(sched.source().is_some());

        let injected = ServiceError::Injected {
            kind: FaultKind::Error,
            job: 7,
            attempt: 2,
        };
        assert!(injected.to_string().contains("injected error fault"));
        assert!(injected.to_string().contains("job 7"));
        assert!(injected.source().is_none());
    }

    #[test]
    fn only_injected_faults_are_retryable() {
        // Every variant is covered here: a new variant must take a stance
        // on retryability to keep this test compiling meaningfully.
        assert!(!ServiceError::InvalidSpec {
            field: "workers",
            problem: "must be non-zero",
        }
        .is_retryable());
        assert!(!ServiceError::Soc(SocError::InvalidGeneratorParameter {
            name: "core_size_mm",
            value: -1.0,
        })
        .is_retryable());
        assert!(!ServiceError::Schedule(ScheduleError::MissingComponent {
            component: "system under test",
        })
        .is_retryable());
        for kind in [
            FaultKind::Panic,
            FaultKind::Error,
            FaultKind::Delay,
            FaultKind::PoisonStore,
        ] {
            assert!(ServiceError::Injected {
                kind,
                job: 0,
                attempt: 1,
            }
            .is_retryable());
        }
        assert!(!ServiceError::Wire(thermsched_wire::WireError::Truncated {
            context: "frame header",
        })
        .is_retryable());
        assert!(!ServiceError::Multiproc {
            message: "all workers dead".to_owned(),
        }
        .is_retryable());
    }

    #[test]
    fn transport_errors_render_and_chain() {
        let wire: ServiceError = thermsched_wire::WireError::BadTag { tag: 0x7f }.into();
        assert!(wire.to_string().contains("wire codec failed"));
        assert!(wire.source().is_some());
        let multiproc = ServiceError::Multiproc {
            message: "worker 2 died".to_owned(),
        };
        assert!(multiproc
            .to_string()
            .contains("multi-process coordination failed: worker 2 died"));
        assert!(multiproc.source().is_none());
    }
}
