//! Multi-tenant batch scheduling on top of the `thermsched` engine: generate
//! a corpus of scenarios, drive hundreds of scheduling jobs through a worker
//! pool, and aggregate the results.
//!
//! The paper schedules one system at a time; this crate is the service layer
//! that turns the reproduction into a workload machine. It adds five
//! pieces:
//!
//! 1. **Scenario corpus generation** ([`ScenarioSpec`] → [`Corpus`]): a
//!    seed-driven family of systems under test (via
//!    [`thermsched_soc::SocGenerator`]) crossed with an operating grid of
//!    `TL × STCL` points and configuration variants. Fully deterministic:
//!    the corpus is a pure function of the spec.
//! 2. **A concurrent job runner** ([`ServiceRunner`]): scoped worker threads
//!    drain one job queue, each worker reuses one [`thermsched::Engine`] per
//!    scenario, per-job errors and panics are isolated into the job's
//!    [`JobOutcome`], and all jobs of a scenario share one session store —
//!    either the single-lock mutex store or the N-way
//!    [`thermsched::ShardedSessionCache`] ([`StoreKind`]).
//! 3. **An aggregated report** ([`ServiceReport`]): deterministic per-job
//!    results (identical at any worker count) plus run statistics —
//!    throughput, cache hit rates, shard contention, latency percentiles
//!    ([`ServiceStats`]).
//! 4. **A streaming front-end with first-class failure handling**
//!    ([`Frontend`]): a long-lived submission API over the same execution
//!    machinery — bounded ingress queue with priority admission control and
//!    load shedding, per-submission [`JobHandle`]s, seeded deterministic
//!    fault injection and retries ([`FaultPlan`], [`RetryPolicy`]),
//!    effort-budget deadlines enforced at the scheduler's cooperative
//!    checkpoints, and graceful drain ([`Frontend::drain`]).
//! 5. **A multi-process sharding coordinator** ([`MultiprocCoordinator`]):
//!    shards a corpus round-robin across real worker processes (the
//!    `thermsched worker` binary, or anything speaking the same framed
//!    protocol via [`worker_serve`]) over stdin/stdout pipes, merges the
//!    results and per-worker stats into one [`ServiceReport`], and survives
//!    workers dying mid-run by reassigning their unfinished jobs
//!    ([`ServiceStats::worker_crashes`]). Per-job results remain
//!    byte-identical at any process count.
//!
//! Every execution path is instrumented with [`thermsched_obs`]: pass a
//! [`thermsched_obs::Tracer`] and [`thermsched_obs::MetricsRegistry`] to
//! [`ServiceRunner::run_traced`], [`Frontend::start_traced`] or
//! [`MultiprocCoordinator::run_traced`] and every job produces a span tree
//! (`job` → `attempt` → `engine.schedule` → scheduler phases and store
//! probes) while the counters behind [`ServiceStats`] land in the registry
//! as mergeable metrics. The untraced entry points pay nothing — they run
//! with a disabled tracer whose span calls compile down to no-ops.
//!
//! # Example
//!
//! ```
//! use thermsched_service::{ScenarioSpec, ServiceConfig, ServiceRunner, StoreKind};
//!
//! # fn main() -> Result<(), thermsched_service::ServiceError> {
//! // Four 9..20-core systems, each scheduled at two STCL points.
//! let corpus = ScenarioSpec {
//!     scenarios: 4,
//!     seed: 42,
//!     ..ScenarioSpec::default()
//! }
//! .build()?;
//!
//! // One worker keeps the example deterministic: with a pool, two jobs of
//! // one scenario may race on a cold store and both miss the warm cache.
//! let runner = ServiceRunner::new(ServiceConfig {
//!     workers: 1,
//!     store: StoreKind::Sharded { shards: 8 },
//!     ..ServiceConfig::default()
//! })?;
//! let report = runner.run(&corpus)?;
//!
//! assert_eq!(report.stats().completed, 8);
//! // Jobs of one scenario share phase-1 characterisations through the
//! // scenario's store, so the batch sees warm cache hits.
//! assert!(report.stats().warm_cache_hits > 0);
//! print!("{}", report.render_summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
mod frontend;
mod multiproc;
mod report;
mod runner;
mod scenario;
mod wire;

pub use error::ServiceError;
pub use fault::{ClockKind, FaultKind, FaultPlan, RetryPolicy};
pub use frontend::{
    DrainReport, Frontend, FrontendConfig, JobHandle, Priority, Rejected, ShedCause, Submission,
};
pub use multiproc::{
    worker_serve, CrashPlan, MultiprocConfig, MultiprocCoordinator, PROTOCOL_VERSION,
};
pub use report::{JobMetrics, JobOutcome, JobResult, LatencyStats, ServiceReport, ServiceStats};
pub use runner::{BackendKind, ServiceConfig, ServiceRunner, StoreKind};
pub use scenario::{Corpus, JobSpec, Scenario, ScenarioSpec, TraceFamily};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = ServiceError> = std::result::Result<T, E>;
