//! [`Wire`] codecs for the service layer: scenario specs, expanded corpora,
//! the runner configuration, and the full report.
//!
//! Two conventions worth noting:
//!
//! * A [`Scenario`] serialises its *generated* system under test, so a
//!   decoded corpus is self-contained — no generator run (and no seed
//!   stability promise) is needed to re-execute it. This is what the
//!   multi-process coordinator ships to its workers.
//! * Sum types ([`BackendKind`], [`JobOutcome`], ...) encode as tagged
//!   objects (`{"kind": "...", ...}`); unit-only enums ([`ClockKind`],
//!   [`ShedCause`]) as plain strings. Unknown tags are typed
//!   [`WireError::UnknownVariant`] errors, never panics.

use thermsched_wire::{obj, JsonValue, Result, Wire, WireError};

use crate::{
    BackendKind, ClockKind, Corpus, FaultPlan, JobMetrics, JobOutcome, JobResult, JobSpec,
    LatencyStats, Rejected, RetryPolicy, Scenario, ScenarioSpec, ServiceConfig, ServiceReport,
    ServiceStats, ShedCause, StoreKind, TraceFamily,
};
use thermsched::{CoreOrdering, OperatorCacheStats, SchedulerConfig, StoreStats, TraceProfile};
use thermsched_soc::SystemUnderTest;

/// Decodes an optional finite f64 stored as `null` or a number.
fn optional_f64(
    value: &JsonValue,
    type_name: &'static str,
    name: &'static str,
) -> Result<Option<f64>> {
    match value.field(type_name, name)? {
        JsonValue::Null => Ok(None),
        other => other.as_f64().map(Some),
    }
}

/// Encodes a `(usize, usize)` pair as a two-element array.
fn pair_usize(pair: (usize, usize)) -> JsonValue {
    JsonValue::from(vec![JsonValue::from(pair.0), JsonValue::from(pair.1)])
}

/// Decodes a two-element array back into a `(usize, usize)` pair.
fn decode_pair_usize(value: &JsonValue, type_name: &'static str) -> Result<(usize, usize)> {
    let items = value.as_array()?;
    if items.len() != 2 {
        return Err(WireError::Invalid {
            type_name,
            message: format!(
                "expected a [columns, rows] pair, got {} elements",
                items.len()
            ),
        });
    }
    Ok((items[0].as_usize()?, items[1].as_usize()?))
}

/// Encodes an `(f64, f64)` range as a two-element array.
fn pair_f64(pair: (f64, f64)) -> JsonValue {
    JsonValue::from(vec![JsonValue::from(pair.0), JsonValue::from(pair.1)])
}

/// Decodes a two-element array back into an `(f64, f64)` range.
fn decode_pair_f64(value: &JsonValue, type_name: &'static str) -> Result<(f64, f64)> {
    let items = value.as_array()?;
    if items.len() != 2 {
        return Err(WireError::Invalid {
            type_name,
            message: format!("expected a [low, high] pair, got {} elements", items.len()),
        });
    }
    Ok((items[0].as_f64()?, items[1].as_f64()?))
}

fn f64_array(values: &[f64]) -> JsonValue {
    JsonValue::from(
        values
            .iter()
            .map(|&v| JsonValue::from(v))
            .collect::<Vec<_>>(),
    )
}

fn decode_f64_array(value: &JsonValue) -> Result<Vec<f64>> {
    value.as_array()?.iter().map(JsonValue::as_f64).collect()
}

impl Wire for TraceFamily {
    const WIRE_TYPE: &'static str = "trace_family";

    fn to_wire(&self) -> JsonValue {
        JsonValue::from(self.label())
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        let name = value.as_str()?;
        TraceFamily::parse(name).ok_or_else(|| WireError::UnknownVariant {
            type_name: "trace_family",
            variant: name.to_owned(),
        })
    }
}

impl Wire for ScenarioSpec {
    const WIRE_TYPE: &'static str = "scenario_spec";

    fn to_wire(&self) -> JsonValue {
        let grid_shapes: Vec<JsonValue> = self.grid_shapes.iter().map(|&s| pair_usize(s)).collect();
        let orderings: Vec<JsonValue> = self.orderings.iter().map(Wire::to_wire).collect();
        let mut spec = obj()
            .field("seed", self.seed)
            .field("scenarios", self.scenarios)
            .field("grid_shapes", grid_shapes)
            .field("core_size_mm", self.core_size_mm)
            .field("power_density", pair_f64(self.power_density))
            .field("test_time", pair_f64(self.test_time))
            .field("temperature_limits", f64_array(&self.temperature_limits))
            .field("stc_limits", f64_array(&self.stc_limits))
            .field("weight_factors", f64_array(&self.weight_factors))
            .field("orderings", orderings)
            .field("raise_limit_margin", self.raise_limit_margin);
        // The online fields are omitted entirely when inactive so documents
        // (and golden bytes) from offline-only versions stay unchanged.
        if !self.trace_families.is_empty() {
            let families: Vec<JsonValue> = self.trace_families.iter().map(Wire::to_wire).collect();
            spec = spec.field("trace_families", families);
        }
        if let Some(range) = self.warm_start_range {
            spec = spec.field("warm_start_range", pair_f64(range));
        }
        spec.build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "scenario_spec";
        Ok(ScenarioSpec {
            trace_families: match value.get("trace_families") {
                Some(families) => families
                    .as_array()?
                    .iter()
                    .map(TraceFamily::from_wire)
                    .collect::<Result<Vec<_>>>()?,
                None => vec![],
            },
            warm_start_range: match value.get("warm_start_range") {
                Some(range) => Some(decode_pair_f64(range, T)?),
                None => None,
            },
            seed: value.field_u64(T, "seed")?,
            scenarios: value.field_usize(T, "scenarios")?,
            grid_shapes: value
                .field_array(T, "grid_shapes")?
                .iter()
                .map(|shape| decode_pair_usize(shape, T))
                .collect::<Result<Vec<_>>>()?,
            core_size_mm: value.field_f64(T, "core_size_mm")?,
            power_density: decode_pair_f64(value.field(T, "power_density")?, T)?,
            test_time: decode_pair_f64(value.field(T, "test_time")?, T)?,
            temperature_limits: decode_f64_array(value.field(T, "temperature_limits")?)?,
            stc_limits: decode_f64_array(value.field(T, "stc_limits")?)?,
            weight_factors: decode_f64_array(value.field(T, "weight_factors")?)?,
            orderings: value
                .field_array(T, "orderings")?
                .iter()
                .map(CoreOrdering::from_wire)
                .collect::<Result<Vec<_>>>()?,
            raise_limit_margin: optional_f64(value, T, "raise_limit_margin")?,
        })
    }
}

impl Wire for Scenario {
    const WIRE_TYPE: &'static str = "scenario";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("name", self.name.as_str())
            .field("seed", self.seed)
            .field("grid", pair_usize(self.grid))
            .field("core_size_mm", self.core_size_mm)
            .field("sut", self.sut.to_wire())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "scenario";
        Ok(Scenario {
            name: value.field_str(T, "name")?.to_owned(),
            seed: value.field_u64(T, "seed")?,
            grid: decode_pair_usize(value.field(T, "grid")?, T)?,
            core_size_mm: value.field_f64(T, "core_size_mm")?,
            sut: SystemUnderTest::from_wire(value.field(T, "sut")?)?,
        })
    }
}

impl Wire for JobSpec {
    const WIRE_TYPE: &'static str = "job_spec";

    fn to_wire(&self) -> JsonValue {
        let mut spec = obj()
            .field("scenario", self.scenario)
            .field("label", self.label.as_str())
            .field("config", self.config.to_wire());
        // Omitted when absent, for byte-compatibility with offline documents.
        if let Some(trace) = &self.trace {
            spec = spec.field("trace", trace.to_wire());
        }
        if let Some(warm) = &self.warm_start {
            spec = spec.field("warm_start", f64_array(warm));
        }
        spec.build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "job_spec";
        Ok(JobSpec {
            scenario: value.field_usize(T, "scenario")?,
            label: value.field_str(T, "label")?.to_owned(),
            config: SchedulerConfig::from_wire(value.field(T, "config")?)?,
            trace: match value.get("trace") {
                Some(trace) => Some(TraceProfile::from_wire(trace)?),
                None => None,
            },
            warm_start: match value.get("warm_start") {
                Some(warm) => Some(decode_f64_array(warm)?),
                None => None,
            },
        })
    }
}

impl Wire for Corpus {
    const WIRE_TYPE: &'static str = "corpus";

    fn to_wire(&self) -> JsonValue {
        let scenarios: Vec<JsonValue> = self.scenarios().iter().map(Wire::to_wire).collect();
        let jobs: Vec<JsonValue> = self.jobs().iter().map(Wire::to_wire).collect();
        obj()
            .field("scenarios", scenarios)
            .field("jobs", jobs)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "corpus";
        let scenarios = value
            .field_array(T, "scenarios")?
            .iter()
            .map(Scenario::from_wire)
            .collect::<Result<Vec<_>>>()?;
        let jobs = value
            .field_array(T, "jobs")?
            .iter()
            .map(JobSpec::from_wire)
            .collect::<Result<Vec<_>>>()?;
        Corpus::from_parts(scenarios, jobs).map_err(|e| WireError::Invalid {
            type_name: T,
            message: e.to_string(),
        })
    }
}

impl Wire for BackendKind {
    const WIRE_TYPE: &'static str = "backend_kind";

    fn to_wire(&self) -> JsonValue {
        match self {
            BackendKind::RcCompact => obj().field("kind", "rc_compact").build(),
            BackendKind::GridTransient { cells_per_core } => obj()
                .field("kind", "grid_transient")
                .field("cells_per_core", *cells_per_core)
                .build(),
            BackendKind::GridAdi {
                cells_per_core,
                time_step,
            } => obj()
                .field("kind", "grid_adi")
                .field("cells_per_core", *cells_per_core)
                .field("time_step", *time_step)
                .build(),
        }
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "backend_kind";
        match value.field_str(T, "kind")? {
            "rc_compact" => Ok(BackendKind::RcCompact),
            "grid_transient" => Ok(BackendKind::GridTransient {
                cells_per_core: value.field_usize(T, "cells_per_core")?,
            }),
            "grid_adi" => Ok(BackendKind::GridAdi {
                cells_per_core: value.field_usize(T, "cells_per_core")?,
                time_step: value.field_f64(T, "time_step")?,
            }),
            other => Err(WireError::UnknownVariant {
                type_name: T,
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for StoreKind {
    const WIRE_TYPE: &'static str = "store_kind";

    fn to_wire(&self) -> JsonValue {
        match self {
            StoreKind::Mutex => obj().field("kind", "mutex").build(),
            StoreKind::Sharded { shards } => obj()
                .field("kind", "sharded")
                .field("shards", *shards)
                .build(),
        }
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "store_kind";
        match value.field_str(T, "kind")? {
            "mutex" => Ok(StoreKind::Mutex),
            "sharded" => Ok(StoreKind::Sharded {
                shards: value.field_usize(T, "shards")?,
            }),
            other => Err(WireError::UnknownVariant {
                type_name: T,
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for ClockKind {
    const WIRE_TYPE: &'static str = "clock_kind";

    fn to_wire(&self) -> JsonValue {
        JsonValue::from(match self {
            ClockKind::Wall => "wall",
            ClockKind::Virtual => "virtual",
        })
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        match value.as_str()? {
            "wall" => Ok(ClockKind::Wall),
            "virtual" => Ok(ClockKind::Virtual),
            other => Err(WireError::UnknownVariant {
                type_name: "clock_kind",
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for FaultPlan {
    const WIRE_TYPE: &'static str = "fault_plan";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("seed", self.seed)
            .field("panic_rate", self.panic_rate)
            .field("error_rate", self.error_rate)
            .field("delay_rate", self.delay_rate)
            .field("delay_seconds", self.delay_seconds)
            .field("poison_rate", self.poison_rate)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "fault_plan";
        let plan = FaultPlan {
            seed: value.field_u64(T, "seed")?,
            panic_rate: value.field_f64(T, "panic_rate")?,
            error_rate: value.field_f64(T, "error_rate")?,
            delay_rate: value.field_f64(T, "delay_rate")?,
            delay_seconds: value.field_f64(T, "delay_seconds")?,
            poison_rate: value.field_f64(T, "poison_rate")?,
        };
        plan.validate().map_err(|e| WireError::Invalid {
            type_name: T,
            message: e.to_string(),
        })?;
        Ok(plan)
    }
}

impl Wire for RetryPolicy {
    const WIRE_TYPE: &'static str = "retry_policy";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("max_attempts", self.max_attempts)
            .field("backoff_base_seconds", self.backoff_base_seconds)
            .field("backoff_multiplier", self.backoff_multiplier)
            .field("backoff_jitter", self.backoff_jitter)
            .field("seed", self.seed)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "retry_policy";
        let policy = RetryPolicy {
            max_attempts: value.field_u32(T, "max_attempts")?,
            backoff_base_seconds: value.field_f64(T, "backoff_base_seconds")?,
            backoff_multiplier: value.field_f64(T, "backoff_multiplier")?,
            backoff_jitter: value.field_f64(T, "backoff_jitter")?,
            seed: value.field_u64(T, "seed")?,
        };
        policy.validate().map_err(|e| WireError::Invalid {
            type_name: T,
            message: e.to_string(),
        })?;
        Ok(policy)
    }
}

impl Wire for ServiceConfig {
    const WIRE_TYPE: &'static str = "service_config";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("workers", self.workers)
            .field("store", self.store.to_wire())
            .field("backend", self.backend.to_wire())
            .field("operator_cache", self.operator_cache)
            .field("batch_same_shape", self.batch_same_shape)
            .field("faults", self.faults.to_wire())
            .field("retry", self.retry.to_wire())
            .field("clock", self.clock.to_wire())
            .field("deadline_effort", self.deadline_effort)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "service_config";
        let config = ServiceConfig {
            workers: value.field_usize(T, "workers")?,
            store: StoreKind::from_wire(value.field(T, "store")?)?,
            backend: BackendKind::from_wire(value.field(T, "backend")?)?,
            operator_cache: value.field_bool(T, "operator_cache")?,
            batch_same_shape: value.field_bool(T, "batch_same_shape")?,
            faults: FaultPlan::from_wire(value.field(T, "faults")?)?,
            retry: RetryPolicy::from_wire(value.field(T, "retry")?)?,
            clock: ClockKind::from_wire(value.field(T, "clock")?)?,
            deadline_effort: optional_f64(value, T, "deadline_effort")?,
        };
        config.validate().map_err(|e| WireError::Invalid {
            type_name: T,
            message: e.to_string(),
        })?;
        Ok(config)
    }
}

impl Wire for JobMetrics {
    const WIRE_TYPE: &'static str = "job_metrics";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("schedule_length", self.schedule_length)
            .field("session_count", self.session_count)
            .field("simulation_effort", self.simulation_effort)
            .field("characterization_effort", self.characterization_effort)
            .field("discarded_sessions", self.discarded_sessions)
            .field("max_temperature", self.max_temperature)
            .field(
                "effective_temperature_limit",
                self.effective_temperature_limit,
            )
            .field("attempts", self.attempts)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "job_metrics";
        Ok(JobMetrics {
            schedule_length: value.field_f64(T, "schedule_length")?,
            session_count: value.field_usize(T, "session_count")?,
            simulation_effort: value.field_f64(T, "simulation_effort")?,
            characterization_effort: value.field_f64(T, "characterization_effort")?,
            discarded_sessions: value.field_usize(T, "discarded_sessions")?,
            max_temperature: value.field_f64(T, "max_temperature")?,
            effective_temperature_limit: value.field_f64(T, "effective_temperature_limit")?,
            attempts: value.field_u32(T, "attempts")?,
        })
    }
}

impl Wire for LatencyStats {
    const WIRE_TYPE: &'static str = "latency_stats";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("samples", self.samples)
            .field("p50_seconds", self.p50_seconds)
            .field("p99_seconds", self.p99_seconds)
            .field("max_seconds", self.max_seconds)
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "latency_stats";
        Ok(LatencyStats {
            samples: value.field_usize(T, "samples")?,
            p50_seconds: value.field_f64(T, "p50_seconds")?,
            p99_seconds: value.field_f64(T, "p99_seconds")?,
            max_seconds: value.field_f64(T, "max_seconds")?,
        })
    }
}

impl Wire for Rejected {
    const WIRE_TYPE: &'static str = "rejected";

    fn to_wire(&self) -> JsonValue {
        match self {
            Rejected::QueueFull { capacity } => obj()
                .field("kind", "queue_full")
                .field("capacity", *capacity)
                .build(),
            Rejected::Draining => obj().field("kind", "draining").build(),
            Rejected::UnknownScenario {
                scenario,
                scenario_count,
            } => obj()
                .field("kind", "unknown_scenario")
                .field("scenario", *scenario)
                .field("scenario_count", *scenario_count)
                .build(),
            Rejected::InvalidDeadline => obj().field("kind", "invalid_deadline").build(),
        }
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "rejected";
        match value.field_str(T, "kind")? {
            "queue_full" => Ok(Rejected::QueueFull {
                capacity: value.field_usize(T, "capacity")?,
            }),
            "draining" => Ok(Rejected::Draining),
            "unknown_scenario" => Ok(Rejected::UnknownScenario {
                scenario: value.field_usize(T, "scenario")?,
                scenario_count: value.field_usize(T, "scenario_count")?,
            }),
            "invalid_deadline" => Ok(Rejected::InvalidDeadline),
            other => Err(WireError::UnknownVariant {
                type_name: T,
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for ShedCause {
    const WIRE_TYPE: &'static str = "shed_cause";

    fn to_wire(&self) -> JsonValue {
        JsonValue::from(match self {
            ShedCause::Displaced => "displaced",
            ShedCause::Drained => "drained",
        })
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        match value.as_str()? {
            "displaced" => Ok(ShedCause::Displaced),
            "drained" => Ok(ShedCause::Drained),
            other => Err(WireError::UnknownVariant {
                type_name: "shed_cause",
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for JobOutcome {
    const WIRE_TYPE: &'static str = "job_outcome";

    fn to_wire(&self) -> JsonValue {
        match self {
            JobOutcome::Completed(metrics) => obj()
                .field("kind", "completed")
                .field("metrics", metrics.to_wire())
                .build(),
            JobOutcome::Failed {
                error,
                retryable,
                attempts,
            } => obj()
                .field("kind", "failed")
                .field("error", error.as_str())
                .field("retryable", *retryable)
                .field("attempts", *attempts)
                .build(),
            JobOutcome::Panicked { message, attempts } => obj()
                .field("kind", "panicked")
                .field("message", message.as_str())
                .field("attempts", *attempts)
                .build(),
            JobOutcome::DeadlineExceeded {
                spent_effort,
                budget,
                attempts,
            } => obj()
                .field("kind", "deadline_exceeded")
                .field("spent_effort", *spent_effort)
                .field("budget", *budget)
                .field("attempts", *attempts)
                .build(),
            JobOutcome::Shed(cause) => obj()
                .field("kind", "shed")
                .field("cause", cause.to_wire())
                .build(),
            JobOutcome::Rejected(rejection) => obj()
                .field("kind", "rejected")
                .field("rejection", rejection.to_wire())
                .build(),
        }
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "job_outcome";
        match value.field_str(T, "kind")? {
            "completed" => Ok(JobOutcome::Completed(JobMetrics::from_wire(
                value.field(T, "metrics")?,
            )?)),
            "failed" => Ok(JobOutcome::Failed {
                error: value.field_str(T, "error")?.to_owned(),
                retryable: value.field_bool(T, "retryable")?,
                attempts: value.field_u32(T, "attempts")?,
            }),
            "panicked" => Ok(JobOutcome::Panicked {
                message: value.field_str(T, "message")?.to_owned(),
                attempts: value.field_u32(T, "attempts")?,
            }),
            "deadline_exceeded" => Ok(JobOutcome::DeadlineExceeded {
                spent_effort: value.field_f64(T, "spent_effort")?,
                budget: value.field_f64(T, "budget")?,
                attempts: value.field_u32(T, "attempts")?,
            }),
            "shed" => Ok(JobOutcome::Shed(ShedCause::from_wire(
                value.field(T, "cause")?,
            )?)),
            "rejected" => Ok(JobOutcome::Rejected(Rejected::from_wire(
                value.field(T, "rejection")?,
            )?)),
            other => Err(WireError::UnknownVariant {
                type_name: T,
                variant: other.to_owned(),
            }),
        }
    }
}

impl Wire for JobResult {
    const WIRE_TYPE: &'static str = "job_result";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("index", self.index)
            .field("scenario", self.scenario)
            .field("scenario_name", self.scenario_name.as_str())
            .field("label", self.label.as_str())
            .field("outcome", self.outcome.to_wire())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "job_result";
        Ok(JobResult {
            index: value.field_usize(T, "index")?,
            scenario: value.field_usize(T, "scenario")?,
            scenario_name: value.field_str(T, "scenario_name")?.to_owned(),
            label: value.field_str(T, "label")?.to_owned(),
            outcome: JobOutcome::from_wire(value.field(T, "outcome")?)?,
        })
    }
}

impl Wire for ServiceStats {
    const WIRE_TYPE: &'static str = "service_stats";

    fn to_wire(&self) -> JsonValue {
        obj()
            .field("workers", self.workers)
            .field("store_name", self.store_name.as_str())
            .field("shard_count", self.shard_count)
            .field("backend_name", self.backend_name.as_str())
            .field("operator_cache_enabled", self.operator_cache_enabled)
            .field("operator_cache", self.operator_cache.to_wire())
            .field("scenario_count", self.scenario_count)
            .field("job_count", self.job_count)
            .field("completed", self.completed)
            .field("failed", self.failed)
            .field("panicked", self.panicked)
            .field("deadline_exceeded", self.deadline_exceeded)
            .field("shed", self.shed)
            .field("rejected", self.rejected)
            .field("retried_attempts", self.retried_attempts)
            .field("injected_faults", self.injected_faults)
            .field("worker_crashes", self.worker_crashes)
            .field("latency", self.latency.to_wire())
            .field("wall_seconds", self.wall_seconds)
            .field("jobs_per_second", self.jobs_per_second)
            .field("cached_validations", self.cached_validations)
            .field("warm_cache_hits", self.warm_cache_hits)
            .field("prewarmed_sessions", self.prewarmed_sessions)
            .field("store", self.store.to_wire())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "service_stats";
        Ok(ServiceStats {
            workers: value.field_usize(T, "workers")?,
            store_name: value.field_str(T, "store_name")?.to_owned(),
            shard_count: value.field_usize(T, "shard_count")?,
            backend_name: value.field_str(T, "backend_name")?.to_owned(),
            operator_cache_enabled: value.field_bool(T, "operator_cache_enabled")?,
            operator_cache: OperatorCacheStats::from_wire(value.field(T, "operator_cache")?)?,
            scenario_count: value.field_usize(T, "scenario_count")?,
            job_count: value.field_usize(T, "job_count")?,
            completed: value.field_usize(T, "completed")?,
            failed: value.field_usize(T, "failed")?,
            panicked: value.field_usize(T, "panicked")?,
            deadline_exceeded: value.field_usize(T, "deadline_exceeded")?,
            shed: value.field_usize(T, "shed")?,
            rejected: value.field_usize(T, "rejected")?,
            retried_attempts: value.field_usize(T, "retried_attempts")?,
            injected_faults: value.field_usize(T, "injected_faults")?,
            worker_crashes: value.field_usize(T, "worker_crashes")?,
            latency: LatencyStats::from_wire(value.field(T, "latency")?)?,
            wall_seconds: value.field_f64(T, "wall_seconds")?,
            jobs_per_second: value.field_f64(T, "jobs_per_second")?,
            cached_validations: value.field_usize(T, "cached_validations")?,
            warm_cache_hits: value.field_usize(T, "warm_cache_hits")?,
            prewarmed_sessions: value.field_usize(T, "prewarmed_sessions")?,
            store: StoreStats::from_wire(value.field(T, "store")?)?,
        })
    }
}

impl Wire for ServiceReport {
    const WIRE_TYPE: &'static str = "service_report";

    fn to_wire(&self) -> JsonValue {
        let jobs: Vec<JsonValue> = self.jobs().iter().map(Wire::to_wire).collect();
        obj()
            .field("jobs", jobs)
            .field("stats", self.stats().to_wire())
            .build()
    }

    fn from_wire(value: &JsonValue) -> Result<Self> {
        const T: &str = "service_report";
        let jobs = value
            .field_array(T, "jobs")?
            .iter()
            .map(JobResult::from_wire)
            .collect::<Result<Vec<_>>>()?;
        let stats = ServiceStats::from_wire(value.field(T, "stats")?)?;
        Ok(ServiceReport::new(jobs, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            scenarios: 2,
            seed: 77,
            raise_limit_margin: Some(7.5),
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn scenario_spec_roundtrips_including_optional_margin() {
        for spec in [
            spec(),
            ScenarioSpec {
                raise_limit_margin: None,
                ..spec()
            },
        ] {
            let json = spec.to_json().unwrap();
            assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
            let binary = spec.to_binary().unwrap();
            assert_eq!(ScenarioSpec::from_binary(&binary).unwrap(), spec);
        }
    }

    #[test]
    fn online_spec_fields_roundtrip_and_are_omitted_when_inactive() {
        // Offline specs serialise without the online keys at all, so
        // documents written before the online fields existed decode equal.
        let offline = spec().to_json().unwrap();
        assert!(!offline.contains("trace_families"));
        assert!(!offline.contains("warm_start_range"));

        let online = ScenarioSpec {
            trace_families: vec![TraceFamily::Periodic, TraceFamily::IdleGap],
            warm_start_range: Some((45.0, 65.0)),
            ..spec()
        };
        let json = online.to_json().unwrap();
        assert!(json.contains("trace_families"));
        assert!(json.contains("periodic") && json.contains("idle_gap"));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), online);
        let binary = online.to_binary().unwrap();
        assert_eq!(ScenarioSpec::from_binary(&binary).unwrap(), online);

        // Unknown family names are typed errors.
        assert!(matches!(
            TraceFamily::from_wire(&JsonValue::from("sawtooth")),
            Err(WireError::UnknownVariant {
                type_name: "trace_family",
                ..
            })
        ));
    }

    #[test]
    fn online_job_specs_roundtrip_and_validate_on_decode() {
        let corpus = ScenarioSpec {
            scenarios: 1,
            trace_families: vec![TraceFamily::Ramp],
            warm_start_range: Some((50.0, 60.0)),
            ..spec()
        }
        .build()
        .unwrap();
        let job = corpus.jobs()[0].clone();
        assert!(job.is_online());
        let json = job.to_json().unwrap();
        assert_eq!(JobSpec::from_json(&json).unwrap(), job);
        let binary = job.to_binary().unwrap();
        assert_eq!(JobSpec::from_binary(&binary).unwrap(), job);

        // An offline job's wire form has no online keys, and documents
        // without them (pre-online writers) decode to offline jobs.
        let offline = JobSpec {
            trace: None,
            warm_start: None,
            ..job.clone()
        };
        let offline_json = offline.to_json().unwrap();
        assert!(!offline_json.contains("\"trace\""));
        assert!(!offline_json.contains("\"warm_start\""));
        assert_eq!(JobSpec::from_json(&offline_json).unwrap(), offline);

        // A malformed embedded trace fails profile validation on decode.
        let broken = offline_json.replacen(
            "\"label\"",
            "\"trace\": {\"segments\": [{\"scale\": 1.0, \"fraction\": 0.25}]}, \"label\"",
            1,
        );
        assert!(matches!(
            JobSpec::from_json(&broken),
            Err(WireError::Invalid {
                type_name: "trace_profile",
                ..
            })
        ));
    }

    #[test]
    fn corpus_roundtrips_as_a_self_contained_value() {
        // Corpus has no PartialEq (the SUT holds derived caches), so the
        // identity check compares canonical wire renderings.
        let corpus = spec().build().unwrap();
        let json = corpus.to_json().unwrap();
        let decoded = Corpus::from_json(&json).unwrap();
        assert_eq!(decoded.to_json().unwrap(), json);
        assert_eq!(decoded.jobs(), corpus.jobs());
        assert_eq!(decoded.scenarios().len(), corpus.scenarios().len());
        assert_eq!(decoded.total_cores(), corpus.total_cores());
        let binary = corpus.to_binary().unwrap();
        assert_eq!(
            Corpus::from_binary(&binary).unwrap().to_json().unwrap(),
            json
        );
        // The empty corpus is a legal wire value (edge-case satellite).
        let empty = Corpus::from_parts(Vec::new(), Vec::new()).unwrap();
        let empty_json = empty.to_json().unwrap();
        let empty_decoded = Corpus::from_json(&empty_json).unwrap();
        assert!(empty_decoded.jobs().is_empty());
        assert!(empty_decoded.scenarios().is_empty());
    }

    #[test]
    fn corpus_with_dangling_job_reference_is_rejected() {
        let corpus = spec().build().unwrap();
        let mut jobs: Vec<JobSpec> = corpus.jobs().to_vec();
        jobs[0].scenario = corpus.scenarios().len();
        let broken = obj()
            .field(
                "scenarios",
                corpus
                    .scenarios()
                    .iter()
                    .map(Wire::to_wire)
                    .collect::<Vec<_>>(),
            )
            .field("jobs", jobs.iter().map(Wire::to_wire).collect::<Vec<_>>())
            .build();
        assert!(matches!(
            Corpus::from_wire(&broken),
            Err(WireError::Invalid {
                type_name: "corpus",
                ..
            })
        ));
    }

    #[test]
    fn service_config_roundtrips_across_every_kind() {
        for backend in [
            BackendKind::RcCompact,
            BackendKind::GridTransient { cells_per_core: 3 },
            BackendKind::GridAdi {
                cells_per_core: 4,
                time_step: 1e-3,
            },
        ] {
            for (store, clock, deadline) in [
                (StoreKind::Mutex, ClockKind::Wall, None),
                (
                    StoreKind::Sharded { shards: 8 },
                    ClockKind::Virtual,
                    Some(12.5),
                ),
            ] {
                let config = ServiceConfig {
                    workers: 3,
                    store,
                    backend,
                    faults: FaultPlan {
                        seed: 9,
                        error_rate: 0.25,
                        ..FaultPlan::none()
                    },
                    retry: RetryPolicy::retries(3),
                    clock,
                    deadline_effort: deadline,
                    ..ServiceConfig::default()
                };
                let json = config.to_json().unwrap();
                assert_eq!(ServiceConfig::from_json(&json).unwrap(), config);
                let binary = config.to_binary().unwrap();
                assert_eq!(ServiceConfig::from_binary(&binary).unwrap(), config);
            }
        }
    }

    #[test]
    fn invalid_configs_fail_domain_validation_on_decode() {
        let mut config = ServiceConfig::default();
        config.faults.panic_rate = 0.5;
        let mut wire = config.to_wire();
        if let JsonValue::Object(entries) = &mut wire {
            for (key, value) in entries.iter_mut() {
                if key == "faults" {
                    if let JsonValue::Object(fault_entries) = value {
                        for (fkey, fvalue) in fault_entries.iter_mut() {
                            if fkey == "panic_rate" {
                                *fvalue = JsonValue::from(1.5);
                            }
                        }
                    }
                }
            }
        }
        assert!(matches!(
            ServiceConfig::from_wire(&wire),
            Err(WireError::Invalid {
                type_name: "fault_plan",
                ..
            })
        ));
        assert!(matches!(
            BackendKind::from_wire(&obj().field("kind", "quantum").build()),
            Err(WireError::UnknownVariant {
                type_name: "backend_kind",
                ..
            })
        ));
    }

    #[test]
    fn every_job_outcome_variant_roundtrips() {
        let metrics = JobMetrics {
            schedule_length: 6.25,
            session_count: 4,
            simulation_effort: 9.0,
            characterization_effort: 12.0,
            discarded_sessions: 1,
            max_temperature: 151.125,
            effective_temperature_limit: 165.0,
            attempts: 2,
        };
        let outcomes = [
            JobOutcome::Completed(metrics),
            JobOutcome::Failed {
                error: "iteration budget exhausted".to_owned(),
                retryable: false,
                attempts: 1,
            },
            JobOutcome::Panicked {
                message: "boom".to_owned(),
                attempts: 3,
            },
            JobOutcome::DeadlineExceeded {
                spent_effort: 3.5,
                budget: 2.0,
                attempts: 1,
            },
            JobOutcome::Shed(ShedCause::Displaced),
            JobOutcome::Shed(ShedCause::Drained),
            JobOutcome::Rejected(Rejected::QueueFull { capacity: 4 }),
            JobOutcome::Rejected(Rejected::Draining),
            JobOutcome::Rejected(Rejected::UnknownScenario {
                scenario: 9,
                scenario_count: 2,
            }),
            JobOutcome::Rejected(Rejected::InvalidDeadline),
        ];
        for outcome in outcomes {
            let json = outcome.to_json().unwrap();
            assert_eq!(JobOutcome::from_json(&json).unwrap(), outcome);
            let binary = outcome.to_binary().unwrap();
            assert_eq!(JobOutcome::from_binary(&binary).unwrap(), outcome);
        }
    }

    #[test]
    fn a_real_report_roundtrips_bit_exactly() {
        use crate::{ServiceRunner, StoreKind};
        let corpus = spec().build().unwrap();
        let report = ServiceRunner::new(ServiceConfig {
            workers: 2,
            store: StoreKind::Sharded { shards: 4 },
            ..ServiceConfig::default()
        })
        .unwrap()
        .run(&corpus)
        .unwrap();
        let json = report.to_json().unwrap();
        let decoded = ServiceReport::from_json(&json).unwrap();
        assert_eq!(&decoded, &report);
        assert_eq!(decoded.render_jobs(), report.render_jobs());
        let binary = report.to_binary().unwrap();
        assert_eq!(ServiceReport::from_binary(&binary).unwrap(), report);
    }
}
