//! The streaming front-end: a long-lived submission API with first-class
//! failure handling, layered on the same execution machinery as
//! [`crate::ServiceRunner`].
//!
//! Where the batch runner consumes a whole [`Corpus`] at once, the
//! [`Frontend`] stays up and accepts [`Submission`]s one at a time, each
//! returning a [`JobHandle`] the caller can block on or poll. Between
//! submission and resolution sit the robustness layers this module owns:
//!
//! * a **bounded ingress queue** whose admission controller rejects
//!   ([`Rejected::QueueFull`]) or — with `shed_on_full` — displaces the
//!   lowest-priority queued job to make room for a strictly
//!   higher-priority one ([`ShedCause::Displaced`]);
//! * **priority classes** ([`Priority`]): the queue dispatches high before
//!   normal before low, FIFO within a class;
//! * **effort-budget deadlines** checked at the scheduler's cooperative
//!   checkpoints (see [`crate::ServiceConfig::deadline_effort`]), and the
//!   seeded **fault-injection and retry** machinery of
//!   [`crate::FaultPlan`] / [`crate::RetryPolicy`];
//! * **graceful drain** ([`Frontend::drain`]): stop admitting, let
//!   in-flight and queued work finish within a grace period, then shed
//!   what remains ([`ShedCause::Drained`]) and cancel in-flight runs at
//!   their next checkpoint. No submitted job is ever lost — every handle
//!   resolves to exactly one [`JobOutcome`].
//!
//! Everything is hand-rolled on `std::sync::mpsc`-era primitives — a
//! `Mutex` + two `Condvar`s — no async runtime. Determinism: job outcomes
//! are keyed by submission order (the sequence number doubles as the fault
//! plan's job index), so under [`crate::ClockKind::Virtual`] the resolved
//! outcomes are byte-identical at any worker count; only queue-occupancy
//! effects (rejections, displacement) and wall-clock stats depend on
//! timing.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use thermsched::{
    Engine, NestedParallelismGuard, OperatorCacheHandle, SchedulerConfig, SessionCacheHandle,
    StoreStats, TraceProfile,
};
use thermsched_obs::{Histogram, MetricsRegistry, Tracer};
use thermsched_thermal::ThermalBackend;

use crate::report::LatencyStats;
use crate::runner::{build_backends, execute_job, prewarm_same_shape, JobContext, LATENCY_BUCKETS};
use crate::{
    ClockKind, Corpus, JobOutcome, JobResult, JobSpec, Result, Scenario, ServiceConfig,
    ServiceError, ServiceStats,
};

/// Why a submission was refused admission (it never entered the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded ingress queue was full and the submission could not
    /// displace anything (equal-or-higher-priority work queued, or
    /// shedding disabled).
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The front-end is draining and no longer admits work.
    Draining,
    /// The submission named a scenario the front-end's corpus does not
    /// have.
    UnknownScenario {
        /// The out-of-range scenario index.
        scenario: usize,
        /// Scenarios the corpus actually has.
        scenario_count: usize,
    },
    /// The submission's per-job deadline budget was not positive and
    /// finite.
    InvalidDeadline,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "ingress queue full (capacity {capacity})")
            }
            Rejected::Draining => write!(f, "front-end is draining"),
            Rejected::UnknownScenario {
                scenario,
                scenario_count,
            } => write!(
                f,
                "unknown scenario {scenario} (corpus has {scenario_count})"
            ),
            Rejected::InvalidDeadline => {
                write!(f, "deadline budget must be positive and finite")
            }
        }
    }
}

/// Why an admitted job was dropped from the queue before running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// Displaced by a strictly higher-priority submission while the queue
    /// was full (`shed_on_full`).
    Displaced,
    /// Still queued when the drain grace period expired.
    Drained,
}

impl fmt::Display for ShedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedCause::Displaced => write!(f, "displaced by a higher-priority submission"),
            ShedCause::Drained => write!(f, "queue drained before the job ran"),
        }
    }
}

/// Scheduling priority of a submission. The queue dispatches `High` before
/// `Normal` before `Low`, FIFO within a class; under admission pressure the
/// lowest class is shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Dispatched first; never displaced by anything.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched last; first in line for displacement.
    Low,
}

impl Priority {
    /// BTreeMap ordering rank: lower ranks dispatch first.
    fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One unit of work for the front-end: a scenario index into the corpus,
/// an operating-point configuration, and the robustness knobs the batch
/// API has no room for (priority, per-job deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Index into the front-end corpus's scenarios.
    pub scenario: usize,
    /// Label carried into the [`JobResult`].
    pub label: String,
    /// Scheduler configuration of this job.
    pub config: SchedulerConfig,
    /// Priority class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Per-job effort budget in simulated seconds, overriding
    /// [`ServiceConfig::deadline_effort`] when set.
    pub deadline_effort: Option<f64>,
    /// Time-varying power shape the job's sessions follow, or `None` for a
    /// constant-power run.
    pub trace: Option<TraceProfile>,
    /// Per-core initial temperatures (°C) to re-plan from — the state a
    /// previous job left behind — or `None` to start from ambient.
    pub warm_start: Option<Vec<f64>>,
}

impl Submission {
    /// A normal-priority submission with no per-job deadline.
    pub fn new(scenario: usize, label: impl Into<String>, config: SchedulerConfig) -> Self {
        Submission {
            scenario,
            label: label.into(),
            config,
            priority: Priority::Normal,
            deadline_effort: None,
            trace: None,
            warm_start: None,
        }
    }

    /// Builds a submission from a corpus [`JobSpec`] — the bridge from
    /// batch-generated work to the streaming API. Online state (trace /
    /// warm start) carries over.
    pub fn from_job(job: &JobSpec) -> Self {
        Submission {
            trace: job.trace.clone(),
            warm_start: job.warm_start.clone(),
            ..Submission::new(job.scenario, job.label.clone(), job.config)
        }
    }

    /// Attaches a power-trace shape to the job.
    pub fn with_trace(mut self, trace: TraceProfile) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches warm-start temperatures (°C, one per core of the scenario),
    /// chaining this job's planning off a previous job's final state.
    pub fn with_warm_start(mut self, temperatures: Vec<f64>) -> Self {
        self.warm_start = Some(temperatures);
        self
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a per-job effort-budget deadline (simulated seconds).
    pub fn with_deadline_effort(mut self, budget: f64) -> Self {
        self.deadline_effort = Some(budget);
        self
    }
}

/// Configuration of a [`Frontend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// The execution configuration shared with the batch runner — workers,
    /// store, backend, fault plan, retries, clock, default deadline.
    ///
    /// Unlike [`crate::ServiceRunner`], `workers == 0` is allowed here: an
    /// admission-only front-end that queues but never executes, which is
    /// what deterministic admission-control tests run against (jobs then
    /// resolve as shed at drain).
    pub service: ServiceConfig,
    /// Capacity of the bounded ingress queue (admitted-but-not-dispatched
    /// jobs). Must be at least 1.
    pub queue_capacity: usize,
    /// When the queue is full, whether a strictly higher-priority
    /// submission displaces the lowest-priority queued job
    /// ([`ShedCause::Displaced`]) instead of being rejected. Off by
    /// default: rejection is the predictable behaviour.
    pub shed_on_full: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            service: ServiceConfig::default(),
            queue_capacity: 64,
            shed_on_full: false,
        }
    }
}

/// A handle to one submission; resolves to exactly one [`JobResult`].
///
/// Cheap to clone; all clones observe the same resolution. Blocking is a
/// hand-rolled `Mutex` + `Condvar` wait — no async runtime involved.
#[derive(Debug, Clone)]
pub struct JobHandle {
    inner: Arc<HandleInner>,
}

#[derive(Debug)]
struct HandleInner {
    slot: Mutex<Option<JobResult>>,
    ready: Condvar,
}

impl JobHandle {
    fn new() -> Self {
        JobHandle {
            inner: Arc::new(HandleInner {
                slot: Mutex::new(None),
                ready: Condvar::new(),
            }),
        }
    }

    fn resolve(&self, result: JobResult) {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        debug_assert!(slot.is_none(), "a handle resolves exactly once");
        *slot = Some(result);
        self.inner.ready.notify_all();
    }

    /// Blocks until the job resolves and returns its result.
    pub fn wait(&self) -> JobResult {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for the job to resolve.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// The result if the job has already resolved, without blocking.
    pub fn try_result(&self) -> Option<JobResult> {
        self.inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// What [`Frontend::drain`] observed and aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Aggregated run statistics of the front-end's whole lifetime,
    /// including the robustness counters and latency percentiles.
    pub stats: ServiceStats,
    /// Jobs still queued when the grace period expired, resolved as
    /// [`ShedCause::Drained`].
    pub shed_at_drain: usize,
    /// Jobs in flight when the grace period expired, cancelled at their
    /// next scheduling checkpoint (they resolve as
    /// [`JobOutcome::DeadlineExceeded`] with a zero budget).
    pub cancelled_in_flight: usize,
}

/// One admitted-but-not-yet-dispatched job.
struct Pending {
    seq: u64,
    spec: JobSpec,
    deadline_effort: Option<f64>,
    handle: JobHandle,
    enqueued_at: Instant,
}

/// Queue state behind the one front-end lock.
struct QueueState {
    /// Admitted jobs keyed by (priority rank, sequence): `pop_first` is the
    /// dispatch order, `pop_last` the shed victim.
    queue: BTreeMap<(u8, u64), Pending>,
    /// Whether new submissions are admitted (cleared by drain).
    accepting: bool,
    /// Jobs currently executing on workers.
    in_flight: usize,
    /// Submissions seen so far; doubles as the next sequence number, which
    /// is also the fault plan's job index — a function of submission order
    /// alone, never of worker interleaving.
    submitted: u64,
}

/// Everything workers and the handle share.
struct Shared {
    config: FrontendConfig,
    scenarios: Vec<Scenario>,
    backends: Vec<Arc<dyn ThermalBackend>>,
    caches: Vec<SessionCacheHandle>,
    operator_cache: OperatorCacheHandle,
    prewarmed_sessions: usize,
    queue: Mutex<QueueState>,
    /// Signalled on enqueue and on drain (wakes idle workers).
    work_ready: Condvar,
    /// Signalled whenever the front-end goes idle (empty queue, nothing in
    /// flight) — what drain's grace wait blocks on.
    idle: Condvar,
    /// Drain cancellation: in-flight jobs interrupt at their next
    /// scheduling checkpoint once set.
    cancel: AtomicBool,
    completed: AtomicUsize,
    failed: AtomicUsize,
    panicked: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    shed: AtomicUsize,
    rejected: AtomicUsize,
    retried_attempts: AtomicUsize,
    injected_faults: AtomicUsize,
    warm_cache_hits: AtomicUsize,
    cached_validations: AtomicUsize,
    latencies: Mutex<Vec<f64>>,
    /// Run-level tracer the workers derive job-scoped handles from
    /// (disabled unless the front-end was started via
    /// [`Frontend::start_traced`]).
    tracer: Tracer,
    /// Registry the lifetime stats are absorbed into at drain.
    registry: MetricsRegistry,
    /// Per-job latency histogram (same buckets as the batch runner).
    latency_histogram: Histogram,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a resolved outcome into the lifetime counters.
    fn tally(&self, outcome: &JobOutcome) {
        let counter = match outcome {
            JobOutcome::Completed(_) => &self.completed,
            JobOutcome::Failed { .. } => &self.failed,
            JobOutcome::Panicked { .. } => &self.panicked,
            JobOutcome::DeadlineExceeded { .. } => &self.deadline_exceeded,
            JobOutcome::Shed(_) => &self.shed,
            JobOutcome::Rejected(_) => &self.rejected,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The streaming front-end. See the [module docs](self) for the model.
///
/// # Example
///
/// ```
/// use thermsched_service::{
///     Frontend, FrontendConfig, ScenarioSpec, ServiceConfig, Submission,
/// };
/// use std::time::Duration;
///
/// # fn main() -> Result<(), thermsched_service::ServiceError> {
/// let corpus = ScenarioSpec {
///     scenarios: 2,
///     ..ScenarioSpec::default()
/// }
/// .build()?;
/// let frontend = Frontend::start(
///     FrontendConfig {
///         service: ServiceConfig {
///             workers: 2,
///             ..ServiceConfig::default()
///         },
///         ..FrontendConfig::default()
///     },
///     corpus.clone(),
/// )?;
/// let handles: Vec<_> = corpus
///     .jobs()
///     .iter()
///     .map(|job| frontend.submit(Submission::from_job(job)))
///     .collect();
/// for handle in &handles {
///     let result = handle.wait();
///     assert!(result.outcome.metrics().is_some());
/// }
/// let report = frontend.drain(Duration::from_secs(5));
/// assert_eq!(report.stats.completed, corpus.jobs().len());
/// assert_eq!(report.shed_at_drain, 0);
/// # Ok(())
/// # }
/// ```
pub struct Frontend {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    started: Instant,
    drained: bool,
}

impl Frontend {
    /// Starts a front-end over `corpus`: builds one backend per scenario
    /// (through the operator cache when enabled), prewarms the session
    /// stores like the batch runner, and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] for an invalid service configuration
    /// or a zero queue capacity; [`ServiceError::Schedule`] if a scenario's
    /// backend cannot be constructed.
    pub fn start(config: FrontendConfig, corpus: Corpus) -> Result<Frontend> {
        Self::start_traced(config, corpus, &Tracer::disabled(), &MetricsRegistry::new())
    }

    /// [`Self::start`] with observability attached: every job's span tree
    /// is recorded into `tracer` (the same per-job structure the batch
    /// runner's [`crate::ServiceRunner::run_traced`] produces, since both
    /// funnel through the shared `execute_job`), and the lifetime stats are
    /// absorbed into `registry` at drain alongside the per-job latency
    /// histogram.
    ///
    /// # Errors
    ///
    /// As [`Self::start`].
    pub fn start_traced(
        config: FrontendConfig,
        corpus: Corpus,
        tracer: &Tracer,
        registry: &MetricsRegistry,
    ) -> Result<Frontend> {
        config.service.validate()?;
        if config.queue_capacity == 0 {
            return Err(ServiceError::InvalidSpec {
                field: "queue_capacity",
                problem: "must be at least 1",
            });
        }
        let operator_cache = OperatorCacheHandle::new();
        let backends = {
            let mut span = tracer.span("backend.build");
            span.attr("scenarios", corpus.scenarios().len());
            span.attr("backend", config.service.backend.label());
            build_backends(&config.service, &corpus, &operator_cache)?
        };
        let caches: Vec<SessionCacheHandle> = corpus
            .scenarios()
            .iter()
            .map(|_| config.service.store.handle())
            .collect();
        let prewarmed_sessions = if config.service.batch_same_shape {
            let mut span = tracer.span("prewarm");
            let prewarmed = prewarm_same_shape(&config.service, &corpus, &backends, &caches);
            span.attr("sessions", prewarmed);
            prewarmed
        } else {
            0
        };
        let shared = Arc::new(Shared {
            config,
            scenarios: corpus.scenarios().to_vec(),
            backends,
            caches,
            operator_cache,
            prewarmed_sessions,
            queue: Mutex::new(QueueState {
                queue: BTreeMap::new(),
                accepting: true,
                in_flight: 0,
                submitted: 0,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            cancel: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            deadline_exceeded: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            retried_attempts: AtomicUsize::new(0),
            injected_faults: AtomicUsize::new(0),
            warm_cache_hits: AtomicUsize::new(0),
            cached_validations: AtomicUsize::new(0),
            latencies: Mutex::new(Vec::new()),
            tracer: tracer.clone(),
            registry: registry.clone(),
            latency_histogram: registry.histogram("job.latency_seconds", LATENCY_BUCKETS),
        });
        let workers = (0..shared.config.service.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Frontend {
            shared,
            workers,
            started: Instant::now(),
            drained: false,
        })
    }

    /// Submits one job. Always returns a handle — an inadmissible
    /// submission resolves it immediately with [`JobOutcome::Rejected`],
    /// so callers have exactly one code path.
    pub fn submit(&self, submission: Submission) -> JobHandle {
        let handle = JobHandle::new();
        let mut state = self.shared.lock_queue();
        let seq = state.submitted;
        state.submitted += 1;

        let rejection = if !state.accepting {
            Some(Rejected::Draining)
        } else if submission.scenario >= self.shared.scenarios.len() {
            Some(Rejected::UnknownScenario {
                scenario: submission.scenario,
                scenario_count: self.shared.scenarios.len(),
            })
        } else if submission
            .deadline_effort
            .is_some_and(|b| !(b > 0.0 && b.is_finite()))
        {
            Some(Rejected::InvalidDeadline)
        } else {
            None
        };
        if let Some(rejection) = rejection {
            drop(state);
            let result = self.unrun_result(
                seq,
                &submission.label,
                submission.scenario,
                JobOutcome::Rejected(rejection),
            );
            self.shared.tally(&result.outcome);
            handle.resolve(result);
            return handle;
        }

        if state.queue.len() >= self.shared.config.queue_capacity {
            let displaceable = self.shared.config.shed_on_full
                && state
                    .queue
                    .last_key_value()
                    .is_some_and(|(&(rank, _), _)| rank > submission.priority.rank());
            if displaceable {
                let (_, victim) = state
                    .queue
                    .pop_last()
                    .expect("non-empty: len >= capacity >= 1");
                let result = self.unrun_result(
                    victim.seq,
                    &victim.spec.label,
                    victim.spec.scenario,
                    JobOutcome::Shed(ShedCause::Displaced),
                );
                self.shared.tally(&result.outcome);
                victim.handle.resolve(result);
            } else {
                let rejection = Rejected::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                };
                drop(state);
                let result = self.unrun_result(
                    seq,
                    &submission.label,
                    submission.scenario,
                    JobOutcome::Rejected(rejection),
                );
                self.shared.tally(&result.outcome);
                handle.resolve(result);
                return handle;
            }
        }

        let pending = Pending {
            seq,
            spec: JobSpec {
                scenario: submission.scenario,
                label: submission.label,
                config: submission.config,
                trace: submission.trace,
                warm_start: submission.warm_start,
            },
            deadline_effort: submission.deadline_effort,
            handle: handle.clone(),
            enqueued_at: Instant::now(),
        };
        state
            .queue
            .insert((submission.priority.rank(), seq), pending);
        drop(state);
        self.shared.work_ready.notify_one();
        handle
    }

    /// Builds the result for a job that never ran (rejected or shed).
    fn unrun_result(
        &self,
        seq: u64,
        label: &str,
        scenario: usize,
        outcome: JobOutcome,
    ) -> JobResult {
        let scenario_name = self
            .shared
            .scenarios
            .get(scenario)
            .map_or("unknown", |s| s.name.as_str());
        JobResult {
            index: seq as usize,
            scenario,
            scenario_name: scenario_name.to_owned(),
            label: label.to_owned(),
            outcome,
        }
    }

    /// Gracefully drains the front-end:
    ///
    /// 1. stop admitting (subsequent submissions resolve
    ///    [`Rejected::Draining`]);
    /// 2. wait up to `grace` for the queue to empty and in-flight work to
    ///    finish;
    /// 3. shed whatever is still queued ([`ShedCause::Drained`]) and
    ///    cancel in-flight runs at their next scheduling checkpoint;
    /// 4. join the workers and aggregate the lifetime [`ServiceStats`].
    ///
    /// Every handle ever returned by [`Frontend::submit`] is resolved by
    /// the time this returns.
    pub fn drain(mut self, grace: Duration) -> DrainReport {
        self.drain_impl(grace)
    }

    fn drain_impl(&mut self, grace: Duration) -> DrainReport {
        self.drained = true;
        let deadline = Instant::now() + grace;
        let mut state = self.shared.lock_queue();
        state.accepting = false;
        self.shared.work_ready.notify_all();

        // Phase 1: grace period — wait for the front-end to go idle.
        while !(state.queue.is_empty() && state.in_flight == 0) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .shared
                .idle
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }

        // Phase 2: shed the leftovers, cancel what is running.
        let mut shed_at_drain = 0;
        while let Some((_, victim)) = state.queue.pop_first() {
            let result = self.unrun_result(
                victim.seq,
                &victim.spec.label,
                victim.spec.scenario,
                JobOutcome::Shed(ShedCause::Drained),
            );
            self.shared.tally(&result.outcome);
            victim.handle.resolve(result);
            shed_at_drain += 1;
        }
        let cancelled_in_flight = state.in_flight;
        drop(state);
        if cancelled_in_flight > 0 {
            self.shared.cancel.store(true, Ordering::Relaxed);
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }

        let stats = self.stats();
        self.shared.registry.absorb(&stats.metrics());
        DrainReport {
            stats,
            shed_at_drain,
            cancelled_in_flight,
        }
    }

    /// Lifetime statistics of the front-end so far.
    fn stats(&self) -> ServiceStats {
        let s = &self.shared;
        let mut store = StoreStats::default();
        for cache in &s.caches {
            let c = cache.stats();
            store.lookups += c.lookups;
            store.hits += c.hits;
            store.insertions += c.insertions;
            store.contended_locks += c.contended_locks;
        }
        let latency =
            LatencyStats::from_samples(&s.latencies.lock().unwrap_or_else(PoisonError::into_inner));
        let job_count = s.lock_queue().submitted as usize;
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let resolved = s.completed.load(Ordering::Relaxed)
            + s.failed.load(Ordering::Relaxed)
            + s.panicked.load(Ordering::Relaxed)
            + s.deadline_exceeded.load(Ordering::Relaxed);
        ServiceStats {
            workers: s.config.service.workers,
            store_name: s.config.service.store.name(),
            shard_count: s.config.service.store.shard_count(),
            backend_name: s.config.service.backend.label(),
            operator_cache_enabled: s.config.service.operator_cache,
            operator_cache: s.operator_cache.stats(),
            scenario_count: s.scenarios.len(),
            job_count,
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            retried_attempts: s.retried_attempts.load(Ordering::Relaxed),
            injected_faults: s.injected_faults.load(Ordering::Relaxed),
            worker_crashes: 0,
            latency,
            wall_seconds,
            jobs_per_second: resolved as f64 / wall_seconds.max(1e-9),
            cached_validations: s.cached_validations.load(Ordering::Relaxed),
            warm_cache_hits: s.warm_cache_hits.load(Ordering::Relaxed),
            prewarmed_sessions: s.prewarmed_sessions,
            store,
        }
    }
}

impl Drop for Frontend {
    /// A dropped front-end is drained with zero grace: queued work is shed,
    /// in-flight work cancelled at its next checkpoint — no handle is left
    /// unresolved and no worker thread leaks.
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.drain_impl(Duration::ZERO);
        }
    }
}

/// The worker loop: pop the highest-priority pending job, execute it with
/// the shared fault/retry/deadline machinery, resolve its handle, repeat —
/// until the queue is closed and empty.
fn worker_loop(shared: &Shared) {
    let _guard = NestedParallelismGuard::enter();
    let mut engines: HashMap<usize, Engine<'_>> = HashMap::new();
    loop {
        let pending = {
            let mut state = shared.lock_queue();
            loop {
                if let Some((_, pending)) = state.queue.pop_first() {
                    state.in_flight += 1;
                    break Some(pending);
                }
                if !state.accepting {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(pending) = pending else { return };

        let scenario = &shared.scenarios[pending.spec.scenario];
        let deadline_effort = pending
            .deadline_effort
            .or(shared.config.service.deadline_effort);
        // Time spent queued before this dispatch — interleaving-dependent,
        // recorded only as an observed span attribute.
        let queue_seconds = match shared.config.service.clock {
            ClockKind::Wall => pending.enqueued_at.elapsed().as_secs_f64(),
            ClockKind::Virtual => 0.0,
        };
        let execution = execute_job(
            &JobContext {
                job: &pending.spec,
                job_index: pending.seq,
                scenario,
                backend: shared.backends[pending.spec.scenario].as_ref(),
                cache: &shared.caches[pending.spec.scenario],
                faults: shared.config.service.faults,
                retry: shared.config.service.retry,
                clock: shared.config.service.clock,
                deadline_effort,
                cancel: Some(&shared.cancel),
                tracer: shared.tracer.clone(),
                queue_seconds,
            },
            &mut engines,
        );
        let latency = match shared.config.service.clock {
            ClockKind::Wall => pending.enqueued_at.elapsed().as_secs_f64(),
            ClockKind::Virtual => execution.virtual_seconds,
        };
        shared.latency_histogram.observe(latency);
        shared
            .warm_cache_hits
            .fetch_add(execution.accounting.warm_cache_hits, Ordering::Relaxed);
        shared
            .cached_validations
            .fetch_add(execution.accounting.cached_validations, Ordering::Relaxed);
        shared
            .injected_faults
            .fetch_add(execution.injected_faults, Ordering::Relaxed);
        shared.retried_attempts.fetch_add(
            execution.attempts.saturating_sub(1) as usize,
            Ordering::Relaxed,
        );
        shared
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(latency);
        shared.tally(&execution.outcome);
        let result = JobResult::new(
            pending.seq as usize,
            &pending.spec,
            &scenario.name,
            execution.outcome,
        );
        pending.handle.resolve(result);

        let mut state = shared.lock_queue();
        state.in_flight -= 1;
        if state.queue.is_empty() && state.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, RetryPolicy, ScenarioSpec};

    fn tiny_corpus(scenarios: usize) -> Corpus {
        ScenarioSpec {
            scenarios,
            seed: 11,
            stc_limits: vec![40.0],
            ..ScenarioSpec::default()
        }
        .build()
        .unwrap()
    }

    /// An admission-only front-end: full queue behaviour without racing
    /// against workers draining it.
    fn admission_only(queue_capacity: usize, shed_on_full: bool) -> Frontend {
        Frontend::start(
            FrontendConfig {
                service: ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
                queue_capacity,
                shed_on_full,
            },
            tiny_corpus(1),
        )
        .unwrap()
    }

    fn submission(corpus: &Corpus, job: usize) -> Submission {
        Submission::from_job(&corpus.jobs()[job])
    }

    #[test]
    fn streams_jobs_to_completion_and_drains_clean() {
        let corpus = tiny_corpus(2);
        let frontend = Frontend::start(
            FrontendConfig {
                service: ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
                ..FrontendConfig::default()
            },
            corpus.clone(),
        )
        .unwrap();
        let handles: Vec<JobHandle> = corpus
            .jobs()
            .iter()
            .map(|job| frontend.submit(Submission::from_job(job)))
            .collect();
        for (index, handle) in handles.iter().enumerate() {
            let result = handle.wait();
            assert_eq!(result.index, index);
            assert!(
                result.outcome.metrics().is_some(),
                "job {index}: {:?}",
                result.outcome
            );
            // A resolved handle keeps answering.
            assert_eq!(handle.try_result(), Some(result));
        }
        let report = frontend.drain(Duration::from_secs(10));
        assert_eq!(report.stats.completed, corpus.jobs().len());
        assert_eq!(report.stats.job_count, corpus.jobs().len());
        assert_eq!(report.shed_at_drain, 0);
        assert_eq!(report.cancelled_in_flight, 0);
        assert_eq!(report.stats.latency.samples, corpus.jobs().len());
        assert!(report.stats.latency.p99_seconds >= report.stats.latency.p50_seconds);
    }

    #[test]
    fn queue_full_rejects_and_sheds_by_priority() {
        let corpus = tiny_corpus(1);
        // Without shedding: capacity 2, third submission bounces.
        let frontend = admission_only(2, false);
        let a = frontend.submit(submission(&corpus, 0));
        let b = frontend.submit(submission(&corpus, 0));
        let c = frontend.submit(submission(&corpus, 0));
        assert_eq!(a.try_result(), None);
        assert_eq!(b.try_result(), None);
        assert_eq!(
            c.wait().outcome,
            JobOutcome::Rejected(Rejected::QueueFull { capacity: 2 })
        );
        let report = frontend.drain(Duration::ZERO);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.shed_at_drain, 2);
        // Drained queue resolves the survivors as shed — nothing is lost.
        assert_eq!(a.wait().outcome, JobOutcome::Shed(ShedCause::Drained));
        assert_eq!(b.wait().outcome, JobOutcome::Shed(ShedCause::Drained));

        // With shedding: a strictly higher-priority submission displaces
        // the lowest-priority queued job; an equal-priority one still
        // bounces (the would-be victim is Low, and Low is not strictly
        // below Low).
        let frontend = admission_only(2, true);
        let low = frontend.submit(submission(&corpus, 0).with_priority(Priority::Low));
        let normal = frontend.submit(submission(&corpus, 0));
        let equal = frontend.submit(submission(&corpus, 0).with_priority(Priority::Low));
        assert!(matches!(
            equal.wait().outcome,
            JobOutcome::Rejected(Rejected::QueueFull { .. })
        ));
        let high = frontend.submit(submission(&corpus, 0).with_priority(Priority::High));
        assert_eq!(low.wait().outcome, JobOutcome::Shed(ShedCause::Displaced));
        assert_eq!(normal.try_result(), None);
        assert_eq!(high.try_result(), None);
        let report = frontend.drain(Duration::ZERO);
        assert_eq!(report.stats.shed, 1 + report.shed_at_drain);
        assert_eq!(report.stats.rejected, 1);
    }

    #[test]
    fn invalid_submissions_resolve_rejected_without_queueing() {
        let config = thermsched::SchedulerConfig::new(165.0, 40.0).unwrap();
        let frontend = admission_only(4, false);
        let unknown = frontend.submit(Submission::new(9, "bad", config));
        assert_eq!(
            unknown.wait().outcome,
            JobOutcome::Rejected(Rejected::UnknownScenario {
                scenario: 9,
                scenario_count: 1,
            })
        );
        let bad_deadline =
            frontend.submit(Submission::new(0, "bad", config).with_deadline_effort(f64::NAN));
        assert_eq!(
            bad_deadline.wait().outcome,
            JobOutcome::Rejected(Rejected::InvalidDeadline)
        );
        let report = frontend.drain(Duration::ZERO);
        assert_eq!(report.stats.rejected, 2);
        assert_eq!(report.shed_at_drain, 0);

        // After drain, handles resolve Draining — submit never blocks and
        // never loses a job.
        let corpus = tiny_corpus(1);
        let frontend = Frontend::start(FrontendConfig::default(), corpus.clone()).unwrap();
        let pre = frontend.submit(submission(&corpus, 0));
        assert!(pre.wait_timeout(Duration::from_secs(30)).is_some());
        // (drain consumes the frontend; Draining rejection is exercised in
        // the drain-cancellation integration test where the frontend stays
        // borrowed.)
        frontend.drain(Duration::from_secs(5));
    }

    #[test]
    fn priorities_dispatch_high_before_low() {
        // Single worker, virtual clock: dispatch order is the queue order.
        // Queue everything against an admission-only frontend first, then
        // verify ordering through the BTreeMap key structure.
        let frontend = admission_only(8, false);
        let corpus = tiny_corpus(1);
        let _low = frontend.submit(submission(&corpus, 0).with_priority(Priority::Low));
        let _normal = frontend.submit(submission(&corpus, 0));
        let _high = frontend.submit(submission(&corpus, 0).with_priority(Priority::High));
        {
            let state = frontend.shared.lock_queue();
            let keys: Vec<(u8, u64)> = state.queue.keys().copied().collect();
            assert_eq!(keys, vec![(0, 2), (1, 1), (2, 0)], "high first, low last");
        }
        frontend.drain(Duration::ZERO);
    }

    #[test]
    fn invalid_frontend_configurations_are_rejected() {
        assert!(matches!(
            Frontend::start(
                FrontendConfig {
                    queue_capacity: 0,
                    ..FrontendConfig::default()
                },
                tiny_corpus(1),
            ),
            Err(ServiceError::InvalidSpec {
                field: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            Frontend::start(
                FrontendConfig {
                    service: ServiceConfig {
                        faults: FaultPlan {
                            error_rate: -1.0,
                            ..FaultPlan::none()
                        },
                        ..ServiceConfig::default()
                    },
                    ..FrontendConfig::default()
                },
                tiny_corpus(1),
            ),
            Err(ServiceError::InvalidSpec {
                field: "error_rate",
                ..
            })
        ));
    }

    #[test]
    fn dropping_an_undrained_frontend_resolves_every_handle() {
        let corpus = tiny_corpus(1);
        let frontend = admission_only(4, false);
        let queued = frontend.submit(submission(&corpus, 0));
        drop(frontend);
        assert_eq!(queued.wait().outcome, JobOutcome::Shed(ShedCause::Drained));
    }

    #[test]
    fn retries_rescue_injected_faults_in_the_stream() {
        let corpus = tiny_corpus(1);
        let frontend = Frontend::start(
            FrontendConfig {
                service: ServiceConfig {
                    workers: 1,
                    faults: FaultPlan {
                        seed: 3,
                        error_rate: 0.7,
                        ..FaultPlan::none()
                    },
                    retry: RetryPolicy::retries(6),
                    clock: ClockKind::Virtual,
                    ..ServiceConfig::default()
                },
                ..FrontendConfig::default()
            },
            corpus.clone(),
        )
        .unwrap();
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| frontend.submit(submission(&corpus, 0)))
            .collect();
        let outcomes: Vec<JobOutcome> = handles.iter().map(|h| h.wait().outcome).collect();
        let report = frontend.drain(Duration::from_secs(10));
        assert!(report.stats.injected_faults > 0);
        assert!(report.stats.retried_attempts > 0);
        assert!(
            outcomes.iter().any(|o| o.metrics().is_some()),
            "retries must rescue at least one job: {outcomes:?}"
        );
    }
}
