//! Deterministic fault injection, retry policy and the service clock.
//!
//! A robustness claim ("the batch survives panics, transient errors and
//! poisoned stores") is only testable if the faults themselves are
//! reproducible. Everything here is therefore *seeded and counter-driven*:
//! whether attempt `a` of job `j` panics, errors, stalls or poisons a store
//! shard is a pure function of `(plan seed, j, a)` — never of wall-clock
//! time, thread identity or interleaving. The same holds for the retry
//! policy's backoff (seeded jitter) and, under [`ClockKind::Virtual`], for
//! the latency those delays accrue. A fault-injection test is consequently
//! as deterministic as a fault-free one, which is what lets the service's
//! byte-identity contract extend to runs under fire.

use crate::{Result, ServiceError};

/// Kind of fault the harness injects into a job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt panics (through the worker's real `catch_unwind` path).
    Panic,
    /// The attempt fails with an injected [`ServiceError::Injected`] —
    /// classified retryable, standing in for transient infrastructure
    /// failures.
    Error,
    /// The attempt is delayed before running (slept under
    /// [`ClockKind::Wall`], accrued as virtual latency under
    /// [`ClockKind::Virtual`]).
    Delay,
    /// One shard lock of the job's session store is poisoned before the
    /// job's first attempt, exercising the stores' poison recovery.
    PoisonStore,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Delay => write!(f, "delay"),
            FaultKind::PoisonStore => write!(f, "poison-store"),
        }
    }
}

/// A deterministic, seeded fault plan threaded through
/// [`crate::ServiceConfig`].
///
/// Per (job, attempt) the plan draws one uniform variate from a counter
/// hash and partitions it: `[0, panic_rate)` panics,
/// `[panic_rate, panic_rate + error_rate)` errors, the next `delay_rate`
/// band delays. Store poisoning draws an *independent* per-job variate
/// (it composes with whatever the attempt does). All rates zero — the
/// default — means the plan is inert and the service behaves exactly as
/// before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream. Two runs with equal seeds inject exactly
    /// the same faults into the same (job, attempt) pairs.
    pub seed: u64,
    /// Probability an attempt panics, in `[0, 1]`.
    pub panic_rate: f64,
    /// Probability an attempt fails with a retryable injected error.
    pub error_rate: f64,
    /// Probability an attempt is delayed before running.
    pub delay_rate: f64,
    /// Length of an injected delay in seconds (virtual or wall, per
    /// [`ClockKind`]).
    pub delay_seconds: f64,
    /// Probability a *job* poisons one shard of its scenario's session
    /// store before its first attempt.
    pub poison_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            delay_seconds: 0.005,
            poison_rate: 0.0,
        }
    }

    /// Whether any fault can fire under this plan.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0
            || self.error_rate > 0.0
            || self.delay_rate > 0.0
            || self.poison_rate > 0.0
    }

    pub(crate) fn validate(&self) -> Result<()> {
        let rates = [
            ("panic_rate", self.panic_rate),
            ("error_rate", self.error_rate),
            ("delay_rate", self.delay_rate),
            ("poison_rate", self.poison_rate),
        ];
        for (field, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ServiceError::InvalidSpec {
                    field,
                    problem: "must be a probability in [0, 1]",
                });
            }
        }
        if !(self.delay_seconds >= 0.0 && self.delay_seconds.is_finite()) {
            return Err(ServiceError::InvalidSpec {
                field: "delay_seconds",
                problem: "must be non-negative and finite",
            });
        }
        Ok(())
    }

    /// The fault, if any, this plan injects into `attempt` (1-based) of job
    /// `job`. Deterministic: a pure function of `(seed, job, attempt)`.
    /// Never returns [`FaultKind::PoisonStore`] — poisoning is a per-job
    /// decision, see [`FaultPlan::poison_target`].
    pub fn fault_for(&self, job: u64, attempt: u32) -> Option<FaultKind> {
        if !self.is_active() {
            return None;
        }
        let r = unit(mix3(self.seed, job, u64::from(attempt)));
        if r < self.panic_rate {
            Some(FaultKind::Panic)
        } else if r < self.panic_rate + self.error_rate {
            Some(FaultKind::Error)
        } else if r < self.panic_rate + self.error_rate + self.delay_rate {
            Some(FaultKind::Delay)
        } else {
            None
        }
    }

    /// The session-store shard job `job` poisons before its first attempt,
    /// or `None`. Drawn independently of [`FaultPlan::fault_for`] (stream
    /// index 0 is reserved for poisoning; attempts are 1-based), so a job
    /// can poison its store *and* still run, which is exactly the recovery
    /// path worth proving. The returned shard index is unbounded — callers
    /// reduce it modulo their store's shard count (the stores wrap too).
    pub fn poison_target(&self, job: u64) -> Option<usize> {
        if self.poison_rate <= 0.0 {
            return None;
        }
        let r = unit(mix3(self.seed, job, 0));
        if r < self.poison_rate {
            // An independent draw picks the shard, so poisoning spreads
            // over the store instead of always hitting shard 0.
            Some(mix3(self.seed ^ 0x706f_6973_6f6e, job, 0) as usize)
        } else {
            None
        }
    }
}

/// Deterministic retry policy with seeded exponential backoff, threaded
/// through [`crate::ServiceConfig`].
///
/// Only outcomes classified retryable by [`ServiceError::is_retryable`]
/// (injected faults; real scheduler errors are deterministic and would just
/// reproduce) are retried, up to `max_attempts` total attempts per job.
/// Backoff before attempt `a` (2-based) is
/// `base · multiplier^(a-2) · (1 + jitter · u)` with `u` a seeded uniform
/// variate of `(job, a)` — fully reproducible, and instant under
/// [`ClockKind::Virtual`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub backoff_base_seconds: f64,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is stretched by up to this
    /// fraction, deterministically per (job, attempt).
    pub backoff_jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// No retries: every job gets exactly one attempt (the default).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_seconds: 0.01,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.1,
            seed: 0,
        }
    }

    /// Retries with the default backoff shape and `max_attempts` total
    /// attempts per job.
    pub fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::disabled()
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(ServiceError::InvalidSpec {
                field: "max_attempts",
                problem: "must be at least 1",
            });
        }
        if !(self.backoff_base_seconds >= 0.0 && self.backoff_base_seconds.is_finite()) {
            return Err(ServiceError::InvalidSpec {
                field: "backoff_base_seconds",
                problem: "must be non-negative and finite",
            });
        }
        if !(self.backoff_multiplier >= 1.0 && self.backoff_multiplier.is_finite()) {
            return Err(ServiceError::InvalidSpec {
                field: "backoff_multiplier",
                problem: "must be at least 1 and finite",
            });
        }
        if !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(ServiceError::InvalidSpec {
                field: "backoff_jitter",
                problem: "must be a fraction in [0, 1]",
            });
        }
        Ok(())
    }

    /// Deterministic backoff in seconds before `attempt` (2-based: the
    /// first retry is attempt 2) of job `job`.
    pub fn backoff_seconds(&self, job: u64, attempt: u32) -> f64 {
        let exponent = attempt.saturating_sub(2);
        let jitter = self.backoff_jitter
            * unit(mix3(
                self.seed ^ 0x0062_6163_6b6f_6666,
                job,
                u64::from(attempt),
            ));
        self.backoff_base_seconds * self.backoff_multiplier.powi(exponent as i32) * (1.0 + jitter)
    }
}

/// Which clock delays, backoffs and latency measurements run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// Real time: injected delays and retry backoffs sleep, and job latency
    /// is measured wall-clock. The production setting.
    #[default]
    Wall,
    /// Virtual time: delays and backoffs only accrue simulated latency
    /// seconds without sleeping, so fault-and-retry tests run instantly and
    /// reproducibly. Job latency under this clock is the accrued virtual
    /// time — a deterministic quantity.
    Virtual,
}

/// SplitMix64-style counter hash of (seed, job, stream index): the one
/// source of randomness behind fault decisions and backoff jitter. Same
/// structure as the corpus generator's seed derivation — statistically
/// unrelated outputs for neighbouring counters, bit-reproducible everywhere.
fn mix3(seed: u64, job: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(job.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(index.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform variate in `[0, 1)` (53 mantissa bits).
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for job in 0..64 {
            for attempt in 1..=4 {
                assert_eq!(plan.fault_for(job, attempt), None);
            }
            assert_eq!(plan.poison_target(job), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_dependent() {
        let plan = FaultPlan {
            seed: 7,
            panic_rate: 0.2,
            error_rate: 0.3,
            delay_rate: 0.2,
            poison_rate: 0.25,
            ..FaultPlan::none()
        };
        let mut differing_attempts = 0;
        let mut fired = 0;
        for job in 0..256 {
            let first = plan.fault_for(job, 1);
            assert_eq!(first, plan.fault_for(job, 1), "same inputs, same fault");
            assert_eq!(plan.poison_target(job), plan.poison_target(job));
            if first != plan.fault_for(job, 2) {
                differing_attempts += 1;
            }
            fired += usize::from(first.is_some());
        }
        // Rates sum to 0.7: roughly that fraction of first attempts fault,
        // and a retry must be able to escape a faulty first attempt.
        assert!((100..250).contains(&fired), "fired {fired}/256");
        assert!(differing_attempts > 50, "attempts must draw independently");
    }

    #[test]
    fn rates_partition_into_the_declared_kinds() {
        let plan = FaultPlan {
            seed: 11,
            panic_rate: 0.5,
            error_rate: 0.5,
            ..FaultPlan::none()
        };
        // With panic+error covering the whole unit interval, every attempt
        // faults with one of exactly those kinds.
        for job in 0..64 {
            let fault = plan.fault_for(job, 1).expect("rates cover [0,1)");
            assert!(matches!(fault, FaultKind::Panic | FaultKind::Error));
        }
        let poison_everything = FaultPlan {
            seed: 11,
            poison_rate: 1.0,
            ..FaultPlan::none()
        };
        let shards: std::collections::HashSet<usize> = (0..32)
            .map(|job| poison_everything.poison_target(job).expect("rate 1.0") % 8)
            .collect();
        assert!(shards.len() > 1, "poison targets must spread over shards");
    }

    #[test]
    fn plan_validation_rejects_bad_rates() {
        assert!(FaultPlan::none().validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            let plan = FaultPlan {
                panic_rate: bad,
                ..FaultPlan::none()
            };
            assert!(plan.validate().is_err(), "panic_rate {bad}");
        }
        let plan = FaultPlan {
            delay_seconds: f64::INFINITY,
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn backoff_grows_exponentially_with_seeded_jitter() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_base_seconds: 0.01,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.5,
            seed: 3,
        };
        assert!(policy.validate().is_ok());
        for job in 0..16 {
            let b2 = policy.backoff_seconds(job, 2);
            let b3 = policy.backoff_seconds(job, 3);
            let b4 = policy.backoff_seconds(job, 4);
            assert_eq!(b2, policy.backoff_seconds(job, 2), "deterministic");
            // Each step is within [base·2^k, base·2^k·1.5].
            assert!((0.01..0.015).contains(&b2), "b2 = {b2}");
            assert!((0.02..0.03).contains(&b3), "b3 = {b3}");
            assert!((0.04..0.06).contains(&b4), "b4 = {b4}");
        }
        // Jitter off: the exact exponential sequence.
        let exact = RetryPolicy {
            backoff_jitter: 0.0,
            ..policy
        };
        assert_eq!(exact.backoff_seconds(9, 2), 0.01);
        assert_eq!(exact.backoff_seconds(9, 3), 0.02);
        assert_eq!(exact.backoff_seconds(9, 4), 0.04);
    }

    #[test]
    fn retry_policy_validation_rejects_bad_shapes() {
        assert!(RetryPolicy::disabled().validate().is_ok());
        assert_eq!(RetryPolicy::retries(3).max_attempts, 3);
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::disabled()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff_multiplier: 0.5,
            ..RetryPolicy::disabled()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff_base_seconds: f64::NAN,
            ..RetryPolicy::disabled()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff_jitter: 2.0,
            ..RetryPolicy::disabled()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn clock_kind_defaults_to_wall() {
        assert_eq!(ClockKind::default(), ClockKind::Wall);
    }
}
