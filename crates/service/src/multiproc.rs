//! Multi-process sharding: a coordinator that spawns `thermsched worker`
//! child processes and streams framed jobs to them over stdin/stdout pipes.
//!
//! The per-job results of a batch are a pure function of the corpus (see
//! [`crate::report`] for the determinism boundary), so sharding jobs over
//! *processes* instead of threads changes nothing about them: the merged
//! report's job list is byte-identical at any process count and identical
//! to an in-process [`crate::ServiceRunner`] run. What the coordinator adds
//! is fault isolation at the process boundary — a worker that panics hard,
//! aborts or closes its pipe mid-job is detected (EOF or a malformed frame
//! on its stdout), counted in [`crate::ServiceStats::worker_crashes`], and
//! its unacknowledged jobs are reassigned to a surviving worker.
//!
//! # Protocol
//!
//! All frames use the [`thermsched_wire::frame`] framing (magic, version,
//! kind byte, length-prefixed payload); payloads are binary-encoded
//! [`JsonValue`]s. The conversation is strictly coordinator-driven:
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | `HELLO` (1) | → worker | `{protocol, config, corpus, trace?}` |
//! | `JOB` (2) | → worker | `{index, job}` (global corpus index) |
//! | `RESULT` (3) | ← worker | `{index, result, accounting...}` |
//! | `SHUTDOWN` (4) | → worker | `{}` |
//! | `FIN` (5) | ← worker | worker-local stats (store, caches, prewarm), plus `metrics`/`spans`/`dropped_spans` when tracing |
//!
//! The `trace` flag and the FIN trace fields are optional on both sides
//! (absent means "not tracing"), so mixed-version coordinator/worker pairs
//! keep interoperating and `PROTOCOL_VERSION` stays at 1.
//!
//! The job index crosses the boundary because fault injection and retry
//! jitter are keyed by the *global* corpus index — a worker that hashed its
//! local receive order instead would break the byte-identity contract.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Instant;

use thermsched::{NestedParallelismGuard, OperatorCacheHandle, OperatorCacheStats, StoreStats};
use thermsched_obs::{
    MetricsRegistry, MetricsSnapshot, ObsClock, SpanRecord, Tracer, TracerConfig,
};
use thermsched_wire::frame::{read_frame, write_frame, Frame};
use thermsched_wire::{decode_value, encode_value, obj, JsonValue, Wire, WireError};

use crate::report::LatencyStats;
use crate::runner::{
    build_backends, execute_job, outcome_kind, prewarm_same_shape, JobContext, LATENCY_BUCKETS,
};
use crate::{
    ClockKind, Corpus, JobOutcome, JobResult, JobSpec, Result, ServiceConfig, ServiceError,
    ServiceReport, ServiceStats,
};

/// Version of the coordinator↔worker protocol, checked in `HELLO`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Frame kinds of the coordinator↔worker protocol.
const FRAME_HELLO: u8 = 1;
const FRAME_JOB: u8 = 2;
const FRAME_RESULT: u8 = 3;
const FRAME_SHUTDOWN: u8 = 4;
const FRAME_FIN: u8 = 5;

fn multiproc_error(message: impl Into<String>) -> ServiceError {
    ServiceError::Multiproc {
        message: message.into(),
    }
}

/// Configuration of a [`MultiprocCoordinator`].
#[derive(Debug, Clone)]
pub struct MultiprocConfig {
    /// Worker processes to spawn. Jobs are sharded round-robin: job `i`
    /// starts on worker `i % processes`.
    pub processes: usize,
    /// Program to spawn as the worker (typically the `thermsched` binary).
    pub program: std::path::PathBuf,
    /// Arguments passed to the program before it enters worker mode
    /// (typically `["worker"]`; tests append `--exit-after N`).
    pub args: Vec<String>,
    /// The service configuration every worker runs jobs under. The
    /// `workers` field is ignored inside a worker process (each child
    /// executes its jobs sequentially — the processes are the parallelism).
    pub service: ServiceConfig,
}

/// Spawns worker processes and shards a corpus over them.
///
/// See the [module docs](self) for the protocol and the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct MultiprocCoordinator {
    config: MultiprocConfig,
}

/// What one worker's reader thread forwards to the coordinator loop.
enum Event {
    /// A job result, with its timing-side accounting.
    Result {
        worker: usize,
        index: usize,
        result: JobResult,
        warm_cache_hits: usize,
        cached_validations: usize,
        injected_faults: usize,
        retried_attempts: usize,
        latency_seconds: f64,
    },
    /// The worker's final stats after `SHUTDOWN`.
    Fin {
        worker: usize,
        store: StoreStats,
        operator_cache: OperatorCacheStats,
        prewarmed_sessions: usize,
        /// Worker-local metrics snapshot (empty from untraced workers).
        metrics: MetricsSnapshot,
        /// Worker-local span records (empty from untraced workers).
        spans: Vec<SpanRecord>,
        /// Spans the worker's bounded sink dropped.
        dropped_spans: u64,
    },
    /// The worker's pipe closed (or produced garbage) — it is dead.
    Dead { worker: usize },
}

/// What the coordinator hands a worker's writer thread.
enum WriterMsg {
    Job(usize),
    Shutdown,
}

impl MultiprocCoordinator {
    /// Creates a coordinator.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] for zero processes or an invalid
    /// service configuration.
    pub fn new(config: MultiprocConfig) -> Result<Self> {
        if config.processes == 0 {
            return Err(ServiceError::InvalidSpec {
                field: "processes",
                problem: "must be at least 1",
            });
        }
        config.service.validate()?;
        Ok(MultiprocCoordinator { config })
    }

    /// Runs every job of the corpus across the worker processes and merges
    /// the report.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Multiproc`] if a worker cannot be spawned or every
    /// worker dies with jobs still unresolved; [`ServiceError::Wire`] if
    /// the corpus cannot be encoded.
    pub fn run(&self, corpus: &Corpus) -> Result<ServiceReport> {
        self.run_traced(corpus, &Tracer::disabled(), &MetricsRegistry::new())
    }

    /// [`Self::run`] with observability attached: workers are told to trace
    /// (the `trace` HELLO flag), their FIN frames carry back a metrics
    /// snapshot plus their span records, and the coordinator absorbs both
    /// into `tracer`/`registry` — yielding one cross-process trace whose
    /// per-job structural slice is identical to an in-process run's.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_traced(
        &self,
        corpus: &Corpus,
        tracer: &Tracer,
        registry: &MetricsRegistry,
    ) -> Result<ServiceReport> {
        let jobs = corpus.jobs();
        let started = Instant::now();
        if jobs.is_empty() {
            return Ok(ServiceReport::new(
                Vec::new(),
                self.stats_template(corpus, &Merged::default(), 0, started),
            ));
        }
        let processes = self.config.processes.min(jobs.len());
        let config_wire = self.config.service.to_wire();
        let corpus_wire = corpus.to_wire();
        let hellos: Vec<Vec<u8>> = (0..processes)
            .map(|worker| {
                encode_value(
                    &obj()
                        .field("protocol", PROTOCOL_VERSION)
                        .field("worker", worker)
                        .field("config", config_wire.clone())
                        .field("corpus", corpus_wire.clone())
                        .field("trace", tracer.is_enabled())
                        .build(),
                )
            })
            .collect::<std::result::Result<_, WireError>>()?;

        let mut children: Vec<Child> = Vec::with_capacity(processes);
        let mut stdins = Vec::with_capacity(processes);
        let mut stdouts = Vec::with_capacity(processes);
        for worker in 0..processes {
            let mut child = Command::new(&self.config.program)
                .args(&self.config.args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| multiproc_error(format!("spawning worker {worker}: {e}")))?;
            stdins.push(child.stdin.take().expect("stdin was piped"));
            stdouts.push(child.stdout.take().expect("stdout was piped"));
            children.push(child);
        }

        let jobs_wire: Vec<Vec<u8>> = jobs
            .iter()
            .enumerate()
            .map(|(index, job)| {
                encode_value(
                    &obj()
                        .field("index", index)
                        .field("job", job.to_wire())
                        .build(),
                )
            })
            .collect::<std::result::Result<_, WireError>>()?;

        let (event_tx, event_rx) = mpsc::channel::<Event>();
        let outcome = std::thread::scope(|scope| {
            let mut writer_txs: Vec<Option<mpsc::Sender<WriterMsg>>> = Vec::new();
            for (worker, stdin) in stdins.into_iter().enumerate() {
                let (tx, rx) = mpsc::channel::<WriterMsg>();
                let hello = &hellos[worker];
                let jobs_wire = &jobs_wire;
                scope.spawn(move || worker_writer(stdin, rx, hello, jobs_wire));
                writer_txs.push(Some(tx));
                let tx = event_tx.clone();
                let stdout = stdouts.remove(0);
                scope.spawn(move || worker_reader(worker, stdout, &tx));
            }
            drop(event_tx);
            let result = self.coordinate(
                corpus,
                processes,
                &mut writer_txs,
                &event_rx,
                started,
                tracer,
                registry,
            );
            // Readers block on the children's stdout; make sure every child
            // is gone (errors included) before the scope tries to join them.
            if result.is_err() {
                for child in &mut children {
                    let _ = child.kill();
                }
            }
            drop(writer_txs);
            result
        });
        for mut child in children {
            let _ = child.wait();
        }
        outcome
    }

    /// The coordinator event loop: collect results, reassign the jobs of
    /// dead workers, then shut the survivors down and merge their stats.
    ///
    /// Worker FIN frames carry each worker's metrics snapshot and span
    /// records when tracing; the coordinator folds those straight into
    /// `tracer`/`registry` (it deliberately does *not* absorb its own
    /// [`ServiceStats`] view — the workers already reported those counts).
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        &self,
        corpus: &Corpus,
        processes: usize,
        writer_txs: &mut [Option<mpsc::Sender<WriterMsg>>],
        events: &mpsc::Receiver<Event>,
        started: Instant,
        tracer: &Tracer,
        registry: &MetricsRegistry,
    ) -> Result<ServiceReport> {
        let jobs = corpus.jobs();
        let mut assigned: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); processes];
        for index in 0..jobs.len() {
            let worker = index % processes;
            assigned[worker].insert(index);
            if let Some(tx) = &writer_txs[worker] {
                let _ = tx.send(WriterMsg::Job(index));
            }
        }

        let mut results: Vec<Option<JobResult>> = vec![None; jobs.len()];
        let mut resolved = 0usize;
        let mut dead = vec![false; processes];
        let mut finished = vec![false; processes];
        let mut merged = Merged::default();

        while resolved < jobs.len() {
            let event = events
                .recv()
                .map_err(|_| multiproc_error("every worker pipe closed with jobs unresolved"))?;
            match event {
                Event::Result {
                    worker,
                    index,
                    result,
                    warm_cache_hits,
                    cached_validations,
                    injected_faults,
                    retried_attempts,
                    latency_seconds,
                } => {
                    assigned[worker].remove(&index);
                    if results[index].is_none() {
                        resolved += 1;
                        results[index] = Some(result);
                        merged.warm_cache_hits += warm_cache_hits;
                        merged.cached_validations += cached_validations;
                        merged.injected_faults += injected_faults;
                        merged.retried_attempts += retried_attempts;
                        merged.latencies.push(latency_seconds);
                    }
                }
                Event::Fin {
                    worker,
                    store,
                    operator_cache,
                    prewarmed_sessions,
                    metrics,
                    spans,
                    dropped_spans,
                } => {
                    finished[worker] = true;
                    merged.absorb_fin(store, operator_cache, prewarmed_sessions);
                    registry.absorb(&metrics);
                    tracer.absorb(spans);
                    tracer.add_dropped(dropped_spans);
                }
                Event::Dead { worker } => {
                    if dead[worker] || finished[worker] {
                        continue;
                    }
                    dead[worker] = true;
                    merged.worker_crashes += 1;
                    writer_txs[worker] = None;
                    let orphans = std::mem::take(&mut assigned[worker]);
                    if orphans.is_empty() {
                        continue;
                    }
                    let Some(survivor) = (0..processes).find(|&w| !dead[w]) else {
                        return Err(multiproc_error(format!(
                            "all {processes} workers died with {} jobs unresolved",
                            jobs.len() - resolved
                        )));
                    };
                    for index in orphans {
                        assigned[survivor].insert(index);
                        if let Some(tx) = &writer_txs[survivor] {
                            let _ = tx.send(WriterMsg::Job(index));
                        }
                    }
                }
            }
        }

        // Every job is resolved; ask the survivors for their FIN stats.
        let mut awaiting = 0usize;
        for worker in 0..processes {
            if !dead[worker] && !finished[worker] {
                if let Some(tx) = &writer_txs[worker] {
                    let _ = tx.send(WriterMsg::Shutdown);
                    awaiting += 1;
                }
            }
        }
        while awaiting > 0 {
            match events.recv() {
                Ok(Event::Fin {
                    worker,
                    store,
                    operator_cache,
                    prewarmed_sessions,
                    metrics,
                    spans,
                    dropped_spans,
                }) => {
                    if !finished[worker] {
                        finished[worker] = true;
                        merged.absorb_fin(store, operator_cache, prewarmed_sessions);
                        registry.absorb(&metrics);
                        tracer.absorb(spans);
                        tracer.add_dropped(dropped_spans);
                        awaiting -= 1;
                    }
                }
                Ok(Event::Dead { worker }) => {
                    // Died between its last result and FIN: no orphans to
                    // reassign, but it is a crash all the same.
                    if !dead[worker] && !finished[worker] {
                        dead[worker] = true;
                        merged.worker_crashes += 1;
                        awaiting -= 1;
                    }
                }
                Ok(Event::Result { .. }) => {}
                Err(_) => break,
            }
        }

        let jobs_done: Vec<JobResult> = results
            .into_iter()
            .map(|slot| slot.expect("loop exits only once every job is resolved"))
            .collect();
        let stats = self.stats_template(corpus, &merged, jobs_done.len(), started);
        let stats = ServiceStats {
            completed: count(&jobs_done, |o| matches!(o, JobOutcome::Completed(_))),
            failed: count(&jobs_done, |o| matches!(o, JobOutcome::Failed { .. })),
            panicked: count(&jobs_done, |o| matches!(o, JobOutcome::Panicked { .. })),
            deadline_exceeded: count(&jobs_done, |o| {
                matches!(o, JobOutcome::DeadlineExceeded { .. })
            }),
            ..stats
        };
        Ok(ServiceReport::new(jobs_done, stats))
    }

    /// The merged stats skeleton shared by the empty-corpus early return and
    /// the real run.
    fn stats_template(
        &self,
        corpus: &Corpus,
        merged: &Merged,
        job_count: usize,
        started: Instant,
    ) -> ServiceStats {
        let wall_seconds = started.elapsed().as_secs_f64();
        ServiceStats {
            workers: self.config.processes,
            store_name: self.config.service.store.name(),
            shard_count: self.config.service.store.shard_count(),
            backend_name: self.config.service.backend.label(),
            operator_cache_enabled: self.config.service.operator_cache,
            operator_cache: merged.operator_cache,
            scenario_count: corpus.scenarios().len(),
            job_count,
            completed: 0,
            failed: 0,
            panicked: 0,
            deadline_exceeded: 0,
            shed: 0,
            rejected: 0,
            retried_attempts: merged.retried_attempts,
            injected_faults: merged.injected_faults,
            worker_crashes: merged.worker_crashes,
            latency: LatencyStats::from_samples(&merged.latencies),
            wall_seconds,
            jobs_per_second: job_count as f64 / wall_seconds.max(1e-9),
            cached_validations: merged.cached_validations,
            warm_cache_hits: merged.warm_cache_hits,
            prewarmed_sessions: merged.prewarmed_sessions,
            store: merged.store,
        }
    }
}

/// Counters merged over workers (all on the timing-dependent side of the
/// report).
#[derive(Default)]
struct Merged {
    warm_cache_hits: usize,
    cached_validations: usize,
    injected_faults: usize,
    retried_attempts: usize,
    worker_crashes: usize,
    prewarmed_sessions: usize,
    latencies: Vec<f64>,
    store: StoreStats,
    operator_cache: OperatorCacheStats,
}

impl Merged {
    fn absorb_fin(
        &mut self,
        store: StoreStats,
        operator_cache: OperatorCacheStats,
        prewarmed_sessions: usize,
    ) {
        self.store.lookups += store.lookups;
        self.store.hits += store.hits;
        self.store.insertions += store.insertions;
        self.store.contended_locks += store.contended_locks;
        self.operator_cache.hits += operator_cache.hits;
        self.operator_cache.misses += operator_cache.misses;
        self.prewarmed_sessions += prewarmed_sessions;
    }
}

fn count(jobs: &[JobResult], predicate: impl Fn(&JobOutcome) -> bool) -> usize {
    jobs.iter().filter(|j| predicate(&j.outcome)).count()
}

/// Writer thread of one worker: `HELLO`, then jobs as the coordinator
/// assigns them, then `SHUTDOWN`. Write errors end the thread quietly — the
/// worker's reader will observe the death and the coordinator reassigns.
fn worker_writer(
    stdin: impl Write,
    jobs: mpsc::Receiver<WriterMsg>,
    hello: &[u8],
    jobs_wire: &[Vec<u8>],
) {
    let mut stdin = BufWriter::new(stdin);
    if write_frame(&mut stdin, FRAME_HELLO, hello).is_err() {
        return;
    }
    while let Ok(msg) = jobs.recv() {
        let result = match msg {
            WriterMsg::Job(index) => write_frame(&mut stdin, FRAME_JOB, &jobs_wire[index]),
            WriterMsg::Shutdown => {
                let _ = write_frame(&mut stdin, FRAME_SHUTDOWN, &[]);
                return;
            }
        };
        if result.is_err() {
            return;
        }
    }
}

/// Reader thread of one worker: decodes `RESULT`/`FIN` frames into events.
/// EOF, a frame error or a malformed payload all mean the worker is dead.
fn worker_reader(worker: usize, stdout: impl Read, events: &mpsc::Sender<Event>) {
    let mut stdout = BufReader::new(stdout);
    loop {
        match read_frame(&mut stdout) {
            Ok(Some(frame)) => match decode_event(worker, &frame) {
                Some(event) => {
                    let is_fin = matches!(event, Event::Fin { .. });
                    if events.send(event).is_err() || is_fin {
                        return;
                    }
                }
                None => {
                    let _ = events.send(Event::Dead { worker });
                    return;
                }
            },
            Ok(None) | Err(_) => {
                let _ = events.send(Event::Dead { worker });
                return;
            }
        }
    }
}

/// Decodes one worker frame into an [`Event`], or `None` if it is
/// malformed (which the caller treats as a dead worker).
fn decode_event(worker: usize, frame: &Frame) -> Option<Event> {
    let payload = decode_value(&frame.payload).ok()?;
    match frame.kind {
        FRAME_RESULT => Some(Event::Result {
            worker,
            index: payload.field_usize("result_frame", "index").ok()?,
            result: JobResult::from_wire(payload.field("result_frame", "result").ok()?).ok()?,
            warm_cache_hits: payload
                .field_usize("result_frame", "warm_cache_hits")
                .ok()?,
            cached_validations: payload
                .field_usize("result_frame", "cached_validations")
                .ok()?,
            injected_faults: payload
                .field_usize("result_frame", "injected_faults")
                .ok()?,
            retried_attempts: payload
                .field_usize("result_frame", "retried_attempts")
                .ok()?,
            latency_seconds: payload.field_f64("result_frame", "latency_seconds").ok()?,
        }),
        FRAME_FIN => Some(Event::Fin {
            worker,
            store: StoreStats::from_wire(payload.field("fin_frame", "store").ok()?).ok()?,
            operator_cache: OperatorCacheStats::from_wire(
                payload.field("fin_frame", "operator_cache").ok()?,
            )
            .ok()?,
            prewarmed_sessions: payload
                .field_usize("fin_frame", "prewarmed_sessions")
                .ok()?,
            // The trace fields are optional (absent from untraced or older
            // workers), so decode failures degrade to "no trace data"
            // instead of killing the worker.
            metrics: payload
                .field("fin_frame", "metrics")
                .ok()
                .and_then(|v| MetricsSnapshot::from_wire(v).ok())
                .unwrap_or_default(),
            spans: payload
                .field_array("fin_frame", "spans")
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|item| SpanRecord::from_wire(item).ok())
                        .collect()
                })
                .unwrap_or_default(),
            dropped_spans: payload.field_u64("fin_frame", "dropped_spans").unwrap_or(0),
        }),
        _ => None,
    }
}

/// Crash-test hook for [`worker_serve`]: after resolving `after_jobs`
/// jobs the worker silently returns — closing its pipes mid-batch exactly
/// like a crashed process would — instead of answering the next `JOB`
/// frame. With `only_worker` set, the plan only arms on the process the
/// coordinator greeted with that worker index, so a fleet sharing one
/// command line can lose exactly one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Jobs to resolve before dying.
    pub after_jobs: usize,
    /// Restrict the plan to one worker index (`None` arms every process).
    pub only_worker: Option<usize>,
}

/// Serves one worker process: speaks the [module](self) protocol over
/// `input`/`output` until `SHUTDOWN` (clean exit) or EOF (coordinator
/// gone).
///
/// `crash` is the deliberate-failure hook used by the robustness tests;
/// see [`CrashPlan`].
///
/// # Errors
///
/// [`ServiceError::Wire`] on a malformed frame from the coordinator,
/// [`ServiceError::Multiproc`] on a protocol violation (bad version, a
/// frame before `HELLO`), and construction errors from building the
/// scenario backends.
pub fn worker_serve(input: impl Read, output: impl Write, crash: Option<CrashPlan>) -> Result<()> {
    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);

    let Some(hello) = read_frame(&mut input).map_err(ServiceError::Wire)? else {
        return Ok(()); // Coordinator vanished before HELLO; nothing to do.
    };
    if hello.kind != FRAME_HELLO {
        return Err(multiproc_error(format!(
            "expected HELLO as the first frame, got kind {}",
            hello.kind
        )));
    }
    let hello = decode_value(&hello.payload)?;
    let protocol = hello.field_u64("hello_frame", "protocol")?;
    if protocol != PROTOCOL_VERSION {
        return Err(multiproc_error(format!(
            "protocol version {protocol} (this worker speaks {PROTOCOL_VERSION})"
        )));
    }
    let me = hello.field_usize("hello_frame", "worker")?;
    let crash = crash.filter(|plan| plan.only_worker.is_none() || plan.only_worker == Some(me));
    let config = ServiceConfig::from_wire(hello.field("hello_frame", "config")?)?;
    let corpus = Corpus::from_wire(hello.field("hello_frame", "corpus")?)?;
    // The trace flag is optional in HELLO (older coordinators omit it);
    // absent means "not tracing" and the worker pays zero observability
    // cost. The worker's span clock follows the service clock so Virtual
    // runs produce deterministic structural traces across process counts.
    let trace = hello.field_bool("hello_frame", "trace").unwrap_or(false);
    let tracer = if trace {
        Tracer::new(TracerConfig {
            clock: if config.clock == ClockKind::Virtual {
                ObsClock::Virtual
            } else {
                ObsClock::Wall
            },
            ..TracerConfig::default()
        })
    } else {
        Tracer::disabled()
    };
    let registry = MetricsRegistry::new();

    // Same setup as the in-process runner: backends once per scenario
    // (shared through the operator cache when enabled), one store per
    // scenario, optional same-shape prewarming. Jobs then run sequentially
    // on this thread — the processes are the parallelism, so nested phase-1
    // fan-outs stay sequential too.
    let _guard = NestedParallelismGuard::enter();
    let operator_cache = OperatorCacheHandle::new();
    let backends = {
        let mut span = tracer.span("backend.build");
        span.attr("scenarios", corpus.scenarios().len());
        span.attr("backend", config.backend.label());
        build_backends(&config, &corpus, &operator_cache)?
    };
    let caches: Vec<_> = corpus
        .scenarios()
        .iter()
        .map(|_| config.store.handle())
        .collect();
    let prewarmed_sessions = if config.batch_same_shape {
        let mut span = tracer.span("prewarm");
        let prewarmed = prewarm_same_shape(&config, &corpus, &backends, &caches);
        span.attr("sessions", prewarmed);
        prewarmed
    } else {
        0
    };

    let mut engines = std::collections::HashMap::new();
    let mut resolved = 0usize;
    loop {
        let Some(frame) = read_frame(&mut input).map_err(ServiceError::Wire)? else {
            return Ok(()); // Coordinator closed the pipe; exit quietly.
        };
        match frame.kind {
            FRAME_JOB => {
                if crash.is_some_and(|plan| resolved >= plan.after_jobs) {
                    // Crash-test hook: swallow the job and die with it
                    // unacknowledged, like a worker that crashed mid-job.
                    return Ok(());
                }
                let payload = decode_value(&frame.payload)?;
                let index = payload.field_usize("job_frame", "index")?;
                let job = JobSpec::from_wire(payload.field("job_frame", "job")?)?;
                if job.scenario >= corpus.scenarios().len() {
                    return Err(multiproc_error(format!(
                        "job {index} references scenario {} of {}",
                        job.scenario,
                        corpus.scenarios().len()
                    )));
                }
                let scenario = &corpus.scenarios()[job.scenario];
                let job_started = Instant::now();
                let execution = execute_job(
                    &JobContext {
                        job: &job,
                        job_index: index as u64,
                        scenario,
                        backend: backends[job.scenario].as_ref(),
                        cache: &caches[job.scenario],
                        faults: config.faults,
                        retry: config.retry,
                        clock: config.clock,
                        deadline_effort: config.deadline_effort,
                        cancel: None,
                        tracer: tracer.clone(),
                        queue_seconds: 0.0,
                    },
                    &mut engines,
                );
                let latency_seconds = match config.clock {
                    ClockKind::Wall => job_started.elapsed().as_secs_f64(),
                    ClockKind::Virtual => execution.virtual_seconds,
                };
                if trace {
                    registry.counter("service.jobs").inc();
                    registry
                        .counter(&format!("service.{}", outcome_kind(&execution.outcome)))
                        .inc();
                    registry
                        .counter("service.warm_cache_hits")
                        .add(execution.accounting.warm_cache_hits as u64);
                    registry
                        .counter("service.cached_validations")
                        .add(execution.accounting.cached_validations as u64);
                    registry
                        .counter("service.injected_faults")
                        .add(execution.injected_faults as u64);
                    registry
                        .counter("service.retried_attempts")
                        .add(execution.attempts.saturating_sub(1) as u64);
                    registry
                        .histogram("job.latency_seconds", LATENCY_BUCKETS)
                        .observe(latency_seconds);
                }
                let result = JobResult::new(index, &job, &scenario.name, execution.outcome);
                let reply = encode_value(
                    &obj()
                        .field("index", index)
                        .field("result", result.to_wire())
                        .field("warm_cache_hits", execution.accounting.warm_cache_hits)
                        .field(
                            "cached_validations",
                            execution.accounting.cached_validations,
                        )
                        .field("injected_faults", execution.injected_faults)
                        .field(
                            "retried_attempts",
                            execution.attempts.saturating_sub(1) as usize,
                        )
                        .field("latency_seconds", latency_seconds)
                        .build(),
                )?;
                write_frame(&mut output, FRAME_RESULT, &reply).map_err(ServiceError::Wire)?;
                resolved += 1;
            }
            FRAME_SHUTDOWN => {
                let mut store = StoreStats::default();
                for cache in &caches {
                    let s = cache.stats();
                    store.lookups += s.lookups;
                    store.hits += s.hits;
                    store.insertions += s.insertions;
                    store.contended_locks += s.contended_locks;
                }
                let mut fin = obj()
                    .field("store", store.to_wire())
                    .field("operator_cache", operator_cache.stats().to_wire())
                    .field("prewarmed_sessions", prewarmed_sessions);
                if trace {
                    // Stamp the end-of-run counters (store, operator cache,
                    // prewarm) into the registry so the snapshot the
                    // coordinator absorbs mirrors the in-process
                    // `ServiceStats::metrics` names, then attach the
                    // worker's spans for the merged cross-process trace.
                    let cache_stats = operator_cache.stats();
                    registry
                        .counter("operator_cache.hits")
                        .add(cache_stats.hits);
                    registry
                        .counter("operator_cache.misses")
                        .add(cache_stats.misses);
                    registry
                        .counter("service.prewarmed_sessions")
                        .add(prewarmed_sessions as u64);
                    registry
                        .counter("store.contended_locks")
                        .add(store.contended_locks);
                    registry.counter("store.hits").add(store.hits);
                    registry.counter("store.insertions").add(store.insertions);
                    registry.counter("store.lookups").add(store.lookups);
                    let spans: Vec<JsonValue> = tracer.drain().iter().map(Wire::to_wire).collect();
                    fin = fin
                        .field("metrics", registry.snapshot().to_wire())
                        .field("spans", JsonValue::Array(spans))
                        .field("dropped_spans", tracer.dropped_spans());
                }
                let fin = encode_value(&fin.build())?;
                write_frame(&mut output, FRAME_FIN, &fin).map_err(ServiceError::Wire)?;
                return Ok(());
            }
            other => {
                return Err(multiproc_error(format!(
                    "unexpected frame kind {other} after HELLO"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;

    /// In-memory worker loopback: runs `worker_serve` against buffered
    /// pipes, returning the frames it produced. The process-boundary tests
    /// (spawning the real binary) live in the workspace root's integration
    /// suite; these cover the protocol state machine.
    fn serve(frames: &[(u8, Vec<u8>)], crash: Option<CrashPlan>) -> (Result<()>, Vec<Frame>) {
        let mut input = Vec::new();
        for (kind, payload) in frames {
            write_frame(&mut input, *kind, payload).unwrap();
        }
        let mut output = Vec::new();
        let result = worker_serve(input.as_slice(), &mut output, crash);
        let mut replies = Vec::new();
        let mut cursor = output.as_slice();
        while let Ok(Some(frame)) = read_frame(&mut cursor) {
            replies.push(frame);
        }
        (result, replies)
    }

    fn hello_payload(corpus: &Corpus) -> Vec<u8> {
        encode_value(
            &obj()
                .field("protocol", PROTOCOL_VERSION)
                .field("worker", 0usize)
                .field("config", ServiceConfig::default().to_wire())
                .field("corpus", corpus.to_wire())
                .build(),
        )
        .unwrap()
    }

    /// One scenario, two jobs (the default TL × STCL grid).
    fn tiny_corpus() -> Corpus {
        ScenarioSpec {
            scenarios: 1,
            seed: 3,
            ..ScenarioSpec::default()
        }
        .build()
        .unwrap()
    }

    #[test]
    fn worker_answers_jobs_and_fin_in_protocol_order() {
        let corpus = tiny_corpus();
        let job = encode_value(
            &obj()
                .field("index", 0usize)
                .field("job", corpus.jobs()[0].to_wire())
                .build(),
        )
        .unwrap();
        let (result, replies) = serve(
            &[
                (FRAME_HELLO, hello_payload(&corpus)),
                (FRAME_JOB, job),
                (FRAME_SHUTDOWN, Vec::new()),
            ],
            None,
        );
        result.unwrap();
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].kind, FRAME_RESULT);
        assert_eq!(replies[1].kind, FRAME_FIN);
        let payload = decode_value(&replies[0].payload).unwrap();
        assert_eq!(payload.field_usize("f", "index").unwrap(), 0);
        let job_result = JobResult::from_wire(payload.field("f", "result").unwrap()).unwrap();
        assert!(matches!(job_result.outcome, JobOutcome::Completed(_)));
    }

    #[test]
    fn worker_rejects_protocol_violations_with_typed_errors() {
        let corpus = tiny_corpus();
        // A frame before HELLO.
        let (result, _) = serve(&[(FRAME_JOB, Vec::new())], None);
        assert!(matches!(result, Err(ServiceError::Multiproc { .. })));
        // A bad protocol version.
        let bad_version = encode_value(
            &obj()
                .field("protocol", 99u64)
                .field("config", ServiceConfig::default().to_wire())
                .field("corpus", corpus.to_wire())
                .build(),
        )
        .unwrap();
        let (result, _) = serve(&[(FRAME_HELLO, bad_version)], None);
        assert!(matches!(result, Err(ServiceError::Multiproc { .. })));
        // A garbage payload is a wire error, not a panic.
        let (result, _) = serve(&[(FRAME_HELLO, vec![0xff, 0xff])], None);
        assert!(matches!(result, Err(ServiceError::Wire(_))));
        // EOF before HELLO is a clean no-op exit.
        let (result, replies) = serve(&[], None);
        result.unwrap();
        assert!(replies.is_empty());
    }

    #[test]
    fn crash_plan_swallows_the_next_job() {
        let corpus = tiny_corpus();
        let job = |index: usize| {
            encode_value(
                &obj()
                    .field("index", index)
                    .field("job", corpus.jobs()[index].to_wire())
                    .build(),
            )
            .unwrap()
        };
        let frames = [
            (FRAME_HELLO, hello_payload(&corpus)),
            (FRAME_JOB, job(0)),
            (FRAME_JOB, job(1)),
            (FRAME_SHUTDOWN, Vec::new()),
        ];
        let (result, replies) = serve(
            &frames,
            Some(CrashPlan {
                after_jobs: 1,
                only_worker: None,
            }),
        );
        result.unwrap();
        // One result, then the worker died mid-job: no second result, no FIN.
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].kind, FRAME_RESULT);

        // The same plan scoped to a different worker index never arms: this
        // worker was greeted as index 0, so it serves both jobs and FINs.
        let (result, replies) = serve(
            &frames,
            Some(CrashPlan {
                after_jobs: 1,
                only_worker: Some(1),
            }),
        );
        result.unwrap();
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[2].kind, FRAME_FIN);
    }

    fn hello_traced(corpus: &Corpus, config: &ServiceConfig) -> Vec<u8> {
        encode_value(
            &obj()
                .field("protocol", PROTOCOL_VERSION)
                .field("worker", 0usize)
                .field("config", config.to_wire())
                .field("corpus", corpus.to_wire())
                .field("trace", true)
                .build(),
        )
        .unwrap()
    }

    fn job_frame(corpus: &Corpus, index: usize) -> Vec<u8> {
        encode_value(
            &obj()
                .field("index", index)
                .field("job", corpus.jobs()[index].to_wire())
                .build(),
        )
        .unwrap()
    }

    /// Runs the given job indices through one loopback worker and returns
    /// the decoded FIN event.
    fn serve_traced(corpus: &Corpus, config: &ServiceConfig, indices: &[usize]) -> Event {
        let mut frames = vec![(FRAME_HELLO, hello_traced(corpus, config))];
        for &index in indices {
            frames.push((FRAME_JOB, job_frame(corpus, index)));
        }
        frames.push((FRAME_SHUTDOWN, Vec::new()));
        let (result, replies) = serve(&frames, None);
        result.unwrap();
        let fin = replies.last().expect("worker sent frames");
        assert_eq!(fin.kind, FRAME_FIN);
        decode_event(0, fin).expect("FIN decodes")
    }

    /// A HELLO without the `trace` field (an older coordinator) must
    /// produce a FIN that decodes with empty trace fields — the tolerant
    /// path that keeps `PROTOCOL_VERSION` at 1.
    #[test]
    fn untraced_fin_decodes_with_empty_trace_fields() {
        let corpus = tiny_corpus();
        let (result, replies) = serve(
            &[
                (FRAME_HELLO, hello_payload(&corpus)),
                (FRAME_JOB, job_frame(&corpus, 0)),
                (FRAME_SHUTDOWN, Vec::new()),
            ],
            None,
        );
        result.unwrap();
        let Some(Event::Fin {
            metrics,
            spans,
            dropped_spans,
            ..
        }) = decode_event(0, &replies[1])
        else {
            panic!("expected a FIN event");
        };
        assert!(metrics.is_empty());
        assert!(spans.is_empty());
        assert_eq!(dropped_spans, 0);
    }

    /// Satellite: one traced worker running the whole corpus reports FIN
    /// metrics equal to the in-process runner's `ServiceStats::metrics`
    /// view on the same corpus — the per-worker counters really are the
    /// same counts, just shipped over the pipe.
    #[test]
    fn traced_fin_metrics_match_in_process_totals() {
        let corpus = tiny_corpus();
        let config = ServiceConfig {
            workers: 1,
            clock: ClockKind::Virtual,
            ..ServiceConfig::default()
        };
        let indices: Vec<usize> = (0..corpus.jobs().len()).collect();
        let Event::Fin {
            store,
            operator_cache,
            metrics,
            spans,
            dropped_spans,
            ..
        } = serve_traced(&corpus, &config, &indices)
        else {
            panic!("expected a FIN event");
        };

        let report = crate::ServiceRunner::new(config)
            .unwrap()
            .run(&corpus)
            .unwrap();
        let local = report.stats().metrics();
        for name in [
            "service.jobs",
            "service.completed",
            "service.warm_cache_hits",
            "service.cached_validations",
            "service.prewarmed_sessions",
            "store.lookups",
            "store.hits",
            "store.insertions",
            "operator_cache.hits",
            "operator_cache.misses",
        ] {
            assert_eq!(
                metrics.counter(name),
                local.counter(name),
                "counter {name} diverged between FIN and in-process"
            );
        }
        // The FIN's structured stats agree with its own metrics view.
        assert_eq!(metrics.counter("store.lookups"), Some(store.lookups));
        assert_eq!(
            metrics.counter("operator_cache.misses"),
            Some(operator_cache.misses)
        );
        // Spans came along: one "job" root per corpus job, nothing dropped.
        assert_eq!(
            spans.iter().filter(|s| s.name == "job").count(),
            corpus.jobs().len()
        );
        assert_eq!(dropped_spans, 0);
    }

    /// Satellite: two workers splitting the corpus along scenario lines
    /// produce FIN store counters that *sum* to the in-process totals, and
    /// absorbing both snapshots into one registry performs that sum.
    #[test]
    fn two_worker_fin_counters_sum_to_in_process_totals() {
        let corpus = ScenarioSpec {
            scenarios: 2,
            seed: 3,
            ..ScenarioSpec::default()
        }
        .build()
        .unwrap();
        // Prewarm off: each worker would prewarm the full corpus, which
        // legitimately multiplies prewarm insertions by the process count.
        // Split by scenario so each scenario's store lives wholly in one
        // worker — cross-worker splits of one scenario lose the store hits
        // the other worker's published sessions would have provided.
        let config = ServiceConfig {
            workers: 1,
            batch_same_shape: false,
            clock: ClockKind::Virtual,
            ..ServiceConfig::default()
        };
        let by_scenario = |scenario: usize| -> Vec<usize> {
            corpus
                .jobs()
                .iter()
                .enumerate()
                .filter(|(_, job)| job.scenario == scenario)
                .map(|(index, _)| index)
                .collect()
        };
        let fins = [
            serve_traced(&corpus, &config, &by_scenario(0)),
            serve_traced(&corpus, &config, &by_scenario(1)),
        ];

        let registry = MetricsRegistry::new();
        let mut store_sum = StoreStats::default();
        let mut retried_sum = 0u64;
        for fin in &fins {
            let Event::Fin { store, metrics, .. } = fin else {
                panic!("expected FIN events");
            };
            registry.absorb(metrics);
            store_sum.lookups += store.lookups;
            store_sum.hits += store.hits;
            store_sum.insertions += store.insertions;
            store_sum.contended_locks += store.contended_locks;
            retried_sum += metrics.counter("service.retried_attempts").unwrap_or(0);
        }

        let report = crate::ServiceRunner::new(config)
            .unwrap()
            .run(&corpus)
            .unwrap();
        let stats = report.stats();
        assert_eq!(store_sum.lookups, stats.store.lookups);
        assert_eq!(store_sum.hits, stats.store.hits);
        assert_eq!(store_sum.insertions, stats.store.insertions);
        assert_eq!(retried_sum, stats.retried_attempts as u64);

        let merged = registry.snapshot();
        assert_eq!(
            merged.counter("service.jobs"),
            Some(corpus.jobs().len() as u64)
        );
        assert_eq!(merged.counter("store.lookups"), Some(stats.store.lookups));
        assert_eq!(
            merged.counter("service.completed"),
            Some(stats.completed as u64)
        );
    }

    #[test]
    fn coordinator_validates_its_configuration() {
        let config = MultiprocConfig {
            processes: 0,
            program: "worker".into(),
            args: Vec::new(),
            service: ServiceConfig::default(),
        };
        assert!(matches!(
            MultiprocCoordinator::new(config),
            Err(ServiceError::InvalidSpec {
                field: "processes",
                ..
            })
        ));
    }

    #[test]
    fn empty_corpus_short_circuits_without_spawning() {
        let coordinator = MultiprocCoordinator::new(MultiprocConfig {
            processes: 4,
            // Would fail to spawn if it were attempted.
            program: "/nonexistent/thermsched-worker".into(),
            args: Vec::new(),
            service: ServiceConfig::default(),
        })
        .unwrap();
        let empty = Corpus::from_parts(Vec::new(), Vec::new()).unwrap();
        let report = coordinator.run(&empty).unwrap();
        assert!(report.jobs().is_empty());
        assert_eq!(report.stats().job_count, 0);
        assert_eq!(report.stats().worker_crashes, 0);
    }

    #[test]
    fn spawn_failure_is_a_typed_error() {
        let coordinator = MultiprocCoordinator::new(MultiprocConfig {
            processes: 1,
            program: "/nonexistent/thermsched-worker".into(),
            args: Vec::new(),
            service: ServiceConfig::default(),
        })
        .unwrap();
        let corpus = tiny_corpus();
        assert!(matches!(
            coordinator.run(&corpus),
            Err(ServiceError::Multiproc { .. })
        ));
    }
}
