//! Caching of session thermal-validation results (the per-run map; the
//! shared, thread-safe stores live behind [`crate::SessionStore`] and
//! [`crate::SessionCacheHandle`]).

use std::collections::HashMap;

use thermsched_thermal::SessionThermalResult;

/// A cache of session thermal-validation results keyed by the sorted set of
/// active cores.
///
/// The scheduler's candidate generator frequently re-proposes a core set it
/// has already validated: discarded candidates recur while the adaptive
/// weights settle (with `weight_factor == 1.0` they recur *forever* — the
/// livelock guard exists for exactly this), and the single-core fallback
/// sessions of phase 2 repeat the phase-1 characterisation runs. Because the
/// simulator is deterministic and every session starts from an ambient die,
/// an identical core set always produces an identical
/// [`SessionThermalResult`], so re-simulation is pure waste. The cache makes
/// re-attempts free while leaving the paper's `simulation_effort` metric
/// untouched — effort is accrued per *attempt*, cached or not.
///
/// # Example
///
/// ```
/// use thermsched::SessionCache;
/// use thermsched_soc::library;
/// use thermsched_thermal::{RcThermalSimulator, ThermalSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sut = library::alpha21364_sut();
/// let sim = RcThermalSimulator::from_floorplan(sut.floorplan())?;
/// let session = thermsched::TestSession::new([2, 0], &sut);
/// let result = sim.simulate_session(&session.power_map(&sut)?, session.duration())?;
///
/// let mut cache = SessionCache::new();
/// cache.insert(SessionCache::key(session.cores()), result);
/// assert!(cache.get(&SessionCache::key([0, 2])).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    entries: HashMap<Vec<usize>, SessionThermalResult>,
}

impl SessionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical cache key for a candidate core set: the cores in ascending
    /// order.
    pub fn key<I: IntoIterator<Item = usize>>(cores: I) -> Vec<usize> {
        let mut key: Vec<usize> = cores.into_iter().collect();
        key.sort_unstable();
        key
    }

    /// Cache key for a candidate core set validated under an online context
    /// (power trace and/or warm start, identified by
    /// [`crate::OnlineContext::context_hash`]): the sorted cores followed by
    /// a `usize::MAX` sentinel and the context hash. Core ids are dense
    /// indices that can never reach `usize::MAX`, so an online key can never
    /// collide with a plain [`SessionCache::key`] — traced or warm-started
    /// results therefore never alias the constant-power entries the offline
    /// scheduler shares.
    pub fn online_key<I: IntoIterator<Item = usize>>(cores: I, context: u64) -> Vec<usize> {
        let mut key = Self::key(cores);
        key.push(usize::MAX);
        key.push(context as usize);
        key
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if a result is cached for this key.
    pub fn contains(&self, key: &[usize]) -> bool {
        self.entries.contains_key(key)
    }

    /// Borrows the cached result for a key, if present.
    pub fn get(&self, key: &[usize]) -> Option<&SessionThermalResult> {
        self.entries.get(key)
    }

    /// Stores a result, replacing any previous entry for the same key.
    pub fn insert(&mut self, key: Vec<usize>, result: SessionThermalResult) {
        self.entries.insert(key, result);
    }

    /// Removes and returns the cached result for a key. The scheduler uses
    /// this on the commit path: a committed core set can never be
    /// re-attempted, and taking ownership lets the result's buffers move
    /// into the session record without cloning.
    pub fn take(&mut self, key: &[usize]) -> Option<SessionThermalResult> {
        self.entries.remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_soc::library;
    use thermsched_thermal::{RcThermalSimulator, ThermalSimulator};

    fn result_for(cores: &[usize]) -> SessionThermalResult {
        let sut = library::alpha21364_sut();
        let sim = RcThermalSimulator::from_floorplan(sut.floorplan()).unwrap();
        let session = crate::TestSession::new(cores.iter().copied(), &sut);
        sim.simulate_session(&session.power_map(&sut).unwrap(), session.duration())
            .unwrap()
    }

    #[test]
    fn key_is_order_insensitive() {
        assert_eq!(SessionCache::key([3, 1, 2]), vec![1, 2, 3]);
        assert_eq!(SessionCache::key([1, 2, 3]), SessionCache::key([3, 2, 1]));
        assert_eq!(SessionCache::key([]), Vec::<usize>::new());
    }

    #[test]
    fn online_keys_never_alias_plain_keys() {
        let plain = SessionCache::key([2, 0]);
        let online = SessionCache::online_key([2, 0], 0xDEAD_BEEF);
        assert_eq!(online[..2], plain[..]);
        assert_eq!(online[2], usize::MAX);
        assert_eq!(online[3], 0xDEAD_BEEF_usize);
        assert_ne!(online, plain);
        // Distinct contexts produce distinct keys over the same cores.
        assert_ne!(online, SessionCache::online_key([2, 0], 1));
        assert_eq!(online, SessionCache::online_key([0, 2], 0xDEAD_BEEF));
    }

    #[test]
    fn cached_result_is_identical_to_a_fresh_simulation() {
        let fresh = result_for(&[0, 4, 7]);
        let mut cache = SessionCache::new();
        cache.insert(SessionCache::key([7, 0, 4]), fresh.clone());
        assert_eq!(cache.get(&SessionCache::key([0, 4, 7])), Some(&fresh));
        // A second simulation of the same set is deterministic, so the cache
        // entry matches what re-simulating would have produced.
        assert_eq!(cache.get(&[0, 4, 7][..]), Some(&result_for(&[0, 4, 7])));
    }

    #[test]
    fn take_removes_the_entry() {
        let mut cache = SessionCache::new();
        assert!(cache.is_empty());
        cache.insert(vec![1], result_for(&[1]));
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&[1]));
        let taken = cache.take(&[1]).unwrap();
        assert_eq!(taken, result_for(&[1]));
        assert!(cache.take(&[1]).is_none());
        assert!(cache.is_empty());
    }
}
