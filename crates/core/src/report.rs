//! Plain-text rendering of experiment results in the paper's layout.

use crate::experiments::{AblationPoint, Figure1Report, SweepPoint};

/// Renders the Figure 1 motivational comparison.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), thermsched::ScheduleError> {
/// let report = thermsched::experiments::figure1()?;
/// let text = thermsched::report::render_figure1(&report);
/// assert!(text.contains("TS1"));
/// # Ok(())
/// # }
/// ```
pub fn render_figure1(report: &Figure1Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 — equal-power sessions under a {:.0} W chip-level budget\n",
        report.power_limit
    ));
    out.push_str("session  cores              power[W]  max temp[C]\n");
    for s in &report.sessions {
        out.push_str(&format!(
            "{:<8} {:<18} {:>8.1}  {:>10.1}\n",
            s.label,
            s.cores.join(","),
            s.total_power,
            s.max_temperature
        ));
    }
    out.push_str(&format!(
        "temperature gap: {:.1} C; both admitted by the power constraint: {}\n",
        report.temperature_gap, report.both_satisfy_power_limit
    ));
    out
}

/// Renders sweep points in the layout of Table 1 (one row per `TL × STCL`
/// combination).
pub fn render_table1(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str("TL[C]  STCL  length[s]  sessions  effort[s]  discarded  max temp[C]\n");
    for p in points {
        out.push_str(&format!(
            "{:>5.0}  {:>4.0}  {:>9.1}  {:>8}  {:>9.1}  {:>9}  {:>11.2}\n",
            p.temperature_limit,
            p.stc_limit,
            p.schedule_length,
            p.session_count,
            p.simulation_effort,
            p.discarded_sessions,
            p.max_temperature
        ));
    }
    out
}

/// Renders the Figure 5 series: for each temperature limit, schedule length
/// and simulation effort as functions of `STCL`.
pub fn render_figure5(points: &[SweepPoint]) -> String {
    let mut tls: Vec<f64> = points.iter().map(|p| p.temperature_limit).collect();
    tls.sort_by(|a, b| a.partial_cmp(b).expect("finite temperature limits"));
    tls.dedup();
    let mut out = String::new();
    out.push_str("Figure 5 — schedule length and simulation effort vs STCL\n");
    for tl in tls {
        out.push_str(&format!("TL = {tl:.0} C\n"));
        out.push_str("  STCL  length[s]  effort[s]\n");
        for p in points.iter().filter(|p| p.temperature_limit == tl) {
            out.push_str(&format!(
                "  {:>4.0}  {:>9.1}  {:>9.1}\n",
                p.stc_limit, p.schedule_length, p.simulation_effort
            ));
        }
    }
    out
}

/// Renders an ablation sweep as a small table.
pub fn render_ablation(title: &str, points: &[AblationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(
        "variant                                    length[s]  effort[s]  discarded  max temp[C]\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<42} {:>9.1}  {:>9.1}  {:>9}  {:>11.2}\n",
            p.label,
            p.schedule_length,
            p.simulation_effort,
            p.discarded_sessions,
            p.max_temperature
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                temperature_limit: 145.0,
                stc_limit: 20.0,
                schedule_length: 7.0,
                session_count: 7,
                simulation_effort: 8.0,
                discarded_sessions: 1,
                max_temperature: 144.3,
                label: "default".into(),
                cached_validations: 0,
                warm_cache_hits: 0,
                baseline: None,
            },
            SweepPoint {
                temperature_limit: 155.0,
                stc_limit: 100.0,
                schedule_length: 3.0,
                session_count: 3,
                simulation_effort: 15.0,
                discarded_sessions: 12,
                max_temperature: 154.4,
                label: "default".into(),
                cached_validations: 4,
                warm_cache_hits: 2,
                baseline: None,
            },
        ]
    }

    #[test]
    fn table1_rendering_contains_every_row() {
        let text = render_table1(&sample_points());
        assert!(text.lines().count() == 3);
        assert!(text.contains("145"));
        assert!(text.contains("155"));
        assert!(text.contains("144.30"));
    }

    #[test]
    fn figure5_rendering_groups_by_temperature_limit() {
        let text = render_figure5(&sample_points());
        assert!(text.contains("TL = 145 C"));
        assert!(text.contains("TL = 155 C"));
    }

    #[test]
    fn ablation_rendering_includes_labels() {
        let points = vec![AblationPoint {
            label: "weight_factor=1.1".into(),
            schedule_length: 4.0,
            simulation_effort: 6.0,
            discarded_sessions: 2,
            max_temperature: 149.0,
        }];
        let text = render_ablation("A1 weight factor", &points);
        assert!(text.contains("A1 weight factor"));
        assert!(text.contains("weight_factor=1.1"));
    }
}
