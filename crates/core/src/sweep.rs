//! Declarative sweeps over the scheduling stack.
//!
//! Every evaluation the paper reports — Table 1, Figure 5, the A1–A3
//! ablations, the baseline comparison — is a grid of scheduling runs that
//! differ only in `TL`, `STCL` and a handful of configuration knobs. This
//! module turns that shape into data: a [`SweepSpec`] names the grid and the
//! variants, a [`SweepRunner`] executes it against one [`crate::Engine`]
//! (fanning the points out across the machine and sharing the engine's warm
//! session cache between them), and a [`SweepReport`] collects one
//! [`SweepPoint`] per run, including how many simulations the shared cache
//! saved.

use crate::experiments::{BaselineComparison, SweepPoint};
use crate::{
    CoreOrdering, Engine, PowerConstrainedScheduler, Result, ScheduleOutcome, SchedulerConfig,
    SessionModelOptions, TestSession,
};

/// One configuration variant of a sweep: a label plus optional overrides of
/// the engine's base configuration. A plain `TL × STCL` sweep uses a single
/// default variant; the ablations use one variant per knob value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepVariant {
    /// Human-readable label carried into [`SweepPoint::label`].
    pub label: String,
    /// Violation weight factor override (A1 ablation).
    pub weight_factor: Option<f64>,
    /// Candidate-core ordering override (A2 ablation).
    pub ordering: Option<CoreOrdering>,
    /// Guidance session-model options override (A3 ablation).
    pub session_model: Option<SessionModelOptions>,
}

impl Default for SweepVariant {
    fn default() -> Self {
        SweepVariant::new("default")
    }
}

impl SweepVariant {
    /// A variant that runs the engine's base configuration unchanged.
    pub fn new(label: impl Into<String>) -> Self {
        SweepVariant {
            label: label.into(),
            weight_factor: None,
            ordering: None,
            session_model: None,
        }
    }

    /// Overrides the violation weight factor.
    #[must_use]
    pub fn with_weight_factor(mut self, factor: f64) -> Self {
        self.weight_factor = Some(factor);
        self
    }

    /// Overrides the candidate-core ordering.
    #[must_use]
    pub fn with_ordering(mut self, ordering: CoreOrdering) -> Self {
        self.ordering = Some(ordering);
        self
    }

    /// Overrides the guidance session-model options.
    #[must_use]
    pub fn with_session_model(mut self, options: SessionModelOptions) -> Self {
        self.session_model = Some(options);
        self
    }

    fn apply(&self, mut config: SchedulerConfig) -> SchedulerConfig {
        if let Some(factor) = self.weight_factor {
            config.weight_factor = factor;
        }
        if let Some(ordering) = self.ordering {
            config.ordering = ordering;
        }
        if let Some(options) = self.session_model {
            config.session_model = options;
        }
        config
    }
}

/// A declarative sweep: the `TL × STCL` grid, the configuration variants to
/// run at every grid point, and whether to attach a matched-budget baseline
/// comparison to each point.
///
/// # Example
///
/// ```
/// use thermsched::{Engine, SweepSpec};
/// use thermsched_soc::library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sut = library::alpha21364_sut();
/// let engine = Engine::builder().sut(&sut).build()?;
/// let report = engine.sweep(&SweepSpec::grid(&[165.0], &[20.0, 100.0]))?;
/// assert_eq!(report.points().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Temperature limits (`TL`, °C); the slow axis of the grid.
    pub temperature_limits: Vec<f64>,
    /// Session thermal characteristic limits (`STCL`); the fast axis.
    pub stc_limits: Vec<f64>,
    /// Configuration variants run at every grid point. Empty means one
    /// default variant (the engine's base configuration).
    pub variants: Vec<SweepVariant>,
    /// Attach a [`BaselineComparison`] (power-constrained scheduler at the
    /// matched budget) to every point.
    pub compare_baseline: bool,
}

impl SweepSpec {
    /// A `TL × STCL` grid with the engine's base configuration; points come
    /// back in row-major `(TL, STCL)` order.
    pub fn grid(temperature_limits: &[f64], stc_limits: &[f64]) -> Self {
        SweepSpec {
            temperature_limits: temperature_limits.to_vec(),
            stc_limits: stc_limits.to_vec(),
            variants: Vec::new(),
            compare_baseline: false,
        }
    }

    /// A single operating point.
    pub fn point(temperature_limit: f64, stc_limit: f64) -> Self {
        Self::grid(&[temperature_limit], &[stc_limit])
    }

    /// The full Table 1 grid of the paper (`TL` 145–185 °C in 5 °C steps,
    /// `STCL` 20–100 in steps of 10).
    pub fn table1() -> Self {
        Self::grid(
            &crate::experiments::default_temperature_limits(),
            &crate::experiments::default_stc_limits(),
        )
    }

    /// The Figure 5 subset (`TL ∈ {145, 155, 165}` °C, `STCL` 20–100).
    pub fn figure5() -> Self {
        Self::grid(
            &crate::experiments::figure5_temperature_limits(),
            &crate::experiments::default_stc_limits(),
        )
    }

    /// The A1 ablation at one operating point: one variant per violation
    /// weight factor (the paper fixes 1.1).
    pub fn weight_ablation(temperature_limit: f64, stc_limit: f64, factors: &[f64]) -> Self {
        Self::point(temperature_limit, stc_limit).with_variants(
            factors
                .iter()
                .map(|&factor| {
                    SweepVariant::new(format!("weight_factor={factor}")).with_weight_factor(factor)
                })
                .collect(),
        )
    }

    /// The A2 ablation at one operating point: one variant per
    /// [`CoreOrdering`].
    pub fn ordering_ablation(temperature_limit: f64, stc_limit: f64) -> Self {
        Self::point(temperature_limit, stc_limit).with_variants(
            CoreOrdering::ALL
                .iter()
                .map(|&ordering| SweepVariant::new(format!("{ordering:?}")).with_ordering(ordering))
                .collect(),
        )
    }

    /// The A3 ablation at one operating point: the paper's session model
    /// plus each fidelity option toggled individually.
    pub fn model_ablation(temperature_limit: f64, stc_limit: f64) -> Self {
        Self::point(temperature_limit, stc_limit).with_variants(vec![
            SweepVariant::new("paper (lateral-only, drop active-active)")
                .with_session_model(SessionModelOptions::paper()),
            SweepVariant::new("keep active-active paths").with_session_model(SessionModelOptions {
                keep_active_active_paths: true,
                ..SessionModelOptions::paper()
            }),
            SweepVariant::new("include vertical path").with_session_model(SessionModelOptions {
                include_vertical_path: true,
                ..SessionModelOptions::paper()
            }),
        ])
    }

    /// Replaces the variant list.
    #[must_use]
    pub fn with_variants(mut self, variants: Vec<SweepVariant>) -> Self {
        self.variants = variants;
        self
    }

    /// Requests a matched-budget baseline comparison at every point.
    #[must_use]
    pub fn with_baseline(mut self) -> Self {
        self.compare_baseline = true;
        self
    }

    /// Number of scheduling runs the spec describes.
    pub fn point_count(&self) -> usize {
        self.temperature_limits.len() * self.stc_limits.len() * self.variants.len().max(1)
    }
}

/// The result of running a [`SweepSpec`]: one [`SweepPoint`] per scheduling
/// run, in deterministic variant-major, then row-major `(TL, STCL)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    points: Vec<SweepPoint>,
}

impl SweepReport {
    /// The sweep points, in spec order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Consumes the report into its points (what the deprecated free-function
    /// sweep drivers return).
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total simulations served from the engine's shared cache across the
    /// sweep (phase-1 characterisations and cross-point candidate
    /// validations).
    pub fn warm_cache_hits(&self) -> usize {
        self.points.iter().map(|p| p.warm_cache_hits).sum()
    }

    /// Total candidate validations served from any cache across the sweep.
    pub fn cached_validations(&self) -> usize {
        self.points.iter().map(|p| p.cached_validations).sum()
    }

    /// Hottest committed temperature over the whole sweep (°C);
    /// `f64::NEG_INFINITY` for an empty sweep.
    pub fn max_temperature(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.max_temperature)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Executes [`SweepSpec`]s against one [`Engine`].
///
/// Every grid point is an independent scheduling run, so the runner fans the
/// grid out across the machine with the same ordered parallel map the
/// phase-1 characterisation uses; the engine's shared session cache turns
/// the overlap between points (identical phase-1 runs, recurring candidate
/// sets) into lookups instead of simulations.
#[derive(Debug)]
pub struct SweepRunner<'e, 'a> {
    engine: &'e Engine<'a>,
}

impl<'e, 'a> SweepRunner<'e, 'a> {
    /// Creates a runner over an engine.
    pub fn new(engine: &'e Engine<'a>) -> Self {
        SweepRunner { engine }
    }

    /// Runs the spec and collects the report. Points are produced in
    /// variant-major, then row-major `(TL, STCL)` order regardless of which
    /// thread computed them.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures (invalid per-point configurations,
    /// core-level violations under the failing policy, exhausted iteration
    /// budgets, simulation errors).
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport> {
        let default_variant = [SweepVariant::default()];
        let variants: &[SweepVariant] = if spec.variants.is_empty() {
            &default_variant
        } else {
            &spec.variants
        };
        let combos: Vec<(usize, f64, f64)> = variants
            .iter()
            .enumerate()
            .flat_map(|(vi, _)| {
                spec.temperature_limits
                    .iter()
                    .flat_map(move |&tl| spec.stc_limits.iter().map(move |&stcl| (vi, tl, stcl)))
            })
            .collect();
        let engine = self.engine;
        let compare_baseline = spec.compare_baseline;
        let points = crate::parallel::parallel_map_ordered(
            &combos,
            |(vi, tl, stcl)| -> Result<SweepPoint> {
                let variant = &variants[vi];
                let mut config = engine.config();
                config.temperature_limit = tl;
                config.stc_limit = stcl;
                let config = variant.apply(config);
                config.validate()?;
                let outcome = engine.schedule_with(config)?;
                let baseline = if compare_baseline {
                    Some(baseline_comparison_for(engine, &outcome, tl)?)
                } else {
                    None
                };
                Ok(SweepPoint {
                    temperature_limit: tl,
                    stc_limit: stcl,
                    schedule_length: outcome.schedule_length(),
                    session_count: outcome.session_count(),
                    simulation_effort: outcome.simulation_effort,
                    discarded_sessions: outcome.discarded_sessions,
                    max_temperature: outcome.max_temperature,
                    label: variant.label.clone(),
                    cached_validations: outcome.cached_validations,
                    warm_cache_hits: outcome.warm_cache_hits,
                    baseline,
                })
            },
        );
        let points = points.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(SweepReport { points })
    }
}

/// The matched-budget baseline comparison for one already-computed
/// thermal-aware outcome: the power-constrained scheduler is given the
/// largest committed session power and its schedule is thermally evaluated
/// against the engine's backend.
fn baseline_comparison_for(
    engine: &Engine<'_>,
    outcome: &ScheduleOutcome,
    temperature_limit: f64,
) -> Result<BaselineComparison> {
    let power_budget = outcome
        .schedule
        .iter()
        .map(TestSession::total_power)
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let baseline = PowerConstrainedScheduler::new(power_budget)?.schedule(engine.sut())?;
    let evaluation = engine.evaluate(&baseline)?;
    Ok(BaselineComparison {
        thermal_aware_length: outcome.schedule_length(),
        thermal_aware_max_temperature: outcome.max_temperature,
        power_constrained_length: baseline.total_length(),
        power_constrained_max_temperature: evaluation.max_temperature(),
        power_budget,
        power_constrained_violations: evaluation.violating_sessions(temperature_limit).len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermsched_soc::library;

    fn engine(sut: &thermsched_soc::SystemUnderTest) -> Engine<'_> {
        Engine::builder().sut(sut).build().unwrap()
    }

    #[test]
    fn grid_sweep_points_come_back_in_row_major_order() {
        let sut = library::alpha21364_sut();
        let engine = engine(&sut);
        let report = engine
            .sweep(&SweepSpec::grid(&[150.0, 165.0], &[40.0, 80.0]))
            .unwrap();
        let order: Vec<(f64, f64)> = report
            .points()
            .iter()
            .map(|p| (p.temperature_limit, p.stc_limit))
            .collect();
        assert_eq!(
            order,
            vec![(150.0, 40.0), (150.0, 80.0), (165.0, 40.0), (165.0, 80.0)]
        );
        for p in report.points() {
            assert_eq!(p.label, "default");
            assert!(p.max_temperature < p.temperature_limit);
            assert!(p.baseline.is_none());
        }
        assert!(report.max_temperature() < 165.0);
        assert_eq!(report.len(), 4);
        assert!(!report.is_empty());
    }

    #[test]
    fn shared_cache_makes_cross_point_hits_visible() {
        let sut = library::alpha21364_sut();
        let engine = engine(&sut);
        // Two passes over the same grid: the second is fully warm.
        let spec = SweepSpec::grid(&[165.0], &[40.0, 80.0]);
        let cold = engine.sweep(&spec).unwrap();
        let warm = engine.sweep(&spec).unwrap();
        // Every point of the second pass serves its entire phase-1
        // characterisation from the cache populated by the first pass (the
        // first pass itself may already have cross-point hits — its points
        // share the cache too — but never a full phase 1 on every point).
        assert!(
            warm.warm_cache_hits() >= spec.point_count() * sut.core_count(),
            "second pass must at least reuse every phase-1 characterisation: \
             cold {} vs warm {}",
            cold.warm_cache_hits(),
            warm.warm_cache_hits()
        );
        assert!(warm.warm_cache_hits() > cold.warm_cache_hits());
        // Warm results are identical to cold ones except for the cache
        // accounting fields.
        for (c, w) in cold.points().iter().zip(warm.points()) {
            assert_eq!(c.schedule_length, w.schedule_length);
            assert_eq!(c.session_count, w.session_count);
            assert_eq!(c.simulation_effort, w.simulation_effort);
            assert_eq!(c.discarded_sessions, w.discarded_sessions);
            assert_eq!(c.max_temperature, w.max_temperature);
        }
    }

    #[test]
    fn variants_label_their_points_and_override_knobs() {
        let sut = library::alpha21364_sut();
        let engine = engine(&sut);
        let spec = SweepSpec::point(160.0, 60.0).with_variants(
            CoreOrdering::ALL
                .iter()
                .map(|&o| SweepVariant::new(format!("{o:?}")).with_ordering(o))
                .collect(),
        );
        assert_eq!(spec.point_count(), 4);
        let report = engine.sweep(&spec).unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report.points()[0].label, "AsGiven");
        assert_eq!(report.points()[1].label, "DescendingPower");
        for p in report.points() {
            assert!(p.max_temperature < 160.0);
        }
    }

    #[test]
    fn baseline_comparison_attaches_to_every_point() {
        let sut = library::alpha21364_sut();
        let engine = engine(&sut);
        let report = engine
            .sweep(&SweepSpec::point(150.0, 70.0).with_baseline())
            .unwrap();
        let baseline = report.points()[0]
            .baseline
            .as_ref()
            .expect("baseline requested");
        assert!(baseline.power_budget > 0.0);
        assert!(baseline.thermal_aware_max_temperature < 150.0);
        assert!(
            baseline.power_constrained_max_temperature + 1e-9
                >= baseline.thermal_aware_max_temperature
        );
    }

    #[test]
    fn invalid_per_point_configuration_is_reported() {
        let sut = library::alpha21364_sut();
        let engine = engine(&sut);
        let err = engine.sweep(&SweepSpec::point(-5.0, 40.0)).unwrap_err();
        assert!(matches!(err, crate::ScheduleError::InvalidConfig { .. }));
    }

    #[test]
    fn spec_constructors_cover_the_paper_grids() {
        assert_eq!(SweepSpec::table1().point_count(), 81);
        assert_eq!(SweepSpec::figure5().point_count(), 27);
        assert_eq!(SweepSpec::point(165.0, 50.0).point_count(), 1);
    }
}
