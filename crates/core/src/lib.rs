//! Thermal-safe system-on-chip test scheduling guided by a test-session
//! thermal model — a from-scratch reproduction of *"Rapid Generation of
//! Thermal-Safe Test Schedules"* (Rosinger, Al-Hashimi, Chakrabarty,
//! DATE 2005).
//!
//! # What this crate does
//!
//! Testing an SoC core dissipates far more power than normal operation, and
//! classic power-constrained test scheduling only bounds the *total* power of
//! each test session. Because power density varies wildly across the die, two
//! sessions with identical total power can differ by tens of degrees in peak
//! temperature. This crate implements the paper's alternative:
//!
//! 1. a cheap, resistive **session thermal model** ([`SessionThermalModel`])
//!    derived from the floorplan, which scores a candidate session by how
//!    poorly its *active* cores can shed heat to their *passive* neighbours,
//! 2. the **thermal-aware scheduling algorithm**
//!    ([`ThermalAwareScheduler`], Algorithm 1 of the paper) that greedily
//!    fills sessions under a session-thermal-characteristic limit (`STCL`)
//!    and validates each candidate against a full thermal simulation before
//!    committing it, penalising violators through adaptive weights, and
//! 3. the **baselines and experiment drivers** needed to reproduce the
//!    paper's evaluation ([`PowerConstrainedScheduler`],
//!    [`SequentialScheduler`], [`experiments`], [`report`]).
//!
//! The thermal simulation itself lives in [`thermsched_thermal`], the
//! floorplan geometry in [`thermsched_floorplan`] and the system-under-test
//! description in [`thermsched_soc`]; this crate ties them together behind a
//! scheduler-facing API.
//!
//! # Quick start
//!
//! ```
//! use thermsched::{SchedulerConfig, ThermalAwareScheduler};
//! use thermsched_soc::library;
//! use thermsched_thermal::RcThermalSimulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The 15-core Alpha-21364-like system the paper evaluates on.
//! let sut = library::alpha21364_sut();
//! let simulator = RcThermalSimulator::from_floorplan(sut.floorplan())?;
//!
//! // TL = 165 C, STCL = 50 (the paper's mid-range operating point).
//! let config = SchedulerConfig::new(165.0, 50.0)?;
//! let scheduler = ThermalAwareScheduler::new(&sut, &simulator, config)?;
//! let outcome = scheduler.schedule()?;
//!
//! println!("schedule length: {} s", outcome.schedule_length());
//! println!("simulation effort: {} s", outcome.simulation_effort);
//! println!("hottest committed session: {:.1} C", outcome.max_temperature);
//! assert!(outcome.max_temperature < 165.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod config;
mod error;
pub mod experiments;
mod parallel;
pub mod report;
mod schedule;
mod scheduler;
mod session_cache;
mod session_model;
mod validator;
mod weights;

pub use baseline::{PackingOrder, PowerConstrainedScheduler, SequentialScheduler};
pub use config::{CoreOrdering, CoreViolationPolicy, SchedulerConfig};
pub use error::ScheduleError;
pub use schedule::{TestSchedule, TestSession};
pub use scheduler::{ScheduleOutcome, SessionRecord, ThermalAwareScheduler};
pub use session_cache::SessionCache;
pub use session_model::{SessionModelOptions, SessionThermalModel, DEFAULT_STC_SCALE};
pub use validator::{ScheduleEvaluation, ScheduleValidator, SessionEvaluation};
pub use weights::CoreWeights;

/// Convenience result alias used throughout this crate.
pub type Result<T, E = ScheduleError> = std::result::Result<T, E>;
