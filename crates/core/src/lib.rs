//! Thermal-safe system-on-chip test scheduling guided by a test-session
//! thermal model — a from-scratch reproduction of *"Rapid Generation of
//! Thermal-Safe Test Schedules"* (Rosinger, Al-Hashimi, Chakrabarty,
//! DATE 2005).
//!
//! # What this crate does
//!
//! Testing an SoC core dissipates far more power than normal operation, and
//! classic power-constrained test scheduling only bounds the *total* power of
//! each test session. Because power density varies wildly across the die, two
//! sessions with identical total power can differ by tens of degrees in peak
//! temperature. This crate implements the paper's alternative:
//!
//! 1. a cheap, resistive **session thermal model** ([`SessionThermalModel`])
//!    derived from the floorplan, which scores a candidate session by how
//!    poorly its *active* cores can shed heat to their *passive* neighbours,
//! 2. the **thermal-aware scheduling algorithm**
//!    ([`ThermalAwareScheduler`], Algorithm 1 of the paper) that greedily
//!    fills sessions under a session-thermal-characteristic limit (`STCL`)
//!    and validates each candidate against a full thermal simulation before
//!    committing it, penalising violators through adaptive weights, and
//! 3. the **baselines and experiment drivers** needed to reproduce the
//!    paper's evaluation ([`PowerConstrainedScheduler`],
//!    [`SequentialScheduler`], [`experiments`], [`report`]).
//!
//! The thermal simulation itself lives in [`thermsched_thermal`], the
//! floorplan geometry in [`thermsched_floorplan`] and the system-under-test
//! description in [`thermsched_soc`]; this crate ties them together behind a
//! scheduler-facing API.
//!
//! # Quick start
//!
//! The [`Engine`] facade owns everything a scheduling session needs — the
//! backend (any [`thermsched_thermal::ThermalBackend`]; by default an
//! RC-compact simulator whose precomputed-operator fast path is selected
//! automatically wherever it is exact), the configuration, and a session
//! cache that stays warm across runs:
//!
//! ```
//! use thermsched::Engine;
//! use thermsched_soc::library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The 15-core Alpha-21364-like system the paper evaluates on, scheduled
//! // at the paper's mid-range operating point (TL = 165 C, STCL = 50).
//! let sut = library::alpha21364_sut();
//! let engine = Engine::builder().sut(&sut).build()?;
//!
//! let outcome = engine.schedule()?;
//! println!("schedule length: {} s", outcome.schedule_length());
//! println!("simulation effort: {} s", outcome.simulation_effort);
//! println!("hottest committed session: {:.1} C", outcome.max_temperature);
//! assert!(outcome.max_temperature < 165.0);
//!
//! // Sweeps are declarative; points reuse the engine's warm cache.
//! let report = engine.sweep(&thermsched::SweepSpec::grid(&[165.0], &[20.0, 100.0]))?;
//! assert_eq!(report.points().len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from the pre-`Engine` API
//!
//! The pre-`Engine` entry points were `#[deprecated]` for one release and
//! have now been **removed** (along with `TransientMethod::PrecomputedOperator`,
//! which was folded into the default `Auto`). Code still written against
//! them maps as follows:
//!
//! | removed call | replacement |
//! |---|---|
//! | `RcThermalSimulator::fast_from_floorplan(fp)` | `RcThermalSimulator::from_floorplan(fp)` (fast is the default; `reference_from_floorplan` opts into implicit Euler) |
//! | `TransientConfig::fast()` / `TransientMethod::PrecomputedOperator` | `TransientConfig::default()` / `TransientMethod::Auto` (identical behaviour) |
//! | `ThermalAwareScheduler::new(&sut, &sim, cfg)?.schedule()` | `Engine::builder().sut(&sut).backend(&sim).config(cfg).build()?.schedule()` (the scheduler itself remains public) |
//! | `experiments::table1_sweep(&sut, &sim, tls, stcls)` | `engine.sweep(&SweepSpec::grid(tls, stcls))` |
//! | `experiments::figure5_sweep(&sut, &sim)` | `engine.sweep(&SweepSpec::figure5())` |
//! | `experiments::table1_default()` | `engine.sweep(&SweepSpec::table1())` |
//! | `experiments::weight_factor_sweep(...)` | `engine.sweep(&SweepSpec::weight_ablation(tl, stcl, factors))` |
//! | `experiments::ordering_sweep(...)` | `engine.sweep(&SweepSpec::ordering_ablation(tl, stcl))` |
//! | `experiments::model_options_sweep(...)` | `engine.sweep(&SweepSpec::model_ablation(tl, stcl))` |
//! | `experiments::baseline_comparison(...)` | `engine.sweep(&SweepSpec::point(tl, stcl).with_baseline())` |
//! | `ScheduleValidator::new(&sut, &sim)?.evaluate(&schedule)` | `engine.evaluate(&schedule)` (the validator remains public) |
//!
//! Code that passed a `GridThermalSimulator` to any of these entry points
//! should also note that since PR 5 the grid backend defaults to its
//! **full-fidelity transient path** (`fidelity() == Transient`,
//! `backend_name() == "grid-transient"`); the previous steady-state
//! upper-bound behaviour is one call away via
//! `.with_fidelity(SimulationFidelity::SteadyState)`.
//!
//! PR 6 adds `TransientMethod::Adi` (Peaceman–Rachford alternating
//! directions, `O(n)` per step, for 96×96+ cell grids) next to the existing
//! `Auto` and `ImplicitEuler` variants. This is purely additive: `Auto`
//! remains the default and no existing configuration changes meaning. Two
//! consequences for exhaustive matches and capability checks:
//!
//! * code matching on `TransientMethod` exhaustively gains an arm
//!   (`TransientMethod::Adi`, selected via
//!   `TransientConfig::with_method`); the grid backend then reports
//!   `backend_name() == "grid-transient-adi"`;
//! * `uses_fast_path()` (and therefore `supports_fast_path()`) is `false`
//!   for ADI — its iterates are not provably monotone, so session maxima
//!   are tracked per step rather than read off the final state.
//!
//! # Scaling out
//!
//! For many scheduling runs over many systems, the `thermsched_service`
//! crate layers a batch service on top of the engine: a seeded scenario
//! corpus generator, a worker pool with per-worker engine reuse, and shared
//! session stores ([`SessionStore`]) — either the single-lock
//! [`MutexSessionStore`] or the N-way [`ShardedSessionCache`], selected
//! through [`SessionCacheHandle::sharded`].
//!
//! Beyond one process, the `thermsched_wire` crate defines the wire format
//! every public type here serialises to (`SchedulerConfig`, `TestSchedule`,
//! `CacheStats`, … all implement its `Wire` trait), and the service crate's
//! `MultiprocCoordinator` shards a corpus across real worker processes over
//! that format — with per-job results byte-identical at any process count.
//! The formerly dormant `serde` feature gates were removed in favour of
//! these hand-rolled `wire` modules; migrating code should serialise via
//! `thermsched_wire::to_document` / `from_document` instead of serde derive.
//!
//! # Observability
//!
//! PR 9 threads the `thermsched_obs` crate through the stack. Inside this
//! crate, [`Engine`] (via `Engine::set_tracer` /
//! `EngineBuilder::with_tracer`) and [`ThermalAwareScheduler`] emit spans
//! around scheduling (`engine.schedule`, `scheduler.phase1`,
//! `scheduler.phase2`) and store traffic (`store.probe`, `store.publish`);
//! an engine built without a tracer pays nothing. The raw counter structs
//! ([`StoreStats`], [`OperatorCacheStats`], and the service crate's
//! `ServiceStats`) are unchanged and remain the exact source of truth —
//! the metrics registry is a *view* over them under stable dotted names.
//! Code that scraped counter fields can migrate to the registry as
//! follows:
//!
//! | counter field | metrics-registry name |
//! |---|---|
//! | `StoreStats::lookups` / `hits` / `insertions` / `contended_locks` | `store.lookups` / `store.hits` / `store.insertions` / `store.contended_locks` |
//! | `OperatorCacheStats::hits` / `misses` | `operator_cache.hits` / `operator_cache.misses` |
//! | `ServiceStats::job_count` | `service.jobs` |
//! | `ServiceStats::completed` / `failed` / `panicked` / `deadline_exceeded` / `shed` / `rejected` | `service.completed` / `service.failed` / `service.panicked` / `service.deadline_exceeded` / `service.shed` / `service.rejected` |
//! | `ServiceStats::retried_attempts` / `injected_faults` / `worker_crashes` | `service.retried_attempts` / `service.injected_faults` / `service.worker_crashes` |
//! | `ServiceStats::warm_cache_hits` / `cached_validations` / `prewarmed_sessions` | `service.warm_cache_hits` / `service.cached_validations` / `service.prewarmed_sessions` |
//! | `ServiceStats::latency` (percentiles) | `job.latency_seconds` (histogram) |
//! | `ServiceStats::wall_seconds` / `jobs_per_second` | `service.wall_seconds` / `service.jobs_per_second` (gauges) |
//!
//! # Time-varying power and online re-scheduling
//!
//! PR 10 adds *online mode*: sessions may run under a time-varying power
//! trace ([`TraceProfile`], materialised per candidate into a
//! `thermsched_thermal::PowerTrace`) and may be re-planned from a
//! caller-supplied temperature state instead of an ambient die. Everything
//! is additive — [`SchedulerConfig`] is untouched (it stays `Copy`); the
//! online inputs travel in an [`OnlineContext`]. New entry points map onto
//! the existing ones as follows:
//!
//! | offline call | online equivalent |
//! |---|---|
//! | `engine.schedule()` | [`Engine::schedule_online`]`(&ctx)` |
//! | `engine.schedule_with(cfg)` | [`Engine::schedule_online_with`]`(cfg, &ctx)` |
//! | `engine.schedule_with_checkpoint(cfg, ck)` | [`Engine::schedule_online_with_checkpoint`]`(cfg, &ctx, ck)` |
//! | `scheduler.schedule()` | `scheduler.with_online(ctx)?.schedule()` |
//! | `ThermalSimulator::simulate_session(&p, d)` | `ThermalSimulator::simulate_trace(&trace, initial)` |
//! | `SessionCache::key(cores)` | [`SessionCache::online_key`]`(cores, ctx.context_hash())` |
//!
//! Cache hygiene: online results are keyed through
//! [`SessionCache::online_key`] (sorted cores + a `usize::MAX` sentinel +
//! the context hash), so traced or warm-started entries can never alias the
//! constant-power entries offline runs share, and [`OperatorKey`] gained an
//! optional `with_context` discriminator for the same reason. Offline
//! behaviour — including every golden snapshot — is bit-for-bit unchanged:
//! an empty [`OnlineContext`] is normalised away, and a constant
//! single-segment profile materialises to the exact single-phase trace the
//! fast path already serves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod checkpoint;
mod config;
mod engine;
mod error;
pub mod experiments;
mod online;
mod operator_cache;
mod parallel;
pub mod report;
mod schedule;
mod scheduler;
mod session_cache;
mod session_model;
mod session_store;
mod sweep;
mod validator;
mod weights;
mod wire;

pub use baseline::{PackingOrder, PowerConstrainedScheduler, SequentialScheduler};
pub use checkpoint::{EffortBudget, InterruptReason, ScheduleCheckpoint, ScheduleProgress};
pub use config::{CoreOrdering, CoreViolationPolicy, SchedulerConfig};
pub use engine::{Engine, EngineBuilder};
pub use error::ScheduleError;
pub use experiments::{AblationPoint, BaselineComparison, SweepPoint};
pub use online::{OnlineContext, TraceProfile, TraceSegment};
pub use operator_cache::{OperatorCacheHandle, OperatorCacheStats, OperatorKey};
pub use parallel::NestedParallelismGuard;
pub use schedule::{TestSchedule, TestSession};
pub use scheduler::{ScheduleOutcome, SessionRecord, ThermalAwareScheduler};
pub use session_cache::SessionCache;
pub use session_model::{SessionModelOptions, SessionThermalModel, DEFAULT_STC_SCALE};
pub use session_store::{
    MutexSessionStore, SessionCacheHandle, SessionStore, ShardedSessionCache, StoreStats,
};
pub use sweep::{SweepReport, SweepRunner, SweepSpec, SweepVariant};
pub use validator::{ScheduleEvaluation, ScheduleValidator, SessionEvaluation};
pub use weights::CoreWeights;

/// Convenience result alias used throughout this crate.
pub type Result<T, E = ScheduleError> = std::result::Result<T, E>;
